//! End-to-end integration tests spanning every crate: simulate → train →
//! predict → persist → advise, exactly as a downstream user would.

use wlc::data::train_test_split;
use wlc::math::rng::Seed;
use wlc::model::{
    PerformanceModel, ScoringFunction, TuningAdvisor, WorkloadModel, WorkloadModelBuilder,
};
use wlc::nn::OptimizerKind;
use wlc::sim::{run_design, ServerConfig};

/// A small but non-trivial training design: 24 configurations spanning
/// rates and thread counts.
fn small_design() -> Vec<ServerConfig> {
    let mut configs = Vec::new();
    for &rate in &[250.0, 400.0, 550.0] {
        for &d in &[6.0, 10.0, 16.0, 20.0] {
            for &w in &[7.0, 13.0] {
                configs.push(ServerConfig::from_vector(&[rate, d, 16.0, w]).expect("valid config"));
            }
        }
    }
    configs
}

fn quick_builder() -> WorkloadModelBuilder {
    WorkloadModelBuilder::new()
        .max_epochs(1500)
        .learning_rate(0.02)
        .optimizer(OptimizerKind::adam())
        .termination_threshold(2e-3)
        .seed(5)
}

#[test]
fn simulate_train_predict_roundtrip() {
    let dataset = run_design(&small_design(), 11, 6.0, 1.0).expect("simulation succeeds");
    assert_eq!(dataset.len(), 24);
    assert_eq!(dataset.input_width(), 4);
    assert_eq!(dataset.output_width(), 5);

    let (train_idx, test_idx) =
        train_test_split(dataset.len(), 0.25, Seed::new(3)).expect("valid split");
    let train = dataset.subset(&train_idx).expect("valid indices");
    let test = dataset.subset(&test_idx).expect("valid indices");

    let outcome = quick_builder().train(&train).expect("training succeeds");
    let report = outcome.model.evaluate(&test).expect("evaluation succeeds");

    // The model must clearly beat a "predict anything" strawman on
    // held-out data; the release-mode experiments achieve ~5 %, debug
    // tests with a reduced epoch budget should still land well under 60 %.
    assert!(
        report.overall_error() < 0.6,
        "held-out error too high: {}",
        report.overall_error()
    );

    // Predictions have the right shape and are finite.
    let pred = outcome
        .model
        .predict(&[450.0, 12.0, 16.0, 10.0])
        .expect("predict succeeds");
    assert_eq!(pred.len(), 5);
    assert!(pred.iter().all(|v| v.is_finite()));
}

#[test]
fn model_persistence_preserves_predictions() {
    let dataset = run_design(&small_design()[..8], 13, 5.0, 1.0).expect("simulation succeeds");
    let outcome = quick_builder()
        .max_epochs(200)
        .train(&dataset)
        .expect("training succeeds");

    let dir = std::env::temp_dir().join("wlc-integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.txt");
    outcome.model.save(&path).expect("save succeeds");
    let loaded = WorkloadModel::load(&path).expect("load succeeds");
    std::fs::remove_file(&path).ok();

    let x = [300.0, 8.0, 16.0, 9.0];
    assert_eq!(
        loaded.predict(&x).expect("predict succeeds"),
        outcome.model.predict(&x).expect("predict succeeds"),
    );
    assert_eq!(loaded.output_names(), outcome.model.output_names());
}

#[test]
fn tuning_advisor_recommends_sane_configuration() {
    let dataset = run_design(&small_design(), 17, 6.0, 1.0).expect("simulation succeeds");
    let model = quick_builder()
        .train(&dataset)
        .expect("training succeeds")
        .model;

    let scoring =
        ScoringFunction::new(vec![0.06, 0.06, 0.05, 0.05], 5000.0).expect("valid scoring");
    let advisor = TuningAdvisor::new(&model, scoring);
    let rec = advisor
        .recommend(&[
            vec![550.0],
            vec![6.0, 10.0, 16.0, 20.0],
            vec![16.0],
            vec![7.0, 10.0, 13.0],
        ])
        .expect("search succeeds");

    assert_eq!(rec.candidates_evaluated, 12);
    assert_eq!(rec.configuration.len(), 4);
    assert_eq!(rec.configuration[0], 550.0);
    // The recommendation must be one of the offered candidates.
    assert!([6.0, 10.0, 16.0, 20.0].contains(&rec.configuration[1]));
    assert!([7.0, 10.0, 13.0].contains(&rec.configuration[3]));
    assert!(rec.predicted_indicators.iter().all(|v| v.is_finite()));
}

#[test]
fn dataset_csv_roundtrip_through_facade() {
    let dataset = run_design(&small_design()[..4], 19, 4.0, 1.0).expect("simulation succeeds");
    let csv = dataset.to_csv_string();
    let back = wlc::data::Dataset::from_csv_string(&csv).expect("parse succeeds");
    assert_eq!(back, dataset);
}

#[test]
fn cross_validation_through_facade() {
    let dataset = run_design(&small_design(), 23, 5.0, 1.0).expect("simulation succeeds");
    let report = wlc::model::CrossValidator::new(quick_builder().max_epochs(400))
        .k(4)
        .seed(2)
        .run(&dataset)
        .expect("cv succeeds");
    assert_eq!(report.trials().len(), 4);
    let table = report.to_table();
    assert!(table.contains("Average"));
    assert!(report.overall_error().is_finite());
}
