//! Integration coverage for the extension APIs through the facade crate:
//! ensembles, hyper-parameter search, sensitivity analysis, the RBF
//! baseline and the analytic queueing approximation.

use wlc::data::design::ParamRange;
use wlc::model::baseline::RbfModel;
use wlc::model::sensitivity::first_order_indices;
use wlc::model::{EnsembleModel, HyperParameterSearch, PerformanceModel, WorkloadModelBuilder};
use wlc::sim::analytic::approximate_response_times;
use wlc::sim::{run_design, DbModel, HardwareModel, ServerConfig, WorkloadSpec};

fn small_dataset() -> wlc::data::Dataset {
    let mut configs = Vec::new();
    for &rate in &[250.0, 450.0] {
        for &d in &[6.0, 10.0, 16.0] {
            for &w in &[7.0, 12.0] {
                configs.push(ServerConfig::from_vector(&[rate, d, 16.0, w]).expect("valid"));
            }
        }
    }
    run_design(&configs, 31, 5.0, 1.0).expect("simulation succeeds")
}

fn quick_builder() -> WorkloadModelBuilder {
    WorkloadModelBuilder::new()
        .no_hidden_layers()
        .hidden_layer(10)
        .max_epochs(600)
        .learning_rate(0.02)
        .optimizer(wlc::nn::OptimizerKind::adam())
        .seed(2)
}

#[test]
fn ensemble_beats_or_matches_its_worst_member() {
    let ds = small_dataset();
    let ensemble = EnsembleModel::train(&quick_builder(), &ds, 3, 9).expect("training succeeds");
    let report = |m: &dyn PerformanceModel| {
        let (xs, ys) = ds.to_matrices();
        let predicted = m.predict_batch(&xs).expect("predict succeeds");
        wlc::data::metrics::ErrorReport::compare(ds.output_names(), &ys, &predicted)
            .expect("metrics computable")
            .overall_error()
    };
    let ensemble_err = report(&ensemble);
    let worst_member = ensemble
        .members()
        .iter()
        .map(|m| report(m))
        .fold(0.0_f64, f64::max);
    assert!(
        ensemble_err <= worst_member + 1e-9,
        "ensemble {ensemble_err} vs worst member {worst_member}"
    );
    // Spread is a usable uncertainty signal.
    let spread = ensemble
        .prediction_spread(&[400.0, 10.0, 16.0, 10.0])
        .expect("spread computable");
    assert_eq!(spread.len(), 5);
    assert!(spread.iter().all(|s| s.is_finite() && *s >= 0.0));
}

#[test]
fn hyperparameter_search_on_simulated_data() {
    let ds = small_dataset();
    let outcome = HyperParameterSearch::new(quick_builder())
        .topologies(vec![vec![6], vec![12]])
        .thresholds(vec![Some(1e-3)])
        .learning_rates(vec![0.02])
        .seed(4)
        .run(&ds)
        .expect("search succeeds");
    assert_eq!(outcome.candidates.len(), 2);
    assert!(outcome.candidates[0].validation_error <= outcome.candidates[1].validation_error);
    assert_eq!(outcome.best.model.inputs(), 4);
}

#[test]
fn sensitivity_finds_injection_rate_dominant_for_throughput() {
    let ds = small_dataset();
    let model = quick_builder().train(&ds).expect("training succeeds").model;
    let ranges = [
        ParamRange::new(250.0, 450.0).expect("valid"),
        ParamRange::new(6.0, 16.0).expect("valid"),
        ParamRange::new(16.0, 16.0).expect("valid"),
        ParamRange::new(7.0, 12.0).expect("valid"),
    ];
    // Output 4 = throughput: in this healthy region it tracks the
    // injection rate almost exclusively.
    let report = first_order_indices(&model, 4, &ranges, 24, 24, 3).expect("indices computable");
    assert_eq!(report.dominant_input(), 0, "{report:?}");
    assert!(report.first_order[0] > 0.5, "{report:?}");
}

#[test]
fn rbf_baseline_fits_simulated_data() {
    let ds = small_dataset();
    let rbf = RbfModel::fit(&ds, 8, 3).expect("fit succeeds");
    let (xs, ys) = ds.to_matrices();
    let predicted = rbf.predict_batch(&xs).expect("predict succeeds");
    let report = wlc::data::metrics::ErrorReport::compare(ds.output_names(), &ys, &predicted)
        .expect("metrics computable");
    assert!(report.overall_error() < 0.5, "{}", report.overall_error());
}

#[test]
fn analytic_approximation_available_through_facade() {
    let config = ServerConfig::from_vector(&[200.0, 10.0, 16.0, 10.0]).expect("valid");
    let rts = approximate_response_times(
        &config,
        &WorkloadSpec::default(),
        &HardwareModel::default(),
        &DbModel::default(),
    )
    .expect("stable configuration");
    assert!(rts.iter().all(|&rt| rt > 0.0 && rt < 0.5));
}
