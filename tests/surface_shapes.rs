//! Integration tests for the paper's §5 surface taxonomy on *directly
//! simulated* grids (no model in between): the simulator must exhibit the
//! parallel-slopes / valley / hill behaviours the paper reports at the
//! (560, x, 16, y) operating point.
//!
//! These are coarser, faster variants of the Figure 4/7/8 experiment
//! binaries (which run the full model-based pipeline in release mode).

use wlc::math::Matrix;
use wlc::model::classify::{classify, Axis, SurfaceShape};
use wlc::model::SurfaceGrid;
use wlc::sim::{ServerConfig, Simulation, TransactionKind};

/// Simulates the (default, web) grid at 560 req/s, mfg = 16, and returns
/// one SurfaceGrid per indicator column.
fn simulated_grids(axis: &[f64]) -> Vec<SurfaceGrid> {
    let n = axis.len();
    let mut zs = vec![Matrix::zeros(n, n); 5];
    for (i, &d) in axis.iter().enumerate() {
        for (j, &w) in axis.iter().enumerate() {
            let config = ServerConfig::from_vector(&[560.0, d, 16.0, w]).expect("valid config");
            let m = Simulation::new(config)
                .seed(1)
                .duration_secs(12.0)
                .warmup_secs(2.0)
                .run()
                .expect("simulation succeeds");
            for (k, v) in m.indicators().into_iter().enumerate() {
                zs[k].set(i, j, v);
            }
        }
    }
    zs.into_iter()
        .map(|z| SurfaceGrid::from_parts(axis.to_vec(), axis.to_vec(), z).expect("valid grid"))
        .collect()
}

#[test]
fn paper_shapes_on_simulated_surfaces() {
    // 4..20 step 4 keeps this integration test fast while covering the
    // starved edge, the healthy interior and the oversized edge.
    let axis: Vec<f64> = vec![4.0, 8.0, 12.0, 16.0, 20.0];
    let grids = simulated_grids(&axis);

    // Figure 4: manufacturing response time — default queue is inert.
    let mfg = classify(&grids[TransactionKind::Manufacturing.index()]);
    assert_eq!(
        mfg.shape,
        SurfaceShape::ParallelSlopes {
            inert_axis: Axis::First
        },
        "manufacturing rt: {mfg:?}"
    );
    assert!(
        mfg.sensitivity_axis2 > 5.0 * mfg.sensitivity_axis1,
        "web axis should dominate: {mfg:?}"
    );

    // Figure 7: dealer purchase response time — a valley.
    let purchase = classify(&grids[TransactionKind::DealerPurchase.index()]);
    assert_eq!(purchase.shape, SurfaceShape::Valley, "{purchase:?}");
    // The minimum is away from the starved edge.
    let (i, j, _) = grids[1].min_cell();
    assert!(i > 0 && j > 0, "valley minimum on the starved edge");

    // Figure 8: effective throughput — a hill with an interior peak.
    let tput = classify(&grids[4]);
    assert_eq!(tput.shape, SurfaceShape::Hill, "{tput:?}");
    let (i, j, peak) = grids[4].max_cell();
    assert!(i > 0 && j > 0, "hill peak on the starved edge");
    assert!(peak > 300.0, "peak throughput implausibly low: {peak}");
}

#[test]
fn starving_web_queue_hurts_everything_starving_default_spares_mfg() {
    let healthy = Simulation::new(
        ServerConfig::from_vector(&[560.0, 10.0, 16.0, 10.0]).expect("valid config"),
    )
    .seed(3)
    .duration_secs(10.0)
    .warmup_secs(2.0)
    .run()
    .expect("simulation succeeds");

    let web_starved = Simulation::new(
        ServerConfig::from_vector(&[560.0, 10.0, 16.0, 3.0]).expect("valid config"),
    )
    .seed(3)
    .duration_secs(10.0)
    .warmup_secs(2.0)
    .run()
    .expect("simulation succeeds");

    let default_starved = Simulation::new(
        ServerConfig::from_vector(&[560.0, 3.0, 16.0, 10.0]).expect("valid config"),
    )
    .seed(3)
    .duration_secs(10.0)
    .warmup_secs(2.0)
    .run()
    .expect("simulation succeeds");

    // Web starvation inflates every class (it is the shared front end).
    for kind in TransactionKind::ALL {
        assert!(
            web_starved.mean_response_time(kind) > 4.0 * healthy.mean_response_time(kind),
            "{kind} unaffected by web starvation"
        );
    }
    // Default starvation inflates dealer classes but barely touches
    // manufacturing (the parallel-slopes mechanism).
    assert!(
        default_starved.mean_response_time(TransactionKind::DealerPurchase)
            > 4.0 * healthy.mean_response_time(TransactionKind::DealerPurchase)
    );
    assert!(
        default_starved.mean_response_time(TransactionKind::Manufacturing)
            < 2.0 * healthy.mean_response_time(TransactionKind::Manufacturing)
    );
}
