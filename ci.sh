#!/usr/bin/env sh
# Repository CI gate — offline-safe by construction: the workspace has no
# external dependencies, so every step below works without a registry.
#
#   ./ci.sh         full gate: fmt, clippy, build, tests (tier 1)
#   ./ci.sh quick   skip the release build (fastest signal)
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> wlc-lint (workspace static analysis, blocking)"
cargo run -q -p wlc-lint -- --workspace

echo "==> wlc-lint self-test (each seeded-bug fixture must fail)"
for fixture in lock_cycle panic_serve instant_nn unmapped_variant alloc_hot \
    durable_raw hot_chain taint_sink guard_gap; do
    if cargo run -q -p wlc-lint -- --root "crates/lint/tests/fixtures/$fixture"; then
        echo "fixture $fixture was unexpectedly clean"
        exit 1
    fi
done

if [ "${1:-}" != "quick" ]; then
    echo "==> cargo build --release (tier-1 default members)"
    cargo build --release

    echo "==> wlc-lint report + wall-time budget (vs BENCH_lint.json)"
    # Release-build run: emits the machine-readable findings artifact and
    # fails (exit 3) if the analysis exceeds 20x the committed baseline —
    # the guard catches a fixpoint pass going accidentally quadratic.
    ./target/release/wlc-lint --workspace --format json \
        --out target/lint-report.json --budget BENCH_lint.json

    echo "==> bench regression guard (speedup ratios vs BENCH_nn.json)"
    # Ratios (batched vs legacy arm, interleaved same-run) are machine-
    # independent; absolute throughput is not compared. Writes the fresh
    # measurement to BENCH_nn.new.json for inspection.
    ./target/release/wlc bench --quick --check BENCH_nn.json --no-serve
fi

echo "==> cargo test -q (tier-1 default members)"
cargo test -q

echo "==> crash-consistency sweep (every op-log prefix of a supervisor round)"
# Replays a full supervisor round (bootstrap commit, checkpoints,
# promote, rollback, quarantine) against the simulated filesystem,
# crashing at every operation-log prefix and asserting recovery
# converges to the uninterrupted run byte-for-byte.
cargo test -q -p wlc-learn --test crash_sweep

if [ "${1:-}" != "quick" ]; then
    echo "==> fault-injection smoke (collect with faults, cv with quarantine)"
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT
    ./target/release/wlc collect --samples 8 --out "$smoke_dir/faulty.csv" \
        --duration 3 --warmup 1 --seed 4 \
        --fault-profile dropout=0.3,truncate=0.2,truncate_frac=0.5 --retries 6
    ./target/release/wlc cv --data "$smoke_dir/faulty.csv" --k 3 \
        --epochs 200 --hidden 6 --force-diverge 1 --quarantine

    echo "==> prediction-server smoke (degraded, shed, reload, drain)"
    ./target/release/wlc collect --samples 10 --out "$smoke_dir/serve.csv" \
        --duration 3 --warmup 1 --seed 11
    ./target/release/wlc train --data "$smoke_dir/serve.csv" \
        --out "$smoke_dir/model-a.txt" --epochs 200 --hidden 6 --seed 1
    ./target/release/wlc train --data "$smoke_dir/serve.csv" \
        --out "$smoke_dir/model-b.txt" --epochs 200 --hidden 6 --seed 2
    # One worker, one queue slot, 50ms service time, and the first two
    # primary predictions forced to fail: exercises degradation to the
    # linear baseline, load shedding, and recovery in one server run.
    ./target/release/wlc serve --model "$smoke_dir/model-a.txt" \
        --data "$smoke_dir/serve.csv" --addr 127.0.0.1:0 \
        --workers 1 --queue 1 --slow-ms 50 --force-fail 2 \
        > "$smoke_dir/serve.out" 2> "$smoke_dir/serve.log" &
    serve_pid=$!
    for _ in $(seq 1 100); do
        grep -q "listening on" "$smoke_dir/serve.out" 2>/dev/null && break
        sleep 0.1
    done
    addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve.out" | head -n 1)
    [ -n "$addr" ] || { echo "server did not start"; exit 1; }
    # Capture first, grep after: `cmd | grep -q` closes the pipe on the
    # first match and the CLI would die on EPIPE mid-print.
    wlc_expect() {
        want=$1
        shift
        out=$(./target/release/wlc "$@")
        echo "$out" | grep -q "$want" \
            || { echo "expected \`$want\` in: $out"; exit 1; }
    }
    # Injected failures serve the baseline, tagged DEGRADED ...
    wlc_expect DEGRADED predict --server "$addr" --config 450,10,16,10
    wlc_expect DEGRADED predict --server "$addr" --config 450,10,16,10
    # ... then the primary recovers.
    wlc_expect "model: mlp" predict --server "$addr" --config 450,10,16,10
    # An impossible deadline is a retriable 504 -> serve-error exit 5.
    set +e
    ./target/release/wlc predict --server "$addr" --config 450,10,16,10 \
        --deadline-ms 1 --retries 1 >/dev/null 2>&1
    rc=$?
    set -e
    [ "$rc" -eq 5 ] || { echo "expected exit 5 on deadline, got $rc"; exit 1; }
    # Overload: six concurrent clients against a 1-worker/1-slot server.
    # Shedding must happen, and backoff+retry must carry every client
    # through anyway.
    client_pids=""
    for _ in 1 2 3 4 5 6; do
        ./target/release/wlc predict --server "$addr" --config 450,10,16,10 \
            --retries 10 >/dev/null &
        client_pids="$client_pids $!"
    done
    for pid in $client_pids; do wait "$pid"; done
    grep -q "shed=true" "$smoke_dir/serve.log" \
        || { echo "expected load shedding in server log"; exit 1; }
    # Hot reload: corrupt file rejected, valid file swaps to generation 1.
    ! ./target/release/wlc predict --server "$addr" \
        --reload "$smoke_dir/serve.csv" >/dev/null 2>&1
    wlc_expect "generation 1" predict --server "$addr" \
        --reload "$smoke_dir/model-b.txt"
    wlc_expect "generation 1" predict --server "$addr" --config 450,10,16,10
    # Graceful shutdown: drains and exits 0 with a summary.
    ./target/release/wlc predict --server "$addr" --shutdown >/dev/null
    wait "$serve_pid"
    grep -q "server drained:" "$smoke_dir/serve.out"

    echo "==> multi-replica fleet smoke (kill, rolling reload, recovery)"
    ./target/release/wlc serve --model "$smoke_dir/model-a.txt" \
        --data "$smoke_dir/serve.csv" --addr 127.0.0.1:0 \
        --replicas 3 --workers 1 --queue 8 \
        > "$smoke_dir/fleet.out" 2> "$smoke_dir/fleet.log" &
    fleet_pid=$!
    for _ in $(seq 1 100); do
        grep -q "listening on" "$smoke_dir/fleet.out" 2>/dev/null && break
        sleep 0.1
    done
    fleet_addr=$(sed -n 's/^listening on //p' "$smoke_dir/fleet.out" | head -n 1)
    [ -n "$fleet_addr" ] || { echo "fleet server did not start"; exit 1; }
    # All three replicas report ready.
    wlc_expect "replicas_ready.*3" predict --server "$fleet_addr" --status
    # Kill one replica: readiness degrades to 2/3, serving continues.
    wlc_expect "replica 1 killed" predict --server "$fleet_addr" --kill-replica 1
    wlc_expect "replicas_ready.*2" predict --server "$fleet_addr" --status
    wlc_expect "model: mlp" predict --server "$fleet_addr" --config 450,10,16,10
    # Rolling reload swaps the whole fleet (dead replica included).
    wlc_expect "generation 1" predict --server "$fleet_addr" \
        --reload "$smoke_dir/model-b.txt"
    wlc_expect "generation 1" predict --server "$fleet_addr" --config 450,10,16,10
    # Revive the killed replica: readiness recovers to 3/3.
    wlc_expect "replica 1 revived" predict --server "$fleet_addr" --revive-replica 1
    wlc_expect "replicas_ready.*3" predict --server "$fleet_addr" --status
    ./target/release/wlc predict --server "$fleet_addr" --shutdown >/dev/null
    wait "$fleet_pid"
    grep -q "server drained:" "$smoke_dir/fleet.out"

    echo "==> continuous-learning smoke (chaos kill, resume, forced rollback)"
    learn_dir="$smoke_dir/learn"
    # Kill the supervisor mid-retrain in round 1 right after its first
    # checkpoint (exit 1), then rerun to resume. Round 2's promotion is
    # forced bad so the watchdog must roll the fleet back. The final
    # summary line is byte-deterministic, so exact counts are asserted.
    set +e
    ./target/release/wlc learn --state-dir "$learn_dir" --rounds 2 \
        --window 5 --buffer-cap 30 --holdout 3 --bootstrap-ticks 8 \
        --duration 2 --warmup 0.5 --epochs 200 --hidden 8 --probes 4 \
        --tolerance 2.0 --drift-profile kind=ramp,rate=0.08 \
        --force-bad-round 2 --chaos-kill-round 1 \
        > "$smoke_dir/learn-kill.out" 2>&1
    rc=$?
    set -e
    [ "$rc" -eq 1 ] || { echo "expected exit 1 on chaos kill, got $rc"; exit 1; }
    grep -q "chaos: supervisor killed mid-retrain in round 1" "$smoke_dir/learn-kill.out"
    # Capture first, grep after (same EPIPE rule as the server smokes).
    learn_out=$(./target/release/wlc learn --state-dir "$learn_dir" --rounds 2 \
        --window 5 --buffer-cap 30 --holdout 3 --bootstrap-ticks 8 \
        --duration 2 --warmup 0.5 --epochs 200 --hidden 8 --probes 4 \
        --tolerance 2.0 --drift-profile kind=ramp,rate=0.08 \
        --force-bad-round 2)
    for want in \
        "event=promote round=1 generation=1" \
        "event=probation round=2 probes=4 breaches=4 verdict=breach" \
        "event=rollback round=2 generation=3 restored=model-g1.model" \
        "supervisor done: rounds=2 generation=3 promotions=2 rollbacks=1 quarantined=1 live=model-g1.model"; do
        echo "$learn_out" | grep -q "$want" \
            || { echo "expected \`$want\` in learn output: $learn_out"; exit 1; }
    done
    grep -q "event=quarantine round=2 reason=watchdog" "$learn_dir/events.log"
    test -f "$learn_dir/quarantine/round-2.model"
    test -f "$learn_dir/quarantine/round-2.diagnosis"
fi

echo "==> OK"
