#!/usr/bin/env sh
# Repository CI gate — offline-safe by construction: the workspace has no
# external dependencies, so every step below works without a registry.
#
#   ./ci.sh         full gate: fmt, clippy, build, tests (tier 1)
#   ./ci.sh quick   skip the release build (fastest signal)
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [ "${1:-}" != "quick" ]; then
    echo "==> cargo build --release (tier-1 default members)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1 default members)"
cargo test -q

echo "==> OK"
