#!/usr/bin/env sh
# Repository CI gate — offline-safe by construction: the workspace has no
# external dependencies, so every step below works without a registry.
#
#   ./ci.sh         full gate: fmt, clippy, build, tests (tier 1)
#   ./ci.sh quick   skip the release build (fastest signal)
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> wlc-lint (workspace static analysis, blocking)"
cargo run -q -p wlc-lint -- --workspace

echo "==> wlc-lint self-test (each seeded-bug fixture must fail)"
for fixture in lock_cycle panic_serve instant_nn unmapped_variant alloc_hot; do
    if cargo run -q -p wlc-lint -- --root "crates/lint/tests/fixtures/$fixture"; then
        echo "fixture $fixture was unexpectedly clean"
        exit 1
    fi
done

if [ "${1:-}" != "quick" ]; then
    echo "==> cargo build --release (tier-1 default members)"
    cargo build --release

    echo "==> bench regression guard (speedup ratios vs BENCH_nn.json)"
    # Ratios (batched vs legacy arm, interleaved same-run) are machine-
    # independent; absolute throughput is not compared. Writes the fresh
    # measurement to BENCH_nn.new.json for inspection.
    ./target/release/wlc bench --quick --check BENCH_nn.json --no-serve
fi

echo "==> cargo test -q (tier-1 default members)"
cargo test -q

if [ "${1:-}" != "quick" ]; then
    echo "==> fault-injection smoke (collect with faults, cv with quarantine)"
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT
    ./target/release/wlc collect --samples 8 --out "$smoke_dir/faulty.csv" \
        --duration 3 --warmup 1 --seed 4 \
        --fault-profile dropout=0.3,truncate=0.2,truncate_frac=0.5 --retries 6
    ./target/release/wlc cv --data "$smoke_dir/faulty.csv" --k 3 \
        --epochs 200 --hidden 6 --force-diverge 1 --quarantine

    echo "==> prediction-server smoke (degraded, shed, reload, drain)"
    ./target/release/wlc collect --samples 10 --out "$smoke_dir/serve.csv" \
        --duration 3 --warmup 1 --seed 11
    ./target/release/wlc train --data "$smoke_dir/serve.csv" \
        --out "$smoke_dir/model-a.txt" --epochs 200 --hidden 6 --seed 1
    ./target/release/wlc train --data "$smoke_dir/serve.csv" \
        --out "$smoke_dir/model-b.txt" --epochs 200 --hidden 6 --seed 2
    # One worker, one queue slot, 50ms service time, and the first two
    # primary predictions forced to fail: exercises degradation to the
    # linear baseline, load shedding, and recovery in one server run.
    ./target/release/wlc serve --model "$smoke_dir/model-a.txt" \
        --data "$smoke_dir/serve.csv" --addr 127.0.0.1:0 \
        --workers 1 --queue 1 --slow-ms 50 --force-fail 2 \
        > "$smoke_dir/serve.out" 2> "$smoke_dir/serve.log" &
    serve_pid=$!
    for _ in $(seq 1 100); do
        grep -q "listening on" "$smoke_dir/serve.out" 2>/dev/null && break
        sleep 0.1
    done
    addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve.out" | head -n 1)
    [ -n "$addr" ] || { echo "server did not start"; exit 1; }
    # Injected failures serve the baseline, tagged DEGRADED ...
    ./target/release/wlc predict --server "$addr" --config 450,10,16,10 \
        | grep -q DEGRADED
    ./target/release/wlc predict --server "$addr" --config 450,10,16,10 \
        | grep -q DEGRADED
    # ... then the primary recovers.
    ./target/release/wlc predict --server "$addr" --config 450,10,16,10 \
        | grep -q "model: mlp"
    # An impossible deadline is a retriable 504 -> serve-error exit 5.
    set +e
    ./target/release/wlc predict --server "$addr" --config 450,10,16,10 \
        --deadline-ms 1 --retries 1 >/dev/null 2>&1
    rc=$?
    set -e
    [ "$rc" -eq 5 ] || { echo "expected exit 5 on deadline, got $rc"; exit 1; }
    # Overload: six concurrent clients against a 1-worker/1-slot server.
    # Shedding must happen, and backoff+retry must carry every client
    # through anyway.
    client_pids=""
    for _ in 1 2 3 4 5 6; do
        ./target/release/wlc predict --server "$addr" --config 450,10,16,10 \
            --retries 10 >/dev/null &
        client_pids="$client_pids $!"
    done
    for pid in $client_pids; do wait "$pid"; done
    grep -q "shed=true" "$smoke_dir/serve.log" \
        || { echo "expected load shedding in server log"; exit 1; }
    # Hot reload: corrupt file rejected, valid file swaps to generation 1.
    ! ./target/release/wlc predict --server "$addr" \
        --reload "$smoke_dir/serve.csv" >/dev/null 2>&1
    ./target/release/wlc predict --server "$addr" \
        --reload "$smoke_dir/model-b.txt" | grep -q "generation 1"
    ./target/release/wlc predict --server "$addr" --config 450,10,16,10 \
        | grep -q "generation 1"
    # Graceful shutdown: drains and exits 0 with a summary.
    ./target/release/wlc predict --server "$addr" --shutdown >/dev/null
    wait "$serve_pid"
    grep -q "server drained:" "$smoke_dir/serve.out"
fi

echo "==> OK"
