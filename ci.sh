#!/usr/bin/env sh
# Repository CI gate — offline-safe by construction: the workspace has no
# external dependencies, so every step below works without a registry.
#
#   ./ci.sh         full gate: fmt, clippy, build, tests (tier 1)
#   ./ci.sh quick   skip the release build (fastest signal)
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [ "${1:-}" != "quick" ]; then
    echo "==> cargo build --release (tier-1 default members)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1 default members)"
cargo test -q

if [ "${1:-}" != "quick" ]; then
    echo "==> fault-injection smoke (collect with faults, cv with quarantine)"
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT
    ./target/release/wlc collect --samples 8 --out "$smoke_dir/faulty.csv" \
        --duration 3 --warmup 1 --seed 4 \
        --fault-profile dropout=0.3,truncate=0.2,truncate_frac=0.5 --retries 6
    ./target/release/wlc cv --data "$smoke_dir/faulty.csv" --k 3 \
        --epochs 200 --hidden 6 --force-diverge 1 --quarantine
fi

echo "==> OK"
