//! Facade crate for the IISWC 2006 reproduction *"Constructing a
//! Non-Linear Model with Neural Networks for Workload Characterization"*.
//!
//! Re-exports the whole workspace under one roof:
//!
//! - [`math`] — matrices, solvers, RNG, distributions, statistics.
//! - [`nn`] — the from-scratch multilayer-perceptron library.
//! - [`data`] — datasets, scalers, k-fold CV, metrics, experiment designs.
//! - [`sim`] — the 3-tier web-service discrete-event simulator.
//! - [`model`] — the paper's contribution: the non-linear workload model,
//!   cross-validation harness, response surfaces and tuning advisor.
//! - [`exec`] — deterministic worker pools and the bounded service queue.
//! - [`serve`] — the fault-tolerant prediction server: load shedding,
//!   deadlines, circuit-breaker degradation to the linear baseline, and
//!   validated hot model reload.
//! - [`learn`] — the continuous-learning supervisor: stream drifting
//!   workloads, retrain with crash-safe checkpoints, shadow-score, and
//!   promote via rolling reload with watchdog-guarded rollback.
//! - [`fault`] — the deterministic fault-injection substrate: named
//!   failpoints, an `Fs` abstraction with a real passthrough and a
//!   simulated filesystem that injects short writes / failed fsyncs /
//!   torn renames and replays power cuts at any operation-log prefix.
//!
//! # Quickstart
//!
//! ```
//! use wlc::sim::{ServerConfig, Simulation};
//!
//! // Simulate one configuration of the 3-tier workload.
//! let config = ServerConfig::builder()
//!     .injection_rate(300.0)
//!     .default_threads(10)
//!     .mfg_threads(16)
//!     .web_threads(14)
//!     .build()
//!     .unwrap();
//! let measurement = Simulation::new(config).seed(1).run().unwrap();
//! assert!(measurement.throughput() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use wlc_data as data;
pub use wlc_exec as exec;
pub use wlc_fault as fault;
pub use wlc_learn as learn;
pub use wlc_math as math;
pub use wlc_model as model;
pub use wlc_nn as nn;
pub use wlc_serve as serve;
pub use wlc_sim as sim;
