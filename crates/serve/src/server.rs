//! The fault-tolerant, multi-replica prediction server.
//!
//! A [`Server`] binds a loopback TCP port and serves predictions from a
//! fleet of [`Replica`]s — each owning its own hot-swappable
//! [`crate::ModelSlot`], circuit breaker, bounded queue and worker
//! threads — behind a least-loaded [`Router`]. The design goals are the
//! classic overload-robustness triad, now per failure domain:
//!
//! - **Load shedding** — accepted connections are dispatched to the
//!   least-loaded routable replica's bounded queue
//!   ([`wlc_exec::BoundedQueue`]); when every queue is full the
//!   acceptor answers `503` (retriable) immediately instead of queueing
//!   unboundedly.
//! - **Deadlines** — every request carries a deadline (default from
//!   [`ServeConfig::default_deadline`], overridable per request); work
//!   that misses it is answered `504` (retriable) rather than returned
//!   arbitrarily late.
//! - **Graceful degradation** — each replica's [`CircuitBreaker`]
//!   guards its MLP; repeated failures route that replica's requests to
//!   the linear baseline, tagged `"degraded": true`, without touching
//!   the other replicas.
//!
//! Model updates are **rolling**: `POST /reload` drains and swaps one
//! replica at a time ([`Router::rolling_reload`]) so the fleet never
//! has more than one replica out of rotation and zero accepted
//! requests fail during an update. Shutdown (`POST /shutdown`) stops
//! accepting, drains every replica and returns cleanly.
//!
//! # Endpoints
//!
//! | Route            | Purpose                                          |
//! |------------------|--------------------------------------------------|
//! | `POST /predict`  | `{"inputs":[...], "deadline_ms":n?}` → prediction |
//! | `POST /predict_batch` | `{"inputs":[[...],...], "deadline_ms":n?}` → one prediction per row, served through the worker's reusable [`PredictScratch`] (allocation-free model pass) |
//! | `GET /healthz`   | liveness (200 while the process serves)          |
//! | `GET /readyz`    | readiness: per-replica health, ready while ≥ 1 replica can answer |
//! | `GET /stats`     | fleet counters plus a per-replica breakdown      |
//! | `POST /reload`   | `{"path":"model.txt"}` → validated rolling swap   |
//! | `POST /replica`  | `{"replica":n,"action":"kill"\|"revive"\|"force_fail"}` admin/test hook |
//! | `POST /supervisor` | `{"event":"promotion"\|"rollback"\|...}` learning-lifecycle counters for `/stats` |
//! | `POST /shutdown` | graceful drain and exit                          |

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wlc_exec::ServicePool;
use wlc_fault::FsHandle;
use wlc_math::rng::Xoshiro256;
use wlc_math::Matrix;
use wlc_model::fallback::{FallbackModel, Served};
use wlc_model::{ModelError, PerformanceModel, PredictScratch};

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::error::ServeError;
use crate::http;
use crate::json::Json;
use crate::replica::{Replica, ReplicaHealth};
use crate::router::{ReloadError, Router};

/// Server tuning knobs. [`Default`] gives sensible loopback settings.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Serving replicas, each with its own model slot, breaker, queue
    /// and worker threads (minimum 1).
    pub replicas: usize,
    /// Worker threads handling requests *per replica* (minimum 1).
    pub workers: usize,
    /// Per-replica bounded queue capacity; when every routable
    /// replica's queue is full, connections are shed with 503.
    pub queue_capacity: usize,
    /// A replica reports not-ready once its queue depth reaches this
    /// watermark (0 = use half the queue capacity).
    pub ready_watermark: usize,
    /// Default per-request deadline when the request does not carry
    /// `deadline_ms`.
    pub default_deadline: Duration,
    /// Consecutive primary failures that open a replica's breaker.
    pub breaker_threshold: u32,
    /// Cooldown before an open breaker half-opens to probe the primary.
    pub breaker_cooldown: Duration,
    /// How long a rolling reload waits for each replica's in-flight
    /// work to drain before aborting with a retriable 503.
    pub reload_drain_timeout: Duration,
    /// Artificial per-request service time (test/benchmark hook for
    /// driving the server into overload deterministically).
    pub slow_per_request: Duration,
    /// Fail this many primary predictions before behaving normally
    /// (test hook for exercising the breaker, mirroring the trainer's
    /// fault-injection flags).
    pub force_fail: u64,
    /// Seed for the jittered `Retry-After` on shed 503s; a fixed seed
    /// makes the jitter sequence reproducible.
    pub shed_jitter_seed: u64,
    /// Emit one structured log line per request to stderr.
    pub log: bool,
    /// Filesystem model reloads read through (failpoint site
    /// `serve.model.load`). A [`wlc_fault::SimFs`] here lets tests
    /// inject read faults and serve supervisor-written artifacts.
    pub fs: FsHandle,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            replicas: 1,
            workers: 4,
            queue_capacity: 64,
            ready_watermark: 0,
            default_deadline: Duration::from_secs(2),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(5),
            reload_drain_timeout: Duration::from_secs(5),
            slow_per_request: Duration::ZERO,
            force_fail: 0,
            shed_jitter_seed: 0x5eed,
            log: false,
            fs: wlc_fault::real_fs(),
        }
    }
}

/// Counters accumulated over a server's lifetime, returned by
/// [`Server::run`] and exposed at `GET /stats` (summed over replicas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered (any status) by worker threads.
    pub handled: u64,
    /// Connections shed by the acceptor with 503 (no replica could
    /// take the job).
    pub shed: u64,
    /// Predictions served by the linear baseline (degraded mode).
    pub degraded: u64,
    /// Requests rejected with 504 for missing their deadline.
    pub deadline_missed: u64,
}

/// The phase of request handling in which a failure surfaced, for
/// [`counts_against_breaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePhase {
    /// The acceptor shed the connection (503) before any replica saw
    /// it.
    RouterShed,
    /// The request itself was invalid (4xx): malformed body, width
    /// mismatch, non-finite features.
    CallerError,
    /// The deadline expired while the request was still queued — the
    /// model was never invoked.
    QueuedDeadline,
    /// The primary model was actually invoked: compute errors,
    /// non-finite outputs, and answers that arrived past the deadline.
    Compute,
}

/// The breaker-accounting rule, pinned: only compute-phase failures
/// with a 5xx status count against a replica's circuit breaker.
///
/// Router-level sheds and caller errors say nothing about the model's
/// health, and a deadline that expired while the request sat in the
/// queue blames the queue, not the model — none of those may open the
/// breaker. A primary answer that arrives past its deadline (a
/// compute-phase 504) does count: a model too slow to be useful is as
/// failed as one that errors.
pub fn counts_against_breaker(status: u16, phase: FailurePhase) -> bool {
    matches!(phase, FailurePhase::Compute) && status >= 500
}

struct Conn {
    stream: TcpStream,
    accepted_at: Instant,
}

struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    router: Router<Conn>,
    shutting_down: AtomicBool,
    force_fail: AtomicU64,
    shed: AtomicU64,
    // Continuous-learning lifecycle counters, reported by the
    // supervisor via POST /supervisor and exposed at GET /stats.
    promotions: AtomicU64,
    rollbacks: AtomicU64,
    quarantined: AtomicU64,
    probation: AtomicBool,
}

impl Shared {
    fn watermark(&self) -> usize {
        match self.config.ready_watermark {
            0 => (self.config.queue_capacity / 2).max(1),
            w => w.min(self.config.queue_capacity),
        }
    }

    fn stats(&self) -> ServeStats {
        let mut stats = ServeStats {
            shed: self.shed.load(Ordering::Relaxed),
            ..ServeStats::default()
        };
        for replica in self.router.replicas() {
            let (handled, degraded, deadline_missed) = replica.counters();
            stats.handled += handled;
            stats.degraded += degraded;
            stats.deadline_missed += deadline_missed;
        }
        stats
    }

    /// The fleet's committed generation: the minimum across replicas.
    fn fleet_generation(&self) -> u64 {
        self.router.generations().into_iter().min().unwrap_or(0)
    }

    /// Consumes one forced-failure token, if any remain.
    fn take_forced_failure(&self) -> bool {
        self.force_fail
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }

    #[allow(clippy::too_many_arguments)]
    fn log_request(
        &self,
        replica: Option<usize>,
        method: &str,
        path: &str,
        status: u16,
        started: Instant,
        degraded: bool,
        shed: bool,
    ) {
        if !self.config.log {
            return;
        }
        let latency_ms = started.elapsed().as_secs_f64() * 1e3;
        let depth: usize = self.router.replicas().iter().map(|r| r.queue().len()).sum();
        let replica = match replica {
            Some(id) => id.to_string(),
            None => "-".to_string(),
        };
        eprintln!(
            "wlc-serve method={method} path={path} status={status} replica={replica} \
             latency_ms={latency_ms:.3} queue_depth={depth} degraded={degraded} shed={shed}",
        );
    }
}

/// Jittered `Retry-After` seconds for a shed 503, uniform over
/// `{1, 2, 3}`. Without jitter every client shed in the same overload
/// burst would back off identically and retry in lockstep, re-creating
/// the burst; a seeded draw per shed spreads them out while staying
/// reproducible under a fixed [`ServeConfig::shed_jitter_seed`].
fn shed_retry_after(rng: &mut Xoshiro256) -> u64 {
    1 + (rng.next_f64() * 3.0) as u64
}

fn error_body(message: &str, retriable: bool) -> String {
    Json::obj([
        ("error", Json::Str(message.to_string())),
        ("retriable", Json::Bool(retriable)),
    ])
    .to_string()
}

fn breaker_state_name(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half-open",
    }
}

/// The fleet's worst breaker state: any open replica reports `open`,
/// else any half-open reports `half-open`, else `closed`.
fn fleet_breaker_name(health: &[ReplicaHealth]) -> &'static str {
    if health.iter().any(|h| h.breaker == BreakerState::Open) {
        "open"
    } else if health.iter().any(|h| h.breaker == BreakerState::HalfOpen) {
        "half-open"
    } else {
        "closed"
    }
}

fn replica_health_json(h: &ReplicaHealth) -> Json {
    Json::obj([
        ("id", Json::Num(h.id as f64)),
        ("alive", Json::Bool(h.alive)),
        ("draining", Json::Bool(h.draining)),
        ("ready", Json::Bool(h.ready)),
        ("queue_depth", Json::Num(h.queue_depth as f64)),
        ("in_flight", Json::Num(h.in_flight as f64)),
        ("generation", Json::Num(h.generation as f64)),
        ("breaker", Json::Str(breaker_state_name(h.breaker).into())),
        ("handled", Json::Num(h.handled as f64)),
        ("degraded", Json::Num(h.degraded as f64)),
        ("deadline_missed", Json::Num(h.deadline_missed as f64)),
    ])
}

/// A bound, not-yet-running prediction server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// prepares the serving state: one [`Replica`] per
    /// [`ServeConfig::replicas`], each with its own copy of the bundle.
    /// Call [`Server::run`] to start.
    pub fn bind(
        addr: &str,
        bundle: FallbackModel,
        config: ServeConfig,
    ) -> Result<Server, ServeError> {
        if config.queue_capacity == 0 {
            return Err(ServeError::InvalidParameter {
                name: "queue_capacity",
                reason: "must be at least 1",
            });
        }
        if config.replicas == 0 {
            return Err(ServeError::InvalidParameter {
                name: "replicas",
                reason: "must be at least 1",
            });
        }
        let listener = TcpListener::bind(addr).map_err(|source| ServeError::Bind {
            addr: addr.to_string(),
            source,
        })?;
        let local = listener.local_addr()?;
        let replicas: Vec<Arc<Replica<Conn>>> = (0..config.replicas)
            .map(|id| {
                Arc::new(Replica::new(
                    id,
                    bundle.clone(),
                    config.breaker_threshold,
                    config.breaker_cooldown,
                    config.queue_capacity,
                ))
            })
            .collect();
        let force_fail = AtomicU64::new(config.force_fail);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                addr: local,
                router: Router::new(replicas),
                shutting_down: AtomicBool::new(false),
                force_fail,
                shed: AtomicU64::new(0),
                promotions: AtomicU64::new(0),
                rollbacks: AtomicU64::new(0),
                quarantined: AtomicU64::new(0),
                probation: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Runs the accept loop until a graceful shutdown is requested,
    /// then drains every replica's in-flight and queued requests and
    /// returns the lifetime counters.
    pub fn run(self) -> Result<ServeStats, ServeError> {
        let Server { listener, shared } = self;
        let workers = shared.config.workers.max(1);
        // One worker pool per replica, each draining that replica's own
        // queue. Each worker owns a PredictScratch for its whole
        // lifetime, so the batched model pass reuses warm buffers
        // across requests instead of allocating per call.
        let pools: Vec<ServicePool> = shared
            .router
            .replicas()
            .iter()
            .map(|replica| {
                let shared = Arc::clone(&shared);
                let replica = Arc::clone(replica);
                ServicePool::start_with_state(
                    workers,
                    replica.queue(),
                    |_worker| PredictScratch::new(),
                    move |_worker, scratch, conn| {
                        handle_connection(&shared, &replica, scratch, conn);
                        // The response is written: this replica's
                        // in-flight count (the rolling-reload drain
                        // condition) drops only now.
                        replica.finish_request();
                    },
                )
            })
            .collect();

        // The acceptor is single-threaded, so the shed-jitter RNG needs
        // no lock; a fixed seed reproduces the whole jitter sequence.
        let mut shed_rng = Xoshiro256::seed_from(shared.config.shed_jitter_seed);
        for incoming in listener.incoming() {
            if shared.shutting_down.load(Ordering::SeqCst) {
                // `incoming` may be the self-connection that unblocked
                // the acceptor; either way, stop accepting.
                break;
            }
            let stream = match incoming {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let _ = http::configure(&stream);
            let conn = Conn {
                stream,
                accepted_at: Instant::now(),
            };
            if let Err(routed) = shared.router.dispatch(conn) {
                // Router-level shed: never touches any replica's
                // breaker (counts_against_breaker is false for
                // FailurePhase::RouterShed).
                let reason = routed.reason();
                let mut conn = routed.into_inner();
                shared.shed.fetch_add(1, Ordering::Relaxed);
                let body = error_body(reason, true);
                // Jittered Retry-After: clients shed in the same burst
                // get different hints and don't stampede back together.
                let retry_after = shed_retry_after(&mut shed_rng);
                let _ = http::write_response_retry_after(&mut conn.stream, 503, &body, retry_after);
                shared.log_request(None, "-", "-", 503, conn.accepted_at, false, true);
            }
        }

        // Drain: no new work is queued past this point; every replica's
        // workers finish everything already accepted, then exit.
        for replica in shared.router.replicas() {
            replica.close();
        }
        for pool in pools {
            pool.join();
        }
        Ok(shared.stats())
    }
}

fn handle_connection(
    shared: &Shared,
    replica: &Replica<Conn>,
    scratch: &mut PredictScratch,
    mut conn: Conn,
) {
    let request = match http::read_request(&mut conn.stream) {
        Ok(request) => request,
        Err(err) => {
            // Framing failures get a precise status: oversize bodies
            // 413, a head that outlasted its deadline 408, anything
            // else malformed 400.
            let status = match &err {
                ServeError::BodyTooLarge { .. } => 413,
                ServeError::HeaderTimeout { .. } => 408,
                _ => 400,
            };
            let body = error_body(&err.to_string(), false);
            let _ = http::write_response(&mut conn.stream, status, &body);
            replica.count_handled();
            shared.log_request(
                Some(replica.id()),
                "-",
                "-",
                status,
                conn.accepted_at,
                false,
                false,
            );
            return;
        }
    };
    let (status, body, degraded) = route(shared, replica, scratch, &request, conn.accepted_at);
    let _ = http::write_response(&mut conn.stream, status, &body);
    replica.count_handled();
    shared.log_request(
        Some(replica.id()),
        &request.method,
        &request.path,
        status,
        conn.accepted_at,
        degraded,
        false,
    );
}

fn route(
    shared: &Shared,
    replica: &Replica<Conn>,
    scratch: &mut PredictScratch,
    request: &http::Request,
    accepted_at: Instant,
) -> (u16, String, bool) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/predict") => handle_predict(shared, replica, request, accepted_at),
        ("POST", "/predict_batch") => {
            handle_predict_batch(shared, replica, scratch, request, accepted_at)
        }
        ("GET", "/healthz") => (
            200,
            Json::obj([("status", Json::Str("ok".into()))]).to_string(),
            false,
        ),
        ("GET", "/readyz") => handle_readyz(shared),
        ("GET", "/stats") => handle_stats(shared),
        ("POST", "/reload") => handle_reload(shared, replica, request),
        ("POST", "/replica") => handle_replica(shared, request),
        ("POST", "/supervisor") => handle_supervisor(shared, request),
        ("POST", "/shutdown") => handle_shutdown(shared),
        ("POST" | "GET", _) => (
            404,
            error_body(&format!("no such route: {}", request.path), false),
            false,
        ),
        (method, _) => (
            405,
            error_body(&format!("method {method} not allowed"), false),
            false,
        ),
    }
}

fn handle_readyz(shared: &Shared) -> (u16, String, bool) {
    let watermark = shared.watermark();
    let health = shared.router.health(watermark, Instant::now());
    let shutting_down = shared.shutting_down.load(Ordering::SeqCst);
    let ready_count = health.iter().filter(|h| h.ready).count();
    let queue_depth: usize = health.iter().map(|h| h.queue_depth).sum();
    // Every replica serves a copy of the same bundle, so the first
    // replica is representative for the loaded-model flags.
    let (primary_loaded, baseline_loaded) = match shared.router.replica(0) {
        Some(replica) => {
            let snapshot = replica.slot().snapshot();
            (snapshot.has_primary(), snapshot.has_baseline())
        }
        None => (false, false),
    };
    let model_loaded = primary_loaded || baseline_loaded;
    // The fleet is ready while at least one replica can answer.
    let ready = ready_count > 0 && !shutting_down;
    let reason = if !model_loaded {
        "no model loaded"
    } else if shutting_down {
        "shutting down"
    } else if ready_count == 0 {
        if health.iter().all(|h| h.alive && !h.draining) {
            "queue above watermark"
        } else {
            "no replica ready"
        }
    } else {
        ""
    };
    let body = Json::obj([
        ("ready", Json::Bool(ready)),
        ("queue_depth", Json::Num(queue_depth as f64)),
        ("watermark", Json::Num(watermark as f64)),
        ("primary_loaded", Json::Bool(primary_loaded)),
        ("baseline_loaded", Json::Bool(baseline_loaded)),
        ("replicas_total", Json::Num(health.len() as f64)),
        ("replicas_ready", Json::Num(ready_count as f64)),
        (
            "replicas",
            Json::Arr(health.iter().map(replica_health_json).collect()),
        ),
        ("reason", Json::Str(reason.into())),
    ])
    .to_string();
    (if ready { 200 } else { 503 }, body, false)
}

fn handle_stats(shared: &Shared) -> (u16, String, bool) {
    let stats = shared.stats();
    let health = shared.router.health(shared.watermark(), Instant::now());
    let queue_depth: usize = health.iter().map(|h| h.queue_depth).sum();
    let body = Json::obj([
        ("handled", Json::Num(stats.handled as f64)),
        ("shed", Json::Num(stats.shed as f64)),
        ("degraded", Json::Num(stats.degraded as f64)),
        ("deadline_missed", Json::Num(stats.deadline_missed as f64)),
        ("generation", Json::Num(shared.fleet_generation() as f64)),
        ("breaker", Json::Str(fleet_breaker_name(&health).into())),
        ("queue_depth", Json::Num(queue_depth as f64)),
        (
            "queue_capacity",
            Json::Num(shared.config.queue_capacity as f64),
        ),
        ("replicas_total", Json::Num(health.len() as f64)),
        (
            "min_generation",
            Json::Num(shared.fleet_generation() as f64),
        ),
        (
            "promotions",
            Json::Num(shared.promotions.load(Ordering::SeqCst) as f64),
        ),
        (
            "rollbacks",
            Json::Num(shared.rollbacks.load(Ordering::SeqCst) as f64),
        ),
        (
            "quarantined",
            Json::Num(shared.quarantined.load(Ordering::SeqCst) as f64),
        ),
        (
            "probation",
            Json::Str(
                if shared.probation.load(Ordering::SeqCst) {
                    "active"
                } else {
                    "idle"
                }
                .into(),
            ),
        ),
        (
            "replicas",
            Json::Arr(health.iter().map(replica_health_json).collect()),
        ),
    ])
    .to_string();
    (200, body, false)
}

/// `POST /supervisor` — the continuous-learning supervisor reports a
/// lifecycle transition (`{"event":"promotion"|"rollback"|"quarantine"|
/// "probation_start"|"probation_end"}`) so `/stats` exposes fleet-level
/// learning counters alongside the serving counters.
fn handle_supervisor(shared: &Shared, request: &http::Request) -> (u16, String, bool) {
    let parsed = request
        .body_str()
        .map_err(|e| e.to_string())
        .and_then(Json::parse);
    let json = match parsed {
        Ok(json) => json,
        Err(reason) => {
            return (
                400,
                error_body(&format!("bad supervisor body: {reason}"), false),
                false,
            )
        }
    };
    let event = json.get("event").and_then(Json::as_str).unwrap_or("");
    match event {
        "promotion" => {
            shared.promotions.fetch_add(1, Ordering::SeqCst);
        }
        "rollback" => {
            shared.rollbacks.fetch_add(1, Ordering::SeqCst);
        }
        "quarantine" => {
            shared.quarantined.fetch_add(1, Ordering::SeqCst);
        }
        "probation_start" => {
            shared.probation.store(true, Ordering::SeqCst);
        }
        "probation_end" => {
            shared.probation.store(false, Ordering::SeqCst);
        }
        _ => {
            return (
                400,
                error_body(
                    "`event` must be promotion, rollback, quarantine, probation_start \
                     or probation_end",
                    false,
                ),
                false,
            )
        }
    }
    (
        200,
        Json::obj([
            ("status", Json::Str("recorded".into())),
            ("event", Json::Str(event.into())),
        ])
        .to_string(),
        false,
    )
}

fn handle_reload(
    shared: &Shared,
    replica: &Replica<Conn>,
    request: &http::Request,
) -> (u16, String, bool) {
    let parsed = request
        .body_str()
        .map_err(|e| e.to_string())
        .and_then(Json::parse);
    let path = match parsed {
        Ok(json) => match json.get("path").and_then(Json::as_str) {
            Some(path) if !path.is_empty() => PathBuf::from(path),
            _ => {
                return (
                    400,
                    error_body("reload body must be {\"path\":\"<model file>\"}", false),
                    false,
                )
            }
        },
        Err(reason) => {
            return (
                400,
                error_body(&format!("bad reload body: {reason}"), false),
                false,
            )
        }
    };
    // Rolling reload across the fleet. This request occupies one
    // in-flight slot on its own replica, so it names itself as the
    // requester: that replica's drain waits for in-flight == 1.
    match shared.router.rolling_reload(
        &*shared.config.fs,
        &path,
        Some(replica.id()),
        shared.config.reload_drain_timeout,
    ) {
        Ok(report) => {
            let generations = report
                .generations
                .iter()
                .map(|g| Json::Num(*g as f64))
                .collect();
            let steps = report
                .steps
                .iter()
                .map(|step| Json::Arr(step.iter().map(|g| Json::Num(*g as f64)).collect()))
                .collect();
            (
                200,
                Json::obj([
                    ("status", Json::Str("reloaded".into())),
                    ("generation", Json::Num(report.fleet_generation() as f64)),
                    ("generations", Json::Arr(generations)),
                    ("steps", Json::Arr(steps)),
                ])
                .to_string(),
                false,
            )
        }
        // Rejected reloads leave the last-good models serving. A bad
        // path or corrupt candidate is the caller's to fix (400); a
        // transient durable-storage failure reading the candidate is
        // worth retrying (503).
        Err(ReloadError::Rejected(err)) => {
            let retriable = err.is_retriable();
            let status = if retriable { 503 } else { 400 };
            (
                status,
                error_body(&format!("reload rejected: {err}"), retriable),
                false,
            )
        }
        // A drain timeout is transient (in-flight work outlasted the
        // window): already-swapped replicas keep the new model, the
        // rest keep the old one, and a retry finishes the roll.
        Err(ReloadError::DrainTimeout { replica }) => (
            503,
            error_body(
                &format!("reload aborted: replica {replica} did not drain in time"),
                true,
            ),
            false,
        ),
        // Another reload holds the roll; this attempt changed nothing
        // and can simply be retried once the winner finishes.
        Err(ReloadError::Busy) => (
            503,
            error_body("reload already in progress: retry shortly", true),
            false,
        ),
    }
}

/// `POST /replica` — admin/test hook to kill or revive one replica.
fn handle_replica(shared: &Shared, request: &http::Request) -> (u16, String, bool) {
    let parsed = request
        .body_str()
        .map_err(|e| e.to_string())
        .and_then(Json::parse);
    let json = match parsed {
        Ok(json) => json,
        Err(reason) => {
            return (
                400,
                error_body(&format!("bad replica body: {reason}"), false),
                false,
            )
        }
    };
    let id = match json.get("replica").and_then(Json::as_f64) {
        Some(v) if v >= 0.0 && v.fract() == 0.0 => v as usize,
        _ => {
            return (
                400,
                error_body("replica body must carry an integer `replica` index", false),
                false,
            )
        }
    };
    let (verb, done) = match json.get("action").and_then(Json::as_str) {
        Some("kill") => ("killed", shared.router.kill(id)),
        Some("revive") => ("revived", shared.router.revive(id)),
        // Chaos hook: (re)arm the forced-failure counter mid-run, so
        // the learning supervisor can stage a provably-bad promotion
        // and clear leftover tokens after rolling it back. `count`
        // replaces the counter (it does not add to it).
        Some("force_fail") => {
            let count = match json.get("count").and_then(Json::as_f64) {
                Some(v) if v >= 0.0 && v.fract() == 0.0 => v as u64,
                None => 0,
                _ => {
                    return (
                        400,
                        error_body("`count` must be a non-negative integer", false),
                        false,
                    )
                }
            };
            shared.force_fail.store(count, Ordering::SeqCst);
            ("force-fail armed", shared.router.replica(id).is_some())
        }
        _ => {
            return (
                400,
                error_body(
                    "`action` must be \"kill\", \"revive\" or \"force_fail\"",
                    false,
                ),
                false,
            )
        }
    };
    if !done {
        return (
            400,
            error_body(
                &format!("no such replica {id} (fleet has {})", shared.router.len()),
                false,
            ),
            false,
        );
    }
    (
        200,
        Json::obj([
            ("status", Json::Str(verb.into())),
            ("replica", Json::Num(id as f64)),
        ])
        .to_string(),
        false,
    )
}

fn handle_shutdown(shared: &Shared) -> (u16, String, bool) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    // Unblock the acceptor's blocking accept() with a self-connection;
    // it will observe the flag and stop accepting.
    let _ = TcpStream::connect(shared.addr);
    (
        200,
        Json::obj([("status", Json::Str("shutting down".into()))]).to_string(),
        false,
    )
}

fn deadline_for(shared: &Shared, body: &Json, accepted_at: Instant) -> Result<Instant, String> {
    match body.get("deadline_ms") {
        None => Ok(accepted_at + shared.config.default_deadline),
        Some(value) => match value.as_f64() {
            Some(ms) if ms.is_finite() && ms > 0.0 && ms <= 3_600_000.0 => {
                Ok(accepted_at + Duration::from_secs_f64(ms / 1e3))
            }
            _ => Err("deadline_ms must be a positive number of milliseconds".into()),
        },
    }
}

/// Records a queued-phase deadline miss. Pinned by
/// [`counts_against_breaker`]: the model was never invoked, so the
/// breaker is untouched.
fn record_queued_deadline(replica: &Replica<Conn>) {
    replica.count_deadline_missed();
    if counts_against_breaker(504, FailurePhase::QueuedDeadline) {
        replica.breaker().record_failure(Instant::now());
    }
}

/// Records a compute-phase deadline miss: the deadline expired after
/// the model ran. When the *primary* produced the late answer this
/// counts against the breaker (a primary too slow to answer in time
/// has failed); a late baseline answer does not touch it.
fn record_compute_deadline(replica: &Replica<Conn>, breaker: &CircuitBreaker, served: Served) {
    replica.count_deadline_missed();
    if served == Served::Primary && counts_against_breaker(504, FailurePhase::Compute) {
        breaker.record_failure(Instant::now());
    }
}

fn handle_predict(
    shared: &Shared,
    replica: &Replica<Conn>,
    request: &http::Request,
    accepted_at: Instant,
) -> (u16, String, bool) {
    let body = match request
        .body_str()
        .map_err(|e| e.to_string())
        .and_then(Json::parse)
    {
        Ok(json) => json,
        Err(reason) => {
            return (
                400,
                error_body(&format!("bad request body: {reason}"), false),
                false,
            )
        }
    };
    let deadline = match deadline_for(shared, &body, accepted_at) {
        Ok(deadline) => deadline,
        Err(reason) => return (400, error_body(&reason, false), false),
    };
    // Time already burned in the queue counts against the deadline: a
    // request that waited too long is answered 504 before any compute.
    if Instant::now() >= deadline {
        record_queued_deadline(replica);
        return (
            504,
            error_body("deadline exceeded while queued", true),
            false,
        );
    }
    let inputs = match body.get("inputs").and_then(Json::as_f64_array) {
        Some(inputs) => inputs,
        None => {
            return (
                400,
                error_body("request must carry an `inputs` array of numbers", false),
                false,
            )
        }
    };

    let breaker = replica.breaker();
    let snapshot = replica.slot().snapshot();
    if inputs.len() != snapshot.inputs() {
        return (
            400,
            error_body(
                &format!(
                    "configuration width mismatch: expected {}, got {}",
                    snapshot.inputs(),
                    inputs.len()
                ),
                false,
            ),
            false,
        );
    }
    if let Some(index) = inputs.iter().position(|v| !v.is_finite()) {
        return (
            400,
            error_body(
                &format!("configuration feature {index} is not finite"),
                false,
            ),
            false,
        );
    }

    if !shared.config.slow_per_request.is_zero() {
        std::thread::sleep(shared.config.slow_per_request);
    }

    let now = Instant::now();
    // With no baseline to degrade to, bypassing the primary would leave
    // nothing to answer with — try the primary even when the breaker is
    // open. The breaker is only consulted (it consumes the half-open
    // trial slot) when a primary actually exists.
    let chosen = match snapshot.primary() {
        Some(model) if breaker.allow_primary(now) || !snapshot.has_baseline() => Some(model),
        _ => None,
    };

    let mut primary_error: Option<String> = None;
    let mut outcome: Option<(Vec<f64>, Served)> = None;
    if let Some(model) = chosen {
        let forced = shared.take_forced_failure();
        if forced {
            breaker.record_failure(Instant::now());
            primary_error = Some("injected primary failure (--force-fail)".into());
        } else {
            match model.predict(&inputs) {
                Ok(y) if y.iter().all(|v| v.is_finite()) => {
                    // Success is recorded only after the deadline
                    // check below: a primary answer that arrives too
                    // late is a compute-phase failure, not a success.
                    outcome = Some((y, Served::Primary));
                }
                Err(err @ ModelError::NonFiniteInput { .. })
                | Err(err @ ModelError::WidthMismatch { .. }) => {
                    // Caller-input problem: a 4xx never counts against
                    // the breaker (FailurePhase::CallerError), so the
                    // half-open trial is released without a verdict.
                    breaker.abandon_trial();
                    return (400, error_body(&err.to_string(), false), false);
                }
                Ok(_) => {
                    breaker.record_failure(Instant::now());
                    primary_error = Some("primary produced non-finite predictions".into());
                }
                Err(err) => {
                    breaker.record_failure(Instant::now());
                    primary_error = Some(err.to_string());
                }
            }
        }
    }
    let (y, served) = match outcome {
        Some(pair) => pair,
        None => match snapshot.baseline() {
            Some(baseline) => match baseline.predict(&inputs) {
                Ok(y) if y.iter().all(|v| v.is_finite()) => (y, Served::Baseline),
                Ok(_) => {
                    return (
                        500,
                        error_body("baseline produced non-finite predictions", false),
                        false,
                    )
                }
                Err(err) => return (500, error_body(&err.to_string(), false), false),
            },
            None => {
                let reason = primary_error
                    .unwrap_or_else(|| "no model available to serve this request".into());
                return (500, error_body(&reason, false), false);
            }
        },
    };

    // The answer must also *arrive* within the deadline.
    if Instant::now() >= deadline {
        record_compute_deadline(replica, breaker, served);
        return (
            504,
            error_body("deadline exceeded during computation", true),
            false,
        );
    }
    if served == Served::Primary {
        breaker.record_success();
    }

    let degraded = served.is_degraded();
    if degraded {
        replica.count_degraded();
    }
    let names = snapshot
        .output_names()
        .iter()
        .map(|n| Json::Str(n.clone()))
        .collect::<Vec<_>>();
    let body = Json::obj([
        ("outputs", Json::nums(&y)),
        ("output_names", Json::Arr(names)),
        ("degraded", Json::Bool(degraded)),
        (
            "model",
            Json::Str(
                match served {
                    Served::Primary => "mlp",
                    Served::Baseline => "linear-baseline",
                }
                .into(),
            ),
        ),
        ("generation", Json::Num(replica.slot().generation() as f64)),
        ("replica", Json::Num(replica.id() as f64)),
    ])
    .to_string();
    (200, body, degraded)
}

/// `POST /predict_batch`: one prediction per input row, computed by the
/// batched GEMM forward pass through the worker's reusable scratch. The
/// breaker/degradation policy is the same as `/predict`, applied to the
/// whole batch (it either all comes from the primary or all from the
/// baseline — never mixed, so `degraded` stays a single flag).
fn handle_predict_batch(
    shared: &Shared,
    replica: &Replica<Conn>,
    scratch: &mut PredictScratch,
    request: &http::Request,
    accepted_at: Instant,
) -> (u16, String, bool) {
    let body = match request
        .body_str()
        .map_err(|e| e.to_string())
        .and_then(Json::parse)
    {
        Ok(json) => json,
        Err(reason) => {
            return (
                400,
                error_body(&format!("bad request body: {reason}"), false),
                false,
            )
        }
    };
    let deadline = match deadline_for(shared, &body, accepted_at) {
        Ok(deadline) => deadline,
        Err(reason) => return (400, error_body(&reason, false), false),
    };
    if Instant::now() >= deadline {
        record_queued_deadline(replica);
        return (
            504,
            error_body("deadline exceeded while queued", true),
            false,
        );
    }
    let rows = match body.get("inputs").and_then(Json::as_arr) {
        Some(rows) if !rows.is_empty() => rows,
        _ => {
            return (
                400,
                error_body(
                    "request must carry a non-empty `inputs` array of configuration rows",
                    false,
                ),
                false,
            )
        }
    };

    let breaker = replica.breaker();
    let snapshot = replica.slot().snapshot();
    let width = snapshot.inputs();
    let mut xs = Matrix::zeros(rows.len(), width);
    for (r, row) in rows.iter().enumerate() {
        let values = match row.as_f64_array() {
            Some(values) => values,
            None => {
                return (
                    400,
                    error_body(
                        &format!("inputs row {r} must be an array of numbers"),
                        false,
                    ),
                    false,
                )
            }
        };
        if values.len() != width {
            return (
                400,
                error_body(
                    &format!(
                        "configuration width mismatch in row {r}: expected {width}, got {}",
                        values.len()
                    ),
                    false,
                ),
                false,
            );
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return (
                400,
                error_body(
                    &format!("configuration feature {index} in row {r} is not finite"),
                    false,
                ),
                false,
            );
        }
        xs.row_mut(r).copy_from_slice(&values);
    }

    if !shared.config.slow_per_request.is_zero() {
        std::thread::sleep(shared.config.slow_per_request);
    }

    let now = Instant::now();
    let chosen = match snapshot.primary() {
        Some(model) if breaker.allow_primary(now) || !snapshot.has_baseline() => Some(model),
        _ => None,
    };

    let mut primary_error: Option<String> = None;
    let mut outcome: Option<(Vec<Json>, Served)> = None;
    if let Some(model) = chosen {
        let forced = shared.take_forced_failure();
        if forced {
            breaker.record_failure(Instant::now());
            primary_error = Some("injected primary failure (--force-fail)".into());
        } else {
            match model.predict_batch_with(&xs, scratch) {
                Ok(out) if out.as_slice().iter().all(|v| v.is_finite()) => {
                    // Success is recorded after the deadline check.
                    let json_rows = (0..out.rows()).map(|r| Json::nums(out.row(r))).collect();
                    outcome = Some((json_rows, Served::Primary));
                }
                Err(err @ ModelError::NonFiniteInput { .. })
                | Err(err @ ModelError::WidthMismatch { .. }) => {
                    breaker.abandon_trial();
                    return (400, error_body(&err.to_string(), false), false);
                }
                Ok(_) => {
                    breaker.record_failure(Instant::now());
                    primary_error = Some("primary produced non-finite predictions".into());
                }
                Err(err) => {
                    breaker.record_failure(Instant::now());
                    primary_error = Some(err.to_string());
                }
            }
        }
    }
    let (json_rows, served) = match outcome {
        Some(pair) => pair,
        None => match snapshot.baseline() {
            Some(baseline) => match baseline.predict_batch(&xs) {
                Ok(out) if out.as_slice().iter().all(|v| v.is_finite()) => {
                    let json_rows = (0..out.rows()).map(|r| Json::nums(out.row(r))).collect();
                    (json_rows, Served::Baseline)
                }
                Ok(_) => {
                    return (
                        500,
                        error_body("baseline produced non-finite predictions", false),
                        false,
                    )
                }
                Err(err) => return (500, error_body(&err.to_string(), false), false),
            },
            None => {
                let reason = primary_error
                    .unwrap_or_else(|| "no model available to serve this request".into());
                return (500, error_body(&reason, false), false);
            }
        },
    };

    if Instant::now() >= deadline {
        record_compute_deadline(replica, breaker, served);
        return (
            504,
            error_body("deadline exceeded during computation", true),
            false,
        );
    }
    if served == Served::Primary {
        breaker.record_success();
    }

    let degraded = served.is_degraded();
    if degraded {
        replica.count_degraded();
    }
    let names = snapshot
        .output_names()
        .iter()
        .map(|n| Json::Str(n.clone()))
        .collect::<Vec<_>>();
    let body = Json::obj([
        ("outputs", Json::Arr(json_rows)),
        ("output_names", Json::Arr(names)),
        ("rows", Json::Num(rows.len() as f64)),
        ("degraded", Json::Bool(degraded)),
        (
            "model",
            Json::Str(
                match served {
                    Served::Primary => "mlp",
                    Served::Baseline => "linear-baseline",
                }
                .into(),
            ),
        ),
        ("generation", Json::Num(replica.slot().generation() as f64)),
        ("replica", Json::Num(replica.id() as f64)),
    ])
    .to_string();
    (200, body, degraded)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the breaker-accounting table from the serve-layer bugfix
    /// sweep: router sheds and caller errors never count, queued
    /// deadlines never count, and only compute-phase 5xx failures do.
    #[test]
    fn breaker_accounting_rule_is_pinned() {
        // Router-level 503 sheds: never.
        assert!(!counts_against_breaker(503, FailurePhase::RouterShed));
        // Client-side 4xx: never, regardless of code.
        for status in [400, 404, 405] {
            assert!(!counts_against_breaker(status, FailurePhase::CallerError));
        }
        // Deadline expired in the queue: the model never ran.
        assert!(!counts_against_breaker(504, FailurePhase::QueuedDeadline));
        // Compute-phase failures: 5xx counts, including late answers.
        assert!(counts_against_breaker(500, FailurePhase::Compute));
        assert!(counts_against_breaker(504, FailurePhase::Compute));
        // A compute-phase 2xx/4xx is not a failure even in that phase.
        assert!(!counts_against_breaker(200, FailurePhase::Compute));
        assert!(!counts_against_breaker(400, FailurePhase::Compute));
    }

    /// The shed Retry-After jitter stays in its documented bounds and
    /// actually uses them all, so stampeding clients are spread out.
    #[test]
    fn shed_retry_after_jitter_bounds() {
        let mut rng = Xoshiro256::seed_from(0x5eed);
        let draws: Vec<u64> = (0..256).map(|_| shed_retry_after(&mut rng)).collect();
        assert!(draws.iter().all(|&v| (1..=3).contains(&v)));
        for want in 1..=3 {
            assert!(draws.contains(&want), "value {want} never drawn");
        }
    }

    /// A fixed seed reproduces the whole jitter sequence; a different
    /// seed produces a different one.
    #[test]
    fn shed_retry_after_jitter_is_seed_deterministic() {
        let sequence = |seed: u64| -> Vec<u64> {
            let mut rng = Xoshiro256::seed_from(seed);
            (0..64).map(|_| shed_retry_after(&mut rng)).collect()
        };
        assert_eq!(sequence(7), sequence(7));
        assert_ne!(sequence(7), sequence(8));
    }
}
