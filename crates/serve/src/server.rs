//! The fault-tolerant prediction server.
//!
//! A [`Server`] binds a loopback TCP port and serves predictions from a
//! hot-swappable [`FallbackModel`] over minimal HTTP/1.1 + JSON. The
//! design goals are the classic overload-robustness triad:
//!
//! - **Load shedding** — accepted connections enter a bounded queue
//!   ([`wlc_exec::BoundedQueue`]); when it is full the acceptor answers
//!   `503` (retriable) immediately instead of queueing unboundedly.
//! - **Deadlines** — every request carries a deadline (default from
//!   [`ServeConfig::default_deadline`], overridable per request); work
//!   that misses it is answered `504` (retriable) rather than returned
//!   arbitrarily late.
//! - **Graceful degradation** — a [`CircuitBreaker`] guards the MLP;
//!   repeated failures (or a missing/invalid model) route requests to
//!   the linear baseline, tagged `"degraded": true` in the response.
//!
//! Model reloads go through [`ModelSlot`]: validated first, swapped
//! atomically, rejected without disturbing the serving model. Shutdown
//! (`POST /shutdown`) stops accepting, drains in-flight requests and
//! returns cleanly.
//!
//! # Endpoints
//!
//! | Route            | Purpose                                          |
//! |------------------|--------------------------------------------------|
//! | `POST /predict`  | `{"inputs":[...], "deadline_ms":n?}` → prediction |
//! | `POST /predict_batch` | `{"inputs":[[...],...], "deadline_ms":n?}` → one prediction per row, served through the worker's reusable [`PredictScratch`] (allocation-free model pass) |
//! | `GET /healthz`   | liveness (200 while the process serves)          |
//! | `GET /readyz`    | readiness (model loaded, queue below watermark)  |
//! | `GET /stats`     | counters, breaker state, model generation        |
//! | `POST /reload`   | `{"path":"model.txt"}` → validate + hot swap      |
//! | `POST /shutdown` | graceful drain and exit                          |

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wlc_exec::{BoundedQueue, ServicePool};
use wlc_math::Matrix;
use wlc_model::fallback::{FallbackModel, Served};
use wlc_model::{ModelError, PerformanceModel, PredictScratch};

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::error::ServeError;
use crate::http;
use crate::json::Json;
use crate::state::ModelSlot;

/// Server tuning knobs. [`Default`] gives sensible loopback settings.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling requests (minimum 1).
    pub workers: usize,
    /// Bounded queue capacity; connections beyond it are shed with 503.
    pub queue_capacity: usize,
    /// `/readyz` reports not-ready once the queue depth reaches this
    /// watermark (0 = use half the queue capacity).
    pub ready_watermark: usize,
    /// Default per-request deadline when the request does not carry
    /// `deadline_ms`.
    pub default_deadline: Duration,
    /// Consecutive primary failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// Cooldown before an open breaker half-opens to probe the primary.
    pub breaker_cooldown: Duration,
    /// Artificial per-request service time (test/benchmark hook for
    /// driving the server into overload deterministically).
    pub slow_per_request: Duration,
    /// Fail this many primary predictions before behaving normally
    /// (test hook for exercising the breaker, mirroring the trainer's
    /// fault-injection flags).
    pub force_fail: u64,
    /// Emit one structured log line per request to stderr.
    pub log: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            ready_watermark: 0,
            default_deadline: Duration::from_secs(2),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(5),
            slow_per_request: Duration::ZERO,
            force_fail: 0,
            log: false,
        }
    }
}

/// Counters accumulated over a server's lifetime, returned by
/// [`Server::run`] and exposed at `GET /stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered (any status) by worker threads.
    pub handled: u64,
    /// Connections shed by the acceptor with 503 (queue full).
    pub shed: u64,
    /// Predictions served by the linear baseline (degraded mode).
    pub degraded: u64,
    /// Requests rejected with 504 for missing their deadline.
    pub deadline_missed: u64,
}

struct Conn {
    stream: TcpStream,
    accepted_at: Instant,
}

struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    slot: ModelSlot,
    breaker: CircuitBreaker,
    queue: Arc<BoundedQueue<Conn>>,
    shutting_down: AtomicBool,
    force_fail: AtomicU64,
    handled: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    deadline_missed: AtomicU64,
}

impl Shared {
    fn watermark(&self) -> usize {
        match self.config.ready_watermark {
            0 => (self.config.queue_capacity / 2).max(1),
            w => w.min(self.config.queue_capacity),
        }
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            handled: self.handled.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
        }
    }

    /// Consumes one forced-failure token, if any remain.
    fn take_forced_failure(&self) -> bool {
        self.force_fail
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }

    fn log_request(
        &self,
        method: &str,
        path: &str,
        status: u16,
        started: Instant,
        degraded: bool,
        shed: bool,
    ) {
        if !self.config.log {
            return;
        }
        let latency_ms = started.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "wlc-serve method={method} path={path} status={status} \
             latency_ms={latency_ms:.3} queue_depth={depth} degraded={degraded} shed={shed}",
            depth = self.queue.len(),
        );
    }
}

fn error_body(message: &str, retriable: bool) -> String {
    Json::obj([
        ("error", Json::Str(message.to_string())),
        ("retriable", Json::Bool(retriable)),
    ])
    .to_string()
}

fn breaker_state_name(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half-open",
    }
}

/// A bound, not-yet-running prediction server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// prepares the serving state. Call [`Server::run`] to start.
    pub fn bind(
        addr: &str,
        bundle: FallbackModel,
        config: ServeConfig,
    ) -> Result<Server, ServeError> {
        if config.queue_capacity == 0 {
            return Err(ServeError::InvalidParameter {
                name: "queue_capacity",
                reason: "must be at least 1",
            });
        }
        let listener = TcpListener::bind(addr).map_err(|source| ServeError::Bind {
            addr: addr.to_string(),
            source,
        })?;
        let local = listener.local_addr()?;
        let breaker = CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown);
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let force_fail = AtomicU64::new(config.force_fail);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                addr: local,
                slot: ModelSlot::new(bundle),
                breaker,
                queue,
                shutting_down: AtomicBool::new(false),
                force_fail,
                handled: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                degraded: AtomicU64::new(0),
                deadline_missed: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Runs the accept loop until a graceful shutdown is requested,
    /// then drains in-flight and queued requests and returns the
    /// lifetime counters.
    pub fn run(self) -> Result<ServeStats, ServeError> {
        let Server { listener, shared } = self;
        let workers = shared.config.workers.max(1);
        let pool = {
            let shared = Arc::clone(&shared);
            // Each worker owns a PredictScratch for its whole lifetime, so
            // the batched model pass reuses warm buffers across requests
            // instead of allocating per call.
            ServicePool::start_with_state(
                workers,
                Arc::clone(&shared.queue),
                |_worker| PredictScratch::new(),
                move |_worker, scratch, conn| {
                    handle_connection(&shared, scratch, conn);
                },
            )
        };

        for incoming in listener.incoming() {
            if shared.shutting_down.load(Ordering::SeqCst) {
                // `incoming` may be the self-connection that unblocked
                // the acceptor; either way, stop accepting.
                break;
            }
            let stream = match incoming {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let _ = http::configure(&stream);
            let conn = Conn {
                stream,
                accepted_at: Instant::now(),
            };
            if let Err(rejected) = shared.queue.push(conn) {
                let mut conn = rejected.into_inner();
                shared.shed.fetch_add(1, Ordering::Relaxed);
                let body = error_body("server overloaded: request queue is full", true);
                let _ = http::write_response(&mut conn.stream, 503, &body);
                shared.log_request("-", "-", 503, conn.accepted_at, false, true);
            }
        }

        // Drain: no new work is queued past this point; workers finish
        // everything already accepted, then exit.
        shared.queue.close();
        pool.join();
        Ok(shared.stats())
    }
}

fn handle_connection(shared: &Shared, scratch: &mut PredictScratch, mut conn: Conn) {
    let request = match http::read_request(&mut conn.stream) {
        Ok(request) => request,
        Err(err) => {
            let body = error_body(&err.to_string(), false);
            let _ = http::write_response(&mut conn.stream, 400, &body);
            shared.handled.fetch_add(1, Ordering::Relaxed);
            shared.log_request("-", "-", 400, conn.accepted_at, false, false);
            return;
        }
    };
    let (status, body, degraded) = route(shared, scratch, &request, conn.accepted_at);
    let _ = http::write_response(&mut conn.stream, status, &body);
    shared.handled.fetch_add(1, Ordering::Relaxed);
    shared.log_request(
        &request.method,
        &request.path,
        status,
        conn.accepted_at,
        degraded,
        false,
    );
}

fn route(
    shared: &Shared,
    scratch: &mut PredictScratch,
    request: &http::Request,
    accepted_at: Instant,
) -> (u16, String, bool) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/predict") => handle_predict(shared, request, accepted_at),
        ("POST", "/predict_batch") => handle_predict_batch(shared, scratch, request, accepted_at),
        ("GET", "/healthz") => (
            200,
            Json::obj([("status", Json::Str("ok".into()))]).to_string(),
            false,
        ),
        ("GET", "/readyz") => handle_readyz(shared),
        ("GET", "/stats") => handle_stats(shared),
        ("POST", "/reload") => handle_reload(shared, request),
        ("POST", "/shutdown") => handle_shutdown(shared),
        ("POST" | "GET", _) => (
            404,
            error_body(&format!("no such route: {}", request.path), false),
            false,
        ),
        (method, _) => (
            405,
            error_body(&format!("method {method} not allowed"), false),
            false,
        ),
    }
}

fn handle_readyz(shared: &Shared) -> (u16, String, bool) {
    let depth = shared.queue.len();
    let watermark = shared.watermark();
    let snapshot = shared.slot.snapshot();
    let shutting_down = shared.shutting_down.load(Ordering::SeqCst);
    let model_loaded = snapshot.has_primary() || snapshot.has_baseline();
    let ready = model_loaded && depth < watermark && !shutting_down;
    let reason = if !model_loaded {
        "no model loaded"
    } else if shutting_down {
        "shutting down"
    } else if depth >= watermark {
        "queue above watermark"
    } else {
        ""
    };
    let body = Json::obj([
        ("ready", Json::Bool(ready)),
        ("queue_depth", Json::Num(depth as f64)),
        ("watermark", Json::Num(watermark as f64)),
        ("primary_loaded", Json::Bool(snapshot.has_primary())),
        ("baseline_loaded", Json::Bool(snapshot.has_baseline())),
        ("reason", Json::Str(reason.into())),
    ])
    .to_string();
    (if ready { 200 } else { 503 }, body, false)
}

fn handle_stats(shared: &Shared) -> (u16, String, bool) {
    let stats = shared.stats();
    let state = shared.breaker.state(Instant::now());
    let body = Json::obj([
        ("handled", Json::Num(stats.handled as f64)),
        ("shed", Json::Num(stats.shed as f64)),
        ("degraded", Json::Num(stats.degraded as f64)),
        ("deadline_missed", Json::Num(stats.deadline_missed as f64)),
        ("generation", Json::Num(shared.slot.generation() as f64)),
        ("breaker", Json::Str(breaker_state_name(state).into())),
        ("queue_depth", Json::Num(shared.queue.len() as f64)),
        (
            "queue_capacity",
            Json::Num(shared.config.queue_capacity as f64),
        ),
    ])
    .to_string();
    (200, body, false)
}

fn handle_reload(shared: &Shared, request: &http::Request) -> (u16, String, bool) {
    let parsed = request
        .body_str()
        .map_err(|e| e.to_string())
        .and_then(Json::parse);
    let path = match parsed {
        Ok(json) => match json.get("path").and_then(Json::as_str) {
            Some(path) if !path.is_empty() => PathBuf::from(path),
            _ => {
                return (
                    400,
                    error_body("reload body must be {\"path\":\"<model file>\"}", false),
                    false,
                )
            }
        },
        Err(reason) => {
            return (
                400,
                error_body(&format!("bad reload body: {reason}"), false),
                false,
            )
        }
    };
    match shared.slot.reload_from(&path) {
        Ok(generation) => (
            200,
            Json::obj([
                ("status", Json::Str("reloaded".into())),
                ("generation", Json::Num(generation as f64)),
            ])
            .to_string(),
            false,
        ),
        // Rejected reloads leave the last-good model serving; the error
        // is the caller's to fix, so it is non-retriable.
        Err(err) => (
            400,
            error_body(&format!("reload rejected: {err}"), false),
            false,
        ),
    }
}

fn handle_shutdown(shared: &Shared) -> (u16, String, bool) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    // Unblock the acceptor's blocking accept() with a self-connection;
    // it will observe the flag and stop accepting.
    let _ = TcpStream::connect(shared.addr);
    (
        200,
        Json::obj([("status", Json::Str("shutting down".into()))]).to_string(),
        false,
    )
}

fn deadline_for(shared: &Shared, body: &Json, accepted_at: Instant) -> Result<Instant, String> {
    match body.get("deadline_ms") {
        None => Ok(accepted_at + shared.config.default_deadline),
        Some(value) => match value.as_f64() {
            Some(ms) if ms.is_finite() && ms > 0.0 && ms <= 3_600_000.0 => {
                Ok(accepted_at + Duration::from_secs_f64(ms / 1e3))
            }
            _ => Err("deadline_ms must be a positive number of milliseconds".into()),
        },
    }
}

fn handle_predict(
    shared: &Shared,
    request: &http::Request,
    accepted_at: Instant,
) -> (u16, String, bool) {
    let body = match request
        .body_str()
        .map_err(|e| e.to_string())
        .and_then(Json::parse)
    {
        Ok(json) => json,
        Err(reason) => {
            return (
                400,
                error_body(&format!("bad request body: {reason}"), false),
                false,
            )
        }
    };
    let deadline = match deadline_for(shared, &body, accepted_at) {
        Ok(deadline) => deadline,
        Err(reason) => return (400, error_body(&reason, false), false),
    };
    // Time already burned in the queue counts against the deadline: a
    // request that waited too long is answered 504 before any compute.
    if Instant::now() >= deadline {
        shared.deadline_missed.fetch_add(1, Ordering::Relaxed);
        return (
            504,
            error_body("deadline exceeded while queued", true),
            false,
        );
    }
    let inputs = match body.get("inputs").and_then(Json::as_f64_array) {
        Some(inputs) => inputs,
        None => {
            return (
                400,
                error_body("request must carry an `inputs` array of numbers", false),
                false,
            )
        }
    };

    let snapshot = shared.slot.snapshot();
    if inputs.len() != snapshot.inputs() {
        return (
            400,
            error_body(
                &format!(
                    "configuration width mismatch: expected {}, got {}",
                    snapshot.inputs(),
                    inputs.len()
                ),
                false,
            ),
            false,
        );
    }
    if let Some(index) = inputs.iter().position(|v| !v.is_finite()) {
        return (
            400,
            error_body(
                &format!("configuration feature {index} is not finite"),
                false,
            ),
            false,
        );
    }

    if !shared.config.slow_per_request.is_zero() {
        std::thread::sleep(shared.config.slow_per_request);
    }

    let now = Instant::now();
    // With no baseline to degrade to, bypassing the primary would leave
    // nothing to answer with — try the primary even when the breaker is
    // open. The breaker is only consulted (it consumes the half-open
    // trial slot) when a primary actually exists.
    let chosen = match snapshot.primary() {
        Some(model) if shared.breaker.allow_primary(now) || !snapshot.has_baseline() => Some(model),
        _ => None,
    };

    let mut primary_error: Option<String> = None;
    let mut outcome: Option<(Vec<f64>, Served)> = None;
    if let Some(model) = chosen {
        let forced = shared.take_forced_failure();
        if forced {
            shared.breaker.record_failure(Instant::now());
            primary_error = Some("injected primary failure (--force-fail)".into());
        } else {
            match model.predict(&inputs) {
                Ok(y) if y.iter().all(|v| v.is_finite()) => {
                    shared.breaker.record_success();
                    outcome = Some((y, Served::Primary));
                }
                Err(err @ ModelError::NonFiniteInput { .. })
                | Err(err @ ModelError::WidthMismatch { .. }) => {
                    // Caller-input problem: not a model failure, and not
                    // something the baseline should paper over.
                    shared.breaker.abandon_trial();
                    return (400, error_body(&err.to_string(), false), false);
                }
                Ok(_) => {
                    shared.breaker.record_failure(Instant::now());
                    primary_error = Some("primary produced non-finite predictions".into());
                }
                Err(err) => {
                    shared.breaker.record_failure(Instant::now());
                    primary_error = Some(err.to_string());
                }
            }
        }
    }
    let (y, served) = match outcome {
        Some(pair) => pair,
        None => match snapshot.baseline() {
            Some(baseline) => match baseline.predict(&inputs) {
                Ok(y) if y.iter().all(|v| v.is_finite()) => (y, Served::Baseline),
                Ok(_) => {
                    return (
                        500,
                        error_body("baseline produced non-finite predictions", false),
                        false,
                    )
                }
                Err(err) => return (500, error_body(&err.to_string(), false), false),
            },
            None => {
                let reason = primary_error
                    .unwrap_or_else(|| "no model available to serve this request".into());
                return (500, error_body(&reason, false), false);
            }
        },
    };

    // The answer must also *arrive* within the deadline.
    if Instant::now() >= deadline {
        shared.deadline_missed.fetch_add(1, Ordering::Relaxed);
        return (
            504,
            error_body("deadline exceeded during computation", true),
            false,
        );
    }

    let degraded = served.is_degraded();
    if degraded {
        shared.degraded.fetch_add(1, Ordering::Relaxed);
    }
    let names = snapshot
        .output_names()
        .iter()
        .map(|n| Json::Str(n.clone()))
        .collect::<Vec<_>>();
    let body = Json::obj([
        ("outputs", Json::nums(&y)),
        ("output_names", Json::Arr(names)),
        ("degraded", Json::Bool(degraded)),
        (
            "model",
            Json::Str(
                match served {
                    Served::Primary => "mlp",
                    Served::Baseline => "linear-baseline",
                }
                .into(),
            ),
        ),
        ("generation", Json::Num(shared.slot.generation() as f64)),
    ])
    .to_string();
    (200, body, degraded)
}

/// `POST /predict_batch`: one prediction per input row, computed by the
/// batched GEMM forward pass through the worker's reusable scratch. The
/// breaker/degradation policy is the same as `/predict`, applied to the
/// whole batch (it either all comes from the primary or all from the
/// baseline — never mixed, so `degraded` stays a single flag).
fn handle_predict_batch(
    shared: &Shared,
    scratch: &mut PredictScratch,
    request: &http::Request,
    accepted_at: Instant,
) -> (u16, String, bool) {
    let body = match request
        .body_str()
        .map_err(|e| e.to_string())
        .and_then(Json::parse)
    {
        Ok(json) => json,
        Err(reason) => {
            return (
                400,
                error_body(&format!("bad request body: {reason}"), false),
                false,
            )
        }
    };
    let deadline = match deadline_for(shared, &body, accepted_at) {
        Ok(deadline) => deadline,
        Err(reason) => return (400, error_body(&reason, false), false),
    };
    if Instant::now() >= deadline {
        shared.deadline_missed.fetch_add(1, Ordering::Relaxed);
        return (
            504,
            error_body("deadline exceeded while queued", true),
            false,
        );
    }
    let rows = match body.get("inputs").and_then(Json::as_arr) {
        Some(rows) if !rows.is_empty() => rows,
        _ => {
            return (
                400,
                error_body(
                    "request must carry a non-empty `inputs` array of configuration rows",
                    false,
                ),
                false,
            )
        }
    };

    let snapshot = shared.slot.snapshot();
    let width = snapshot.inputs();
    let mut xs = Matrix::zeros(rows.len(), width);
    for (r, row) in rows.iter().enumerate() {
        let values = match row.as_f64_array() {
            Some(values) => values,
            None => {
                return (
                    400,
                    error_body(
                        &format!("inputs row {r} must be an array of numbers"),
                        false,
                    ),
                    false,
                )
            }
        };
        if values.len() != width {
            return (
                400,
                error_body(
                    &format!(
                        "configuration width mismatch in row {r}: expected {width}, got {}",
                        values.len()
                    ),
                    false,
                ),
                false,
            );
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return (
                400,
                error_body(
                    &format!("configuration feature {index} in row {r} is not finite"),
                    false,
                ),
                false,
            );
        }
        xs.row_mut(r).copy_from_slice(&values);
    }

    if !shared.config.slow_per_request.is_zero() {
        std::thread::sleep(shared.config.slow_per_request);
    }

    let now = Instant::now();
    let chosen = match snapshot.primary() {
        Some(model) if shared.breaker.allow_primary(now) || !snapshot.has_baseline() => Some(model),
        _ => None,
    };

    let mut primary_error: Option<String> = None;
    let mut outcome: Option<(Vec<Json>, Served)> = None;
    if let Some(model) = chosen {
        let forced = shared.take_forced_failure();
        if forced {
            shared.breaker.record_failure(Instant::now());
            primary_error = Some("injected primary failure (--force-fail)".into());
        } else {
            match model.predict_batch_with(&xs, scratch) {
                Ok(out) if out.as_slice().iter().all(|v| v.is_finite()) => {
                    shared.breaker.record_success();
                    let json_rows = (0..out.rows()).map(|r| Json::nums(out.row(r))).collect();
                    outcome = Some((json_rows, Served::Primary));
                }
                Err(err @ ModelError::NonFiniteInput { .. })
                | Err(err @ ModelError::WidthMismatch { .. }) => {
                    shared.breaker.abandon_trial();
                    return (400, error_body(&err.to_string(), false), false);
                }
                Ok(_) => {
                    shared.breaker.record_failure(Instant::now());
                    primary_error = Some("primary produced non-finite predictions".into());
                }
                Err(err) => {
                    shared.breaker.record_failure(Instant::now());
                    primary_error = Some(err.to_string());
                }
            }
        }
    }
    let (json_rows, served) = match outcome {
        Some(pair) => pair,
        None => match snapshot.baseline() {
            Some(baseline) => match baseline.predict_batch(&xs) {
                Ok(out) if out.as_slice().iter().all(|v| v.is_finite()) => {
                    let json_rows = (0..out.rows()).map(|r| Json::nums(out.row(r))).collect();
                    (json_rows, Served::Baseline)
                }
                Ok(_) => {
                    return (
                        500,
                        error_body("baseline produced non-finite predictions", false),
                        false,
                    )
                }
                Err(err) => return (500, error_body(&err.to_string(), false), false),
            },
            None => {
                let reason = primary_error
                    .unwrap_or_else(|| "no model available to serve this request".into());
                return (500, error_body(&reason, false), false);
            }
        },
    };

    if Instant::now() >= deadline {
        shared.deadline_missed.fetch_add(1, Ordering::Relaxed);
        return (
            504,
            error_body("deadline exceeded during computation", true),
            false,
        );
    }

    let degraded = served.is_degraded();
    if degraded {
        shared.degraded.fetch_add(1, Ordering::Relaxed);
    }
    let names = snapshot
        .output_names()
        .iter()
        .map(|n| Json::Str(n.clone()))
        .collect::<Vec<_>>();
    let body = Json::obj([
        ("outputs", Json::Arr(json_rows)),
        ("output_names", Json::Arr(names)),
        ("rows", Json::Num(rows.len() as f64)),
        ("degraded", Json::Bool(degraded)),
        (
            "model",
            Json::Str(
                match served {
                    Served::Primary => "mlp",
                    Served::Baseline => "linear-baseline",
                }
                .into(),
            ),
        ),
        ("generation", Json::Num(shared.slot.generation() as f64)),
    ])
    .to_string();
    (200, body, degraded)
}
