//! Minimal HTTP/1.1 framing over [`TcpStream`].
//!
//! Just enough of the protocol for a loopback prediction service:
//! request line + headers + `Content-Length` bodies, one request per
//! connection (`Connection: close` on every response). Header and body
//! sizes are bounded so a misbehaving peer cannot balloon memory, and
//! sockets carry read/write timeouts so a stalled peer cannot wedge a
//! worker.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::error::ServeError;

/// Upper bound on request-line + header bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on body bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Socket read/write timeout: a stalled peer times out instead of
/// pinning a worker forever.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Total budget for receiving a *request* head. The per-read
/// [`IO_TIMEOUT`] only bounds a fully stalled peer; a slow writer
/// dripping one byte per ~9 s could otherwise hold a worker for
/// minutes across a 16 KiB head. Responses are exempt: a loaded
/// server may legitimately take long before its first response byte.
pub const HEAD_DEADLINE: Duration = Duration::from_secs(10);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), upper-cased as received.
    pub method: String,
    /// Request path (query strings are kept verbatim; the server's
    /// routes do not use them).
    pub path: String,
    /// Headers with lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The body decoded as UTF-8.
    pub fn body_str(&self) -> Result<&str, ServeError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ServeError::Protocol("request body is not valid utf-8".into()))
    }
}

/// A parsed HTTP response (client side).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// The body decoded as UTF-8.
    pub fn body_str(&self) -> Result<&str, ServeError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ServeError::Protocol("response body is not valid utf-8".into()))
    }
}

/// Applies the standard socket timeouts to a stream.
pub fn configure(stream: &TcpStream) -> Result<(), ServeError> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    Ok(())
}

/// Reads bytes until the `\r\n\r\n` head terminator, bounded by
/// [`MAX_HEAD_BYTES`] and, when `deadline` is set, by a total wall
/// clock across all reads. Returns `(head, leftover-after-terminator)`.
///
/// The head may arrive across any number of TCP segments — even split
/// mid-terminator — so the loop keeps reading until the delimiter is
/// seen, rescanning only the bytes a new segment could complete (the
/// terminator can start at most 3 bytes before the old buffer end).
/// Under a deadline the socket read timeout is shrunk to the remaining
/// budget each iteration, so a slow writer cannot stretch the wait
/// past `deadline` by trickling bytes; the caller restores the
/// standard timeout afterwards.
fn read_head(
    stream: &mut TcpStream,
    deadline: Option<Duration>,
) -> Result<(Vec<u8>, Vec<u8>), ServeError> {
    // wlc-lint: sanitize(determinism-taint, reason = "deadline arithmetic only; the clock never escapes into the returned bytes")
    let start = std::time::Instant::now();
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let mut scanned = 0usize;
    loop {
        if let Some(end) = find_terminator(&buf, scanned) {
            let rest = buf.split_off(end + 4);
            buf.truncate(end);
            if deadline.is_some() {
                stream.set_read_timeout(Some(IO_TIMEOUT))?;
            }
            return Ok((buf, rest));
        }
        scanned = buf.len().saturating_sub(3);
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ServeError::Protocol("request head too large".into()));
        }
        if let Some(total) = deadline {
            let timeout_err = || ServeError::HeaderTimeout {
                deadline_ms: total.as_millis() as u64,
            };
            let remaining = total
                .checked_sub(start.elapsed())
                .filter(|r| !r.is_zero())
                .ok_or_else(timeout_err)?;
            stream.set_read_timeout(Some(remaining.min(IO_TIMEOUT)))?;
            match read_some(stream, &mut chunk) {
                Ok(0) => {
                    return Err(ServeError::Protocol(
                        "connection closed before end of headers".into(),
                    ))
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(ServeError::Io(e))
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(timeout_err())
                }
                Err(e) => return Err(e),
            }
        } else {
            let n = read_some(stream, &mut chunk)?;
            if n == 0 {
                return Err(ServeError::Protocol(
                    "connection closed before end of headers".into(),
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// One `read`, retrying [`io::ErrorKind::Interrupted`]: a signal
/// landing mid-read must not tear down the connection as a protocol
/// error.
fn read_some(stream: &mut TcpStream, chunk: &mut [u8]) -> Result<usize, ServeError> {
    loop {
        match stream.read(chunk) {
            Ok(n) => return Ok(n),
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err.into()),
        }
    }
}

/// First `\r\n\r\n` at or after byte `from` (absolute index).
fn find_terminator(buf: &[u8], from: usize) -> Option<usize> {
    buf.get(from..)?
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| from + i)
}

fn parse_headers(lines: std::str::Lines<'_>) -> Result<BTreeMap<String, String>, ServeError> {
    let mut headers = BTreeMap::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ServeError::Protocol(format!("malformed header line `{line}`")))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    Ok(headers)
}

fn read_body(
    stream: &mut TcpStream,
    headers: &BTreeMap<String, String>,
    mut leftover: Vec<u8>,
) -> Result<Vec<u8>, ServeError> {
    let length = match headers.get("content-length") {
        None => return Ok(Vec::new()),
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| ServeError::Protocol(format!("bad content-length `{raw}`")))?,
    };
    if length > MAX_BODY_BYTES {
        return Err(ServeError::BodyTooLarge {
            length,
            limit: MAX_BODY_BYTES,
        });
    }
    if leftover.len() < length {
        let mut rest = vec![0u8; length - leftover.len()];
        stream
            .read_exact(&mut rest)
            .map_err(|e| ServeError::Protocol(format!("connection closed mid-body: {e}")))?;
        leftover.extend_from_slice(&rest);
    }
    leftover.truncate(length);
    Ok(leftover)
}

/// Reads and parses one request from a connection. The head must
/// arrive within [`HEAD_DEADLINE`] total (not merely per read); the
/// server answers a breach with 408.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ServeError> {
    read_request_deadline(stream, HEAD_DEADLINE)
}

/// [`read_request`] with an explicit head deadline (tests shrink it).
pub fn read_request_deadline(
    stream: &mut TcpStream,
    deadline: Duration,
) -> Result<Request, ServeError> {
    let (head, leftover) = read_head(stream, Some(deadline))?;
    let head = std::str::from_utf8(&head)
        .map_err(|_| ServeError::Protocol("request head is not valid utf-8".into()))?;
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| ServeError::Protocol("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m, p, v),
        _ => {
            return Err(ServeError::Protocol(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::Protocol(format!(
            "unsupported protocol version `{version}`"
        )));
    }
    let headers = parse_headers(lines)?;
    let body = read_body(stream, &headers, leftover)?;
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// Reads and parses one response from a connection. No total head
/// deadline: a loaded server may take a while before its first byte;
/// the per-read [`IO_TIMEOUT`] still applies.
pub fn read_response(stream: &mut TcpStream) -> Result<Response, ServeError> {
    let (head, leftover) = read_head(stream, None)?;
    let head = std::str::from_utf8(&head)
        .map_err(|_| ServeError::Protocol("response head is not valid utf-8".into()))?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| ServeError::Protocol("empty response".into()))?;
    let mut parts = status_line.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(version), Some(code)) if version.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| ServeError::Protocol(format!("bad status line `{status_line}`")))?,
        _ => {
            return Err(ServeError::Protocol(format!(
                "bad status line `{status_line}`"
            )))
        }
    };
    let headers = parse_headers(lines)?;
    let body = read_body(stream, &headers, leftover)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one response and flushes. Adds `Connection: close`,
/// `Content-Type: application/json` and a `Retry-After: 1` hint on
/// 503/504 so well-behaved clients back off.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> Result<(), ServeError> {
    write_response_retry_after(stream, status, body, 1)
}

/// [`write_response`] with an explicit `Retry-After` value (seconds) on
/// 503/504 responses; other statuses carry no hint. The acceptor's shed
/// path passes a seeded-jittered value here so synchronized clients do
/// not retry in lockstep.
pub fn write_response_retry_after(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    retry_after_secs: u64,
) -> Result<(), ServeError> {
    let retry_hint = if status == 503 || status == 504 {
        format!("Retry-After: {retry_after_secs}\r\n")
    } else {
        String::new()
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {len}\r\nConnection: close\r\n{retry_hint}\r\n",
        reason = reason(status),
        len = body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    Ok(())
}

/// Writes one request and flushes (`Connection: close`).
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(), ServeError> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: wlc\r\nContent-Type: application/json\r\nContent-Length: {len}\r\nConnection: close\r\n\r\n",
        len = body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (server, _) = listener.accept().unwrap();
        let client = join.join().unwrap();
        (client, server)
    }

    #[test]
    fn request_round_trip() {
        let (mut client, mut server) = pair();
        write_request(&mut client, "POST", "/predict", "{\"inputs\":[1.0]}").unwrap();
        let req = read_request(&mut server).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body_str().unwrap(), "{\"inputs\":[1.0]}");
        assert_eq!(
            req.headers.get("connection").map(String::as_str),
            Some("close")
        );

        write_response(&mut server, 200, "{\"ok\":true}").unwrap();
        let resp = read_response(&mut client).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_str().unwrap(), "{\"ok\":true}");
    }

    #[test]
    fn shed_responses_carry_retry_after() {
        let (mut client, mut server) = pair();
        write_response(&mut server, 503, "{}").unwrap();
        let resp = read_response(&mut client).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(
            resp.headers.get("retry-after").map(String::as_str),
            Some("1")
        );

        // Explicit (jittered) values pass through verbatim on 503/504
        // and never appear on other statuses.
        let (mut client, mut server) = pair();
        write_response_retry_after(&mut server, 504, "{}", 3).unwrap();
        let resp = read_response(&mut client).unwrap();
        assert_eq!(
            resp.headers.get("retry-after").map(String::as_str),
            Some("3")
        );
        let (mut client, mut server) = pair();
        write_response_retry_after(&mut server, 200, "{}", 3).unwrap();
        let resp = read_response(&mut client).unwrap();
        assert!(!resp.headers.contains_key("retry-after"));
    }

    #[test]
    fn request_split_across_many_tcp_writes_is_reassembled() {
        // Regression: the reader must tolerate heads and bodies arriving
        // across arbitrarily many TCP segments, including a split in the
        // middle of the `\r\n\r\n` terminator, not assume one read
        // yields the full head.
        let (mut client, mut server) = pair();
        let raw =
            b"POST /predict HTTP/1.1\r\nHost: wlc\r\nContent-Length: 16\r\n\r\n{\"inputs\":[1.0]}";
        let writer = thread::spawn(move || {
            // 3-byte chunks with pauses: every boundary lands somewhere
            // interesting at least once, including inside `\r\n\r\n`.
            for chunk in raw.chunks(3) {
                client.write_all(chunk).unwrap();
                client.flush().unwrap();
                thread::sleep(std::time::Duration::from_millis(1));
            }
            client
        });
        let req = read_request(&mut server).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body_str().unwrap(), "{\"inputs\":[1.0]}");
        writer.join().unwrap();
    }

    #[test]
    fn terminator_split_exactly_at_segment_boundary() {
        // The nastiest split: `\r\n` then, in a later segment, `\r\n`
        // plus the body. The incremental rescan must still find the
        // terminator that straddles the boundary.
        let (mut client, mut server) = pair();
        let writer = thread::spawn(move || {
            client.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
            client.flush().unwrap();
            thread::sleep(std::time::Duration::from_millis(5));
            client.write_all(b"\r\n").unwrap();
            client.flush().unwrap();
            client
        });
        let req = read_request(&mut server).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        writer.join().unwrap();
    }

    #[test]
    fn response_split_across_tcp_writes_is_reassembled() {
        let (mut client, mut server) = pair();
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\n{\"ok\":true}".to_vec();
        let writer = thread::spawn(move || {
            for chunk in raw.chunks(7) {
                server.write_all(chunk).unwrap();
                server.flush().unwrap();
                thread::sleep(std::time::Duration::from_millis(1));
            }
            server
        });
        let resp = read_response(&mut client).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_str().unwrap(), "{\"ok\":true}");
        writer.join().unwrap();
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        let (mut client, mut server) = pair();
        client.write_all(b"NONSENSE\r\n\r\n").unwrap();
        client.flush().unwrap();
        assert!(matches!(
            read_request(&mut server),
            Err(ServeError::Protocol(_))
        ));

        let (mut client2, mut server2) = pair();
        client2
            .write_all(b"POST / HTTP/1.1\r\nContent-Length: zzz\r\n\r\n")
            .unwrap();
        assert!(matches!(
            read_request(&mut server2),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_without_allocation() {
        let (mut client, mut server) = pair();
        let head = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        client.write_all(head.as_bytes()).unwrap();
        assert!(matches!(
            read_request(&mut server),
            Err(ServeError::BodyTooLarge { .. })
        ));
    }

    #[test]
    fn body_at_exactly_the_limit_split_across_writes_is_accepted() {
        // Boundary regression: Content-Length == MAX_BODY_BYTES must
        // pass framing even when the body arrives in many TCP segments.
        let (mut client, mut server) = pair();
        let body = vec![b'x'; MAX_BODY_BYTES];
        let head = format!("POST /predict HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES}\r\n\r\n");
        let writer = thread::spawn(move || {
            client.write_all(head.as_bytes()).unwrap();
            for chunk in body.chunks(64 * 1024) {
                client.write_all(chunk).unwrap();
                client.flush().unwrap();
            }
            client
        });
        let req = read_request(&mut server).unwrap();
        assert_eq!(req.body.len(), MAX_BODY_BYTES);
        assert!(req.body.iter().all(|&b| b == b'x'));
        writer.join().unwrap();
    }

    #[test]
    fn body_one_byte_over_the_limit_is_413_before_any_body_read() {
        let (mut client, mut server) = pair();
        let over = MAX_BODY_BYTES + 1;
        let head = format!("POST /predict HTTP/1.1\r\nContent-Length: {over}\r\n\r\n");
        // Only the head is sent; the reader must reject from the
        // declared length alone instead of waiting for body bytes.
        client.write_all(head.as_bytes()).unwrap();
        client.flush().unwrap();
        match read_request(&mut server) {
            Err(ServeError::BodyTooLarge { length, limit }) => {
                assert_eq!(length, over);
                assert_eq!(limit, MAX_BODY_BYTES);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn slow_header_writer_hits_the_head_deadline() {
        // A peer trickling header bytes must be cut off by the total
        // head deadline, not granted a fresh IO_TIMEOUT per read.
        let (mut client, mut server) = pair();
        configure(&server).unwrap();
        let writer = thread::spawn(move || {
            // Never send the terminator; drip a byte at a time.
            for _ in 0..50 {
                if client.write_all(b"G").is_err() {
                    break;
                }
                let _ = client.flush();
                thread::sleep(std::time::Duration::from_millis(10));
            }
            drop(client);
        });
        let deadline = Duration::from_millis(120);
        let started = std::time::Instant::now();
        match read_request_deadline(&mut server, deadline) {
            Err(ServeError::HeaderTimeout { deadline_ms }) => {
                assert_eq!(deadline_ms, 120);
            }
            other => panic!("expected HeaderTimeout, got {other:?}"),
        }
        // The wait was bounded by the deadline, not by IO_TIMEOUT.
        assert!(started.elapsed() < Duration::from_secs(5));
        writer.join().unwrap();
    }

    #[test]
    fn fast_header_within_deadline_still_parses() {
        let (mut client, mut server) = pair();
        configure(&server).unwrap();
        let writer = thread::spawn(move || {
            client.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            client.flush().unwrap();
            client
        });
        let req = read_request_deadline(&mut server, Duration::from_secs(5)).unwrap();
        assert_eq!(req.path, "/healthz");
        writer.join().unwrap();
    }

    #[test]
    fn truncated_body_reports_protocol_error() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
            .unwrap();
        drop(client); // close before the promised 10 bytes arrive
        assert!(matches!(
            read_request(&mut server),
            Err(ServeError::Protocol(_))
        ));
    }
}
