//! A circuit breaker guarding the primary (MLP) prediction path.
//!
//! Repeated primary failures flip the circuit **open**, routing requests
//! straight to the linear-baseline fallback instead of hammering a model
//! that keeps failing. After a cooldown the breaker moves to
//! **half-open** and admits a single trial request: success closes the
//! circuit, failure re-opens it and restarts the cooldown.
//!
//! Time is injected by the caller (as an [`Instant`]) so tests can drive
//! state transitions deterministically without sleeping.

use std::time::{Duration, Instant};

use wlc_exec::TrackedMutex;

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: primary requests flow normally.
    Closed,
    /// Tripped: primary is bypassed until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one trial request is probing the primary.
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    /// Set while a half-open trial is in flight so concurrent requests
    /// do not all stampede the primary at once.
    trial_in_flight: bool,
}

/// Consecutive-failure circuit breaker (see module docs).
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: TrackedMutex<Inner>,
}

impl CircuitBreaker {
    /// Creates a breaker that opens after `threshold` consecutive
    /// failures (minimum 1) and half-opens after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: TrackedMutex::new(
                "CircuitBreaker.inner",
                Inner {
                    state: BreakerState::Closed,
                    consecutive_failures: 0,
                    opened_at: None,
                    trial_in_flight: false,
                },
            ),
        }
    }

    /// Current state as of `now` (an open circuit whose cooldown has
    /// elapsed reports [`BreakerState::HalfOpen`]).
    pub fn state(&self, now: Instant) -> BreakerState {
        let inner = self.inner.lock();
        match inner.state {
            BreakerState::Open if self.cooled_down(&inner, now) => BreakerState::HalfOpen,
            s => s,
        }
    }

    fn cooled_down(&self, inner: &Inner, now: Instant) -> bool {
        inner
            .opened_at
            .is_some_and(|t| now.duration_since(t) >= self.cooldown)
    }

    /// Decides whether this request may use the primary model.
    ///
    /// Closed → yes. Open within cooldown → no. Open past cooldown →
    /// transition to half-open and admit exactly one trial; concurrent
    /// requests keep using the fallback until the trial reports back.
    pub fn allow_primary(&self, now: Instant) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                if inner.trial_in_flight {
                    false
                } else {
                    inner.trial_in_flight = true;
                    true
                }
            }
            BreakerState::Open => {
                if self.cooled_down(&inner, now) {
                    inner.state = BreakerState::HalfOpen;
                    inner.trial_in_flight = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Releases a half-open trial slot without recording an outcome —
    /// used when a request granted the trial turns out to be invalid
    /// (a caller error says nothing about the primary model's health).
    pub fn abandon_trial(&self) {
        let mut inner = self.inner.lock();
        inner.trial_in_flight = false;
    }

    /// Records a successful primary prediction: closes the circuit and
    /// resets the failure streak.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
        inner.trial_in_flight = false;
    }

    /// Records a failed primary prediction as of `now`; returns `true`
    /// if this failure opened (or re-opened) the circuit.
    pub fn record_failure(&self, now: Instant) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::HalfOpen => {
                // Failed trial: straight back to open, fresh cooldown.
                inner.state = BreakerState::Open;
                inner.opened_at = Some(now);
                inner.trial_in_flight = false;
                true
            }
            BreakerState::Open => {
                inner.opened_at = Some(now);
                false
            }
            BreakerState::Closed => {
                inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
                if inner.consecutive_failures >= self.threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(now);
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COOLDOWN: Duration = Duration::from_millis(100);

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, COOLDOWN);
        let t = Instant::now();
        assert!(b.allow_primary(t));
        assert!(!b.record_failure(t));
        assert!(!b.record_failure(t));
        assert_eq!(b.state(t), BreakerState::Closed);
        assert!(b.record_failure(t)); // third strike opens
        assert_eq!(b.state(t), BreakerState::Open);
        assert!(!b.allow_primary(t));
    }

    #[test]
    fn success_resets_the_streak() {
        let b = CircuitBreaker::new(2, COOLDOWN);
        let t = Instant::now();
        b.record_failure(t);
        b.record_success();
        assert!(!b.record_failure(t)); // streak restarted: 1 < 2
        assert_eq!(b.state(t), BreakerState::Closed);
    }

    #[test]
    fn half_opens_after_cooldown_and_admits_one_trial() {
        let b = CircuitBreaker::new(1, COOLDOWN);
        let t0 = Instant::now();
        b.record_failure(t0);
        assert!(!b.allow_primary(t0));

        let t1 = t0 + COOLDOWN;
        assert_eq!(b.state(t1), BreakerState::HalfOpen);
        assert!(b.allow_primary(t1)); // the single trial
        assert!(!b.allow_primary(t1)); // concurrent request: fallback
        b.abandon_trial(); // trial request turned out invalid
        assert!(b.allow_primary(t1)); // slot freed for the next probe
        b.record_success();
        assert_eq!(b.state(t1), BreakerState::Closed);
        assert!(b.allow_primary(t1));
    }

    #[test]
    fn failed_trial_reopens_with_fresh_cooldown() {
        let b = CircuitBreaker::new(1, COOLDOWN);
        let t0 = Instant::now();
        b.record_failure(t0);
        let t1 = t0 + COOLDOWN;
        assert!(b.allow_primary(t1));
        assert!(b.record_failure(t1)); // trial failed → open again
        assert_eq!(b.state(t1), BreakerState::Open);
        assert!(!b.allow_primary(t1 + COOLDOWN / 2)); // new cooldown running
        assert!(b.allow_primary(t1 + COOLDOWN)); // ... until it elapses
    }
}
