//! A minimal JSON value type, parser and serializer.
//!
//! The server's wire format is deliberately tiny — flat objects holding
//! numbers, strings, booleans and arrays — so a from-scratch
//! implementation keeps the workspace dependency-free. The parser is
//! strict (trailing garbage, unterminated strings and malformed escapes
//! are errors); the serializer emits non-finite numbers as `null`, which
//! request validation upstream makes unreachable for prediction outputs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Objects use a [`BTreeMap`] so serialization order is deterministic —
/// handy for byte-identical golden responses in tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`; `1e999` overflows to infinity,
    /// which downstream finiteness validation rejects).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Builds an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array of numbers.
    pub fn nums(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Extracts an array of numbers (every element must be a number).
    pub fn as_f64_array(&self) -> Option<Vec<f64>> {
        self.as_arr()?
            .iter()
            .map(Json::as_f64)
            .collect::<Option<Vec<f64>>>()
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{:?}` keeps full round-trip precision for f64.
                    write!(f, "{v:?}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid number at byte {start}"))?;
    token
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{token}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "invalid \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        // Surrogates are rejected rather than paired; the
                        // server never emits them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("invalid \\u escape `{hex}`"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err("invalid escape sequence".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // slicing on char boundaries is safe). The byte at `pos`
                // exists (this arm matched), so the decoded text is
                // non-empty; the `None` arm is unreachable but stays
                // panic-free anyway.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8 in string")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trips() {
        let text = r#"{"inputs":[1.0,2.5,-3e2],"deadline_ms":250,"tag":"a b","ok":true,"n":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(
            v.get("inputs").unwrap().as_f64_array().unwrap(),
            vec![1.0, 2.5, -300.0]
        );
        assert_eq!(v.get("deadline_ms").unwrap().as_f64(), Some(250.0));
        assert_eq!(v.get("tag").unwrap().as_str(), Some("a b"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n"), Some(&Json::Null));
        // Serialize and reparse: stable.
        let again = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,2",
            "{\"a\" 1}",
            "{\"a\":}",
            "\"unterminated",
            "{\"a\":1} trailing",
            "[1,,2]",
            "nul",
            "{\"a\":1e}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn overflowing_number_parses_to_infinity() {
        // The JSON layer accepts it; finiteness validation rejects it
        // later with a 400 rather than silently predicting on inf.
        let v = Json::parse("[1e999]").unwrap();
        assert!(v.as_f64_array().unwrap()[0].is_infinite());
    }

    #[test]
    fn escapes_strings_and_nonfinite_numbers() {
        let v = Json::obj([
            ("msg", Json::Str("line\n\"q\"\\".into())),
            ("bad", Json::Num(f64::NAN)),
        ]);
        let text = v.to_string();
        assert_eq!(text, r#"{"bad":null,"msg":"line\n\"q\"\\"}"#);
        assert_eq!(Json::parse(&text).unwrap().get("bad"), Some(&Json::Null));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#""é\t""#).unwrap();
        assert_eq!(v.as_str(), Some("é\t"));
        assert!(Json::parse(r#""\ud800""#).is_err()); // lone surrogate
    }
}
