use std::error::Error;
use std::fmt;

use wlc_model::ModelError;

/// Error type for the prediction server and its client.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Binding the listening socket failed.
    Bind {
        /// Address that could not be bound.
        addr: String,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// A socket read/write failed mid-conversation.
    Io(std::io::Error),
    /// The peer sent something that is not valid HTTP/JSON for this
    /// protocol (malformed request line, missing body, bad JSON, ...).
    Protocol(String),
    /// A server or client configuration parameter was invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint that was violated.
        reason: &'static str,
    },
    /// A model operation (load, validate, predict) failed.
    Model(ModelError),
    /// The server rejected a request with an HTTP error status.
    Rejected {
        /// HTTP status code (400 validation, 503 shed, 504 deadline, ...).
        status: u16,
        /// Server-provided diagnostic.
        message: String,
        /// Whether the server marked the rejection as retriable.
        retriable: bool,
    },
    /// The client exhausted its retry budget against retriable failures.
    RetriesExhausted {
        /// Number of attempts made.
        attempts: usize,
        /// Description of the last failure.
        last: String,
    },
    /// A request body exceeded the server's size cap (HTTP 413).
    BodyTooLarge {
        /// Declared `Content-Length`.
        length: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The peer failed to deliver the request head before the read
    /// deadline (HTTP 408) — a slow-writer defence.
    HeaderTimeout {
        /// The deadline that elapsed, in milliseconds.
        deadline_ms: u64,
    },
    /// Durable storage failed at a fault-injection site (e.g. the model
    /// file could not be read during a reload). Carries the per-site
    /// retriability pinned by `wlc_fault::SITE_POLICY`.
    Durable {
        /// The failpoint site (`serve.model.load`, ...).
        site: &'static str,
        /// The path the operation touched.
        path: String,
        /// The underlying failure.
        reason: String,
        /// Whether retrying later can reasonably succeed.
        retriable: bool,
    },
}

impl ServeError {
    /// Whether retrying the same request later could reasonably succeed.
    ///
    /// Load shedding (503) and deadline timeouts (504) are transient;
    /// validation errors (4xx) and protocol errors are not.
    pub fn is_retriable(&self) -> bool {
        match self {
            ServeError::Io(_) => true,
            ServeError::Rejected { retriable, .. } => *retriable,
            ServeError::Durable { retriable, .. } => *retriable,
            _ => false,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => {
                write!(f, "failed to bind `{addr}`: {source}")
            }
            ServeError::Io(e) => write!(f, "server io error: {e}"),
            ServeError::Protocol(reason) => write!(f, "protocol error: {reason}"),
            ServeError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Rejected {
                status,
                message,
                retriable,
            } => {
                let kind = if *retriable {
                    "retriable"
                } else {
                    "non-retriable"
                };
                write!(f, "server rejected request ({status}, {kind}): {message}")
            }
            ServeError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "request failed after {attempts} attempts; last error: {last}"
                )
            }
            ServeError::BodyTooLarge { length, limit } => {
                write!(f, "body of {length} bytes exceeds the {limit}-byte limit")
            }
            ServeError::HeaderTimeout { deadline_ms } => {
                write!(f, "request head not received within {deadline_ms} ms")
            }
            ServeError::Durable {
                site,
                path,
                reason,
                retriable,
            } => {
                let kind = if *retriable { "retriable" } else { "fatal" };
                write!(
                    f,
                    "durable storage failure at {site} ({kind}) on `{path}`: {reason}"
                )
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } => Some(source),
            ServeError::Io(e) => Some(e),
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_retriability() {
        let shed = ServeError::Rejected {
            status: 503,
            message: "queue full".into(),
            retriable: true,
        };
        assert!(shed.is_retriable());
        assert!(shed.to_string().contains("503"));
        assert!(shed.to_string().contains("retriable"));

        let bad = ServeError::Rejected {
            status: 400,
            message: "width mismatch".into(),
            retriable: false,
        };
        assert!(!bad.is_retriable());
        assert!(bad.to_string().contains("non-retriable"));

        let proto = ServeError::Protocol("bad request line".into());
        assert!(!proto.is_retriable());
        assert!(proto.to_string().contains("bad request line"));
    }

    #[test]
    fn sources_and_conversions() {
        let io: ServeError = std::io::Error::other("x").into();
        assert!(io.is_retriable());
        assert!(Error::source(&io).is_some());

        let m: ServeError = ModelError::InvalidParameter {
            name: "n",
            reason: "r",
        }
        .into();
        assert!(Error::source(&m).is_some());
        assert!(!m.is_retriable());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ServeError>();
    }
}
