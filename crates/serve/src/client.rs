//! A retrying client for the prediction server.
//!
//! The client honours the server's retriable/non-retriable distinction:
//! connect failures, `503` (shed) and `504` (deadline) are retried with
//! exponential backoff plus deterministic jitter (seeded
//! [`Xoshiro256`], so tests replay exactly); validation errors (`4xx`)
//! and protocol errors surface immediately.

use std::net::TcpStream;
use std::time::Duration;

use wlc_exec::TrackedMutex;
use wlc_math::rng::Xoshiro256;

use crate::error::ServeError;
use crate::http;
use crate::json::Json;

/// A successful `/predict` response.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted performance indicators, in output order.
    pub outputs: Vec<f64>,
    /// Names of the outputs (parallel to `outputs`).
    pub output_names: Vec<String>,
    /// Whether the linear baseline answered instead of the MLP.
    pub degraded: bool,
    /// Which model answered (`"mlp"` or `"linear-baseline"`).
    pub model: String,
    /// Serving-model generation (bumped by each successful hot reload).
    pub generation: u64,
    /// Which replica answered.
    pub replica: u64,
}

/// A successful `/predict_batch` response.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPrediction {
    /// One prediction row per input configuration, in request order.
    pub outputs: Vec<Vec<f64>>,
    /// Names of the outputs (parallel to each row of `outputs`).
    pub output_names: Vec<String>,
    /// Whether the linear baseline answered instead of the MLP.
    pub degraded: bool,
    /// Which model answered (`"mlp"` or `"linear-baseline"`).
    pub model: String,
    /// Serving-model generation (bumped by each successful hot reload).
    pub generation: u64,
    /// Which replica answered.
    pub replica: u64,
}

/// A completed rolling reload, as reported by `POST /reload`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// The fleet's committed generation (minimum across replicas).
    pub generation: u64,
    /// Final per-replica generations, in replica order.
    pub generations: Vec<u64>,
    /// Generation vector after each single-replica swap: step `i`
    /// shows exactly `i + 1` replicas advanced.
    pub steps: Vec<Vec<u64>>,
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Maximum attempts per request (first try + retries, minimum 1).
    pub max_attempts: usize,
    /// Base backoff; attempt `k` sleeps `base * 2^k` plus jitter.
    pub base_backoff: Duration,
    /// Cap applied to any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the jitter source (deterministic for tests).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_attempts: 5,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0x5eed,
        }
    }
}

/// A connection-per-request client with retry + backoff (see module docs).
#[derive(Debug)]
pub struct ServeClient {
    addr: String,
    config: ClientConfig,
    rng: TrackedMutex<Xoshiro256>,
}

impl ServeClient {
    /// Creates a client for `addr` (e.g. `127.0.0.1:4321`).
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> Self {
        let seed = config.jitter_seed;
        ServeClient {
            addr: addr.into(),
            config,
            rng: TrackedMutex::new("ServeClient.rng", Xoshiro256::seed_from(seed)),
        }
    }

    /// Backoff before retry attempt `attempt` (0-based): exponential
    /// with uniform jitter in `[0, base)`, capped at `max_backoff`.
    fn backoff(&self, attempt: usize) -> Duration {
        let base = self.config.base_backoff;
        let exp = base.saturating_mul(1u32 << attempt.min(16) as u32);
        let jitter = base.mul_f64(self.rng.lock().next_f64());
        (exp + jitter).min(self.config.max_backoff)
    }

    fn attempt(&self, method: &str, path: &str, body: &str) -> Result<http::Response, ServeError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        http::configure(&stream)?;
        http::write_request(&mut stream, method, path, body)?;
        http::read_response(&mut stream)
    }

    /// Sends one request, retrying retriable failures (connect/IO
    /// errors, 503 shed, 504 deadline) with backoff. Non-retriable
    /// responses — including 2xx and 4xx — return on the first attempt.
    /// When retries run out, the last retriable *response* is returned
    /// as-is (so callers see the final 503/504 verbatim);
    /// [`ServeError::RetriesExhausted`] is reserved for never having
    /// reached the server at all.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<http::Response, ServeError> {
        let attempts = self.config.max_attempts.max(1);
        let mut last_io = String::new();
        let mut last_response = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff(attempt - 1));
            }
            match self.attempt(method, path, body) {
                Ok(response) if response.status == 503 || response.status == 504 => {
                    last_response = Some(response);
                }
                Ok(response) => return Ok(response),
                // Connection-level failures are retriable: the server
                // may be draining, restarting, or mid-accept.
                Err(ServeError::Io(err)) => last_io = format!("io error: {err}"),
                Err(err) => return Err(err),
            }
        }
        match last_response {
            Some(response) => Ok(response),
            None => Err(ServeError::RetriesExhausted {
                attempts,
                last: last_io,
            }),
        }
    }

    fn request_json(&self, method: &str, path: &str, body: &str) -> Result<Json, ServeError> {
        let response = self.request(method, path, body)?;
        let text = response.body_str()?;
        let json = Json::parse(text)
            .map_err(|reason| ServeError::Protocol(format!("bad response body: {reason}")))?;
        if response.status == 200 {
            return Ok(json);
        }
        let message = json
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown error")
            .to_string();
        let retriable = json
            .get("retriable")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        Err(ServeError::Rejected {
            status: response.status,
            message,
            retriable,
        })
    }

    /// Requests a prediction for one configuration.
    pub fn predict(&self, inputs: &[f64]) -> Result<Prediction, ServeError> {
        self.predict_with_deadline(inputs, None)
    }

    /// Requests a prediction with an explicit deadline in milliseconds.
    pub fn predict_with_deadline(
        &self,
        inputs: &[f64],
        deadline_ms: Option<u64>,
    ) -> Result<Prediction, ServeError> {
        let mut body = vec![("inputs", Json::nums(inputs))];
        if let Some(ms) = deadline_ms {
            body.push(("deadline_ms", Json::Num(ms as f64)));
        }
        let body =
            Json::Obj(body.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).to_string();
        let json = self.request_json("POST", "/predict", &body)?;
        let outputs = json
            .get("outputs")
            .and_then(Json::as_f64_array)
            .ok_or_else(|| ServeError::Protocol("response missing `outputs`".into()))?;
        let output_names = json
            .get("output_names")
            .and_then(Json::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        Ok(Prediction {
            outputs,
            output_names,
            degraded: json
                .get("degraded")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            model: json
                .get("model")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            generation: json.get("generation").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            replica: json.get("replica").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        })
    }

    /// Requests predictions for many configurations in one round trip
    /// (`POST /predict_batch`): the server answers every row through its
    /// allocation-free batched forward pass.
    pub fn predict_batch(&self, inputs: &[Vec<f64>]) -> Result<BatchPrediction, ServeError> {
        self.predict_batch_with_deadline(inputs, None)
    }

    /// Batched prediction with an explicit deadline in milliseconds.
    pub fn predict_batch_with_deadline(
        &self,
        inputs: &[Vec<f64>],
        deadline_ms: Option<u64>,
    ) -> Result<BatchPrediction, ServeError> {
        let rows = Json::Arr(inputs.iter().map(|row| Json::nums(row)).collect());
        let mut body = vec![("inputs", rows)];
        if let Some(ms) = deadline_ms {
            body.push(("deadline_ms", Json::Num(ms as f64)));
        }
        let body =
            Json::Obj(body.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).to_string();
        let json = self.request_json("POST", "/predict_batch", &body)?;
        let outputs = json
            .get("outputs")
            .and_then(Json::as_arr)
            .map(|rows| {
                rows.iter()
                    .map(Json::as_f64_array)
                    .collect::<Option<Vec<_>>>()
            })
            .and_then(|rows| rows)
            .ok_or_else(|| ServeError::Protocol("response missing `outputs` rows".into()))?;
        let output_names = json
            .get("output_names")
            .and_then(Json::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        Ok(BatchPrediction {
            outputs,
            output_names,
            degraded: json
                .get("degraded")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            model: json
                .get("model")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            generation: json.get("generation").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            replica: json.get("replica").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        })
    }

    /// `GET /healthz` — liveness.
    pub fn healthz(&self) -> Result<Json, ServeError> {
        self.request_json("GET", "/healthz", "")
    }

    /// `GET /readyz` — readiness. `Ok` when ready; a 503 surfaces as
    /// [`ServeError::Rejected`] after retries.
    pub fn readyz(&self) -> Result<Json, ServeError> {
        self.request_json("GET", "/readyz", "")
    }

    /// `GET /stats` — lifetime counters and breaker state.
    pub fn stats(&self) -> Result<Json, ServeError> {
        self.request_json("GET", "/stats", "")
    }

    /// `POST /reload` — validated rolling hot swap of the model at
    /// `path` across every replica; returns the fleet's committed
    /// generation (the minimum across replicas).
    pub fn reload(&self, path: &str) -> Result<u64, ServeError> {
        Ok(self.reload_detailed(path)?.generation)
    }

    /// `POST /reload` with the full rolling-reload report: final
    /// per-replica generations and the per-swap step snapshots that
    /// prove the one-replica-at-a-time barrier.
    pub fn reload_detailed(&self, path: &str) -> Result<ReloadOutcome, ServeError> {
        let body = Json::obj([("path", Json::Str(path.into()))]).to_string();
        let json = self.request_json("POST", "/reload", &body)?;
        let nums = |v: &Json| -> Vec<u64> {
            v.as_arr()
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|n| n.as_f64().map(|f| f as u64))
                        .collect()
                })
                .unwrap_or_default()
        };
        Ok(ReloadOutcome {
            generation: json.get("generation").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            generations: json.get("generations").map(nums).unwrap_or_default(),
            steps: json
                .get("steps")
                .and_then(Json::as_arr)
                .map(|steps| steps.iter().map(nums).collect())
                .unwrap_or_default(),
        })
    }

    /// `POST /replica` — take replica `id` out of rotation (admin/test
    /// hook; queued work still drains, the router routes around it).
    pub fn kill_replica(&self, id: usize) -> Result<(), ServeError> {
        self.replica_action(id, "kill")
    }

    /// `POST /replica` — bring a killed replica back into rotation.
    pub fn revive_replica(&self, id: usize) -> Result<(), ServeError> {
        self.replica_action(id, "revive")
    }

    fn replica_action(&self, id: usize, action: &str) -> Result<(), ServeError> {
        let body = Json::obj([
            ("replica", Json::Num(id as f64)),
            ("action", Json::Str(action.into())),
        ])
        .to_string();
        self.request_json("POST", "/replica", &body).map(|_| ())
    }

    /// `POST /replica` with `action: "force_fail"` — chaos hook: make
    /// the next `count` primary predictions fail server-side (`count`
    /// replaces the counter, so 0 disarms leftovers).
    pub fn force_fail(&self, count: u64) -> Result<(), ServeError> {
        let body = Json::obj([
            ("replica", Json::Num(0.0)),
            ("action", Json::Str("force_fail".into())),
            ("count", Json::Num(count as f64)),
        ])
        .to_string();
        self.request_json("POST", "/replica", &body).map(|_| ())
    }

    /// `POST /supervisor` — report a continuous-learning lifecycle
    /// transition (`promotion`, `rollback`, `quarantine`,
    /// `probation_start`, `probation_end`) for the `/stats` counters.
    pub fn notify_supervisor(&self, event: &str) -> Result<(), ServeError> {
        let body = Json::obj([("event", Json::Str(event.into()))]).to_string();
        self.request_json("POST", "/supervisor", &body).map(|_| ())
    }

    /// `POST /shutdown` — request a graceful drain-and-exit.
    pub fn shutdown(&self) -> Result<(), ServeError> {
        self.request_json("POST", "/shutdown", "{}").map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let client = ServeClient::new(
            "127.0.0.1:1",
            ClientConfig {
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(500),
                ..ClientConfig::default()
            },
        );
        let b0 = client.backoff(0);
        let b3 = client.backoff(3);
        assert!(b0 >= Duration::from_millis(10) && b0 < Duration::from_millis(20));
        assert!(b3 >= Duration::from_millis(80) && b3 < Duration::from_millis(90));
        // Deep attempts saturate at the cap instead of overflowing.
        assert_eq!(client.backoff(40), Duration::from_millis(500));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mk = |seed| {
            ServeClient::new(
                "127.0.0.1:1",
                ClientConfig {
                    jitter_seed: seed,
                    ..ClientConfig::default()
                },
            )
        };
        let (a, b, c) = (mk(7), mk(7), mk(8));
        let seq_a: Vec<Duration> = (0..4).map(|i| a.backoff(i)).collect();
        let seq_b: Vec<Duration> = (0..4).map(|i| b.backoff(i)).collect();
        let seq_c: Vec<Duration> = (0..4).map(|i| c.backoff(i)).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn connect_failure_to_unused_port_exhausts_retries() {
        // Port 1 on loopback is essentially never listening; connects
        // fail fast with ECONNREFUSED, which is retriable.
        let client = ServeClient::new(
            "127.0.0.1:1",
            ClientConfig {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                ..ClientConfig::default()
            },
        );
        match client.healthz() {
            Err(ServeError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }
}
