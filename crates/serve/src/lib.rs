//! Fault-tolerant prediction serving for workload models.
//!
//! The paper's product is a trained model that tuners query
//! interactively; this crate turns that model into a long-running
//! service that stays useful under overload and partial failure,
//! following the workload-characterization theme all the way down: the
//! server itself is a workload whose behaviour under offered load is
//! measured and bounded.
//!
//! Everything is built on the standard library only — a hand-rolled
//! HTTP/1.1 framing layer ([`http`]) and JSON codec ([`Json`]) keep the
//! workspace dependency-free.
//!
//! Robustness mechanisms, each independently testable:
//!
//! - [`Server`] — accept loop dispatching over a fleet of replicas;
//!   when no replica can take a job it is shed with a retriable `503`.
//! - [`Replica`] — one serving unit: its own model slot, breaker,
//!   bounded queue ([`wlc_exec::BoundedQueue`]) and worker threads, so
//!   failure domains are exactly the replicas.
//! - [`Router`] — least-loaded dispatch (round-robin on ties) and
//!   rolling hot reload: drain and swap one replica at a time, so at
//!   most one replica is ever out of rotation during an update.
//! - [`CircuitBreaker`] — consecutive primary-model failures open that
//!   replica's circuit; its requests degrade to the linear baseline
//!   (tagged `degraded`) until a half-open probe succeeds. The
//!   accounting rule is pinned by [`counts_against_breaker`].
//! - [`ModelSlot`] — validated, atomic last-good hot reload; corrupt or
//!   mismatched files never disturb the serving model.
//! - [`ServeClient`] — retry with exponential backoff and seeded
//!   jitter, honouring the server's retriable/non-retriable marking.
//!
//! # Example
//!
//! ```no_run
//! use wlc_model::fallback::FallbackModel;
//! use wlc_model::WorkloadModel;
//! use wlc_serve::{ClientConfig, ServeClient, ServeConfig, Server};
//!
//! let model = WorkloadModel::load("model.txt")?;
//! let bundle = FallbackModel::new(Some(model), None, vec![], vec![])?;
//! let server = Server::bind("127.0.0.1:0", bundle, ServeConfig::default())?;
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run());
//!
//! let client = ServeClient::new(addr.to_string(), ClientConfig::default());
//! let prediction = client.predict(&[200.0, 8.0, 8.0, 8.0])?;
//! println!("predicted: {:?}", prediction.outputs);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod client;
mod error;
pub mod http;
mod json;
mod replica;
mod router;
mod server;
mod state;

pub use breaker::{BreakerState, CircuitBreaker};
pub use client::{BatchPrediction, ClientConfig, Prediction, ReloadOutcome, ServeClient};
pub use error::ServeError;
pub use json::Json;
pub use replica::{Replica, ReplicaHealth};
pub use router::{ReloadError, ReloadReport, RouteError, Router};
pub use server::{counts_against_breaker, FailurePhase, ServeConfig, ServeStats, Server};
pub use state::ModelSlot;
