//! The hot-swappable serving model: an atomic *last-good* slot.
//!
//! [`ModelSlot`] owns the [`FallbackModel`] bundle behind a
//! [`TrackedRwLock`]`<Arc<...>>`: request handlers take the shared read
//! side and clone the `Arc` once per request (a cheap pointer copy), so
//! concurrent snapshots never serialize against each other, and keep
//! predicting from that snapshot even if a reload lands mid-request.
//! Reloads take the write side and are validated **before** the swap —
//! parse, finiteness, scaler sanity and dimension agreement with the
//! serving bundle — so a corrupt or mismatched file is rejected without
//! ever disturbing the model that is currently serving. In debug builds
//! the tracked lock participates in the workspace lock-order checker.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wlc_exec::TrackedRwLock;

use wlc_fault::Fs;
use wlc_model::fallback::FallbackModel;
use wlc_model::{ModelError, WorkloadModel};

use crate::error::ServeError;

/// Reads and parses a candidate model through `fs` (failpoint site
/// `serve.model.load`).
///
/// Error mapping: a missing file or corrupt content is the caller's
/// mistake ([`ServeError::Model`], non-retriable, same shape as
/// `WorkloadModel::load`); any other read failure is a transient
/// [`ServeError::Durable`] whose retriability comes from
/// `wlc_fault::SITE_POLICY` — the fleet keeps serving last-good, so
/// retrying the reload later is safe.
pub(crate) fn load_candidate(fs: &dyn Fs, path: &Path) -> Result<WorkloadModel, ServeError> {
    const SITE: &str = "serve.model.load";
    let wrap = |source: ModelError| {
        ServeError::Model(ModelError::LoadFailed {
            path: path.to_path_buf(),
            source: Box::new(source),
        })
    };
    let text = fs.read_to_string(SITE, path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            wrap(e.into())
        } else {
            ServeError::Durable {
                site: SITE,
                path: path.display().to_string(),
                reason: e.to_string(),
                retriable: wlc_fault::site_retriable(SITE),
            }
        }
    })?;
    WorkloadModel::from_text(&text).map_err(wrap)
}

/// Atomic last-good model slot (see module docs).
#[derive(Debug)]
pub struct ModelSlot {
    current: TrackedRwLock<Arc<FallbackModel>>,
    generation: AtomicU64,
}

impl ModelSlot {
    /// Wraps an initial bundle as generation 0.
    pub fn new(bundle: FallbackModel) -> Self {
        ModelSlot {
            current: TrackedRwLock::new("ModelSlot.current", Arc::new(bundle)),
            generation: AtomicU64::new(0),
        }
    }

    /// A consistent snapshot of the serving bundle. Handlers call this
    /// once per request so a concurrent reload cannot change the model
    /// underneath a half-computed prediction.
    pub fn snapshot(&self) -> Arc<FallbackModel> {
        Arc::clone(&self.current.read())
    }

    /// Monotone reload counter: bumped once per successful swap.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Validates and installs a new primary model; returns the new
    /// generation. On any error the serving bundle is left untouched.
    pub fn install(&self, candidate: WorkloadModel) -> Result<u64, ServeError> {
        // Hold the write lock across validate+swap so two concurrent
        // reloads cannot interleave their dimension checks and swaps.
        let mut current = self.current.write();
        let expected = match current.inputs() {
            0 => None,
            inputs => Some((inputs, current.outputs())),
        };
        candidate.validate(expected)?;
        let next = current.with_primary(candidate)?;
        *current = Arc::new(next);
        Ok(self.generation.fetch_add(1, Ordering::SeqCst) + 1)
    }

    /// Loads a model file, validates it and installs it ([`Self::install`]).
    ///
    /// Rejection reasons — unreadable file, parse error, non-finite
    /// parameters, degenerate scalers, input/output widths that disagree
    /// with the serving bundle — all leave the previous model serving.
    pub fn reload_from(&self, path: &Path) -> Result<u64, ServeError> {
        self.reload_with(&wlc_fault::RealFs, path)
    }

    /// [`Self::reload_from`] reading through an explicit filesystem
    /// (failpoint site `serve.model.load`).
    pub fn reload_with(&self, fs: &dyn Fs, path: &Path) -> Result<u64, ServeError> {
        let candidate = load_candidate(fs, path)?;
        self.install(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlc_data::{Dataset, Sample};
    use wlc_model::baseline::{LinearFeatures, LinearModel};
    use wlc_model::{PerformanceModel, WorkloadModelBuilder};

    fn dataset(inputs: usize) -> Dataset {
        let in_names: Vec<String> = (0..inputs).map(|i| format!("x{i}")).collect();
        let mut ds = Dataset::new(in_names, vec!["y".into()]).unwrap();
        for i in 0..12 {
            let x: Vec<f64> = (0..inputs).map(|j| (i + j) as f64).collect();
            let y = x.iter().sum::<f64>() * 0.5 + 1.0;
            ds.push(Sample::new(x, vec![y])).unwrap();
        }
        ds
    }

    fn model(inputs: usize, seed: u64) -> WorkloadModel {
        WorkloadModelBuilder::new()
            .no_hidden_layers()
            .hidden_layer(4)
            .max_epochs(150)
            .seed(seed)
            .train(&dataset(inputs))
            .unwrap()
            .model
    }

    fn slot(inputs: usize) -> ModelSlot {
        let baseline = LinearModel::fit(&dataset(inputs), LinearFeatures::FirstOrder).unwrap();
        let bundle =
            FallbackModel::new(Some(model(inputs, 1)), Some(baseline), vec![], vec![]).unwrap();
        ModelSlot::new(bundle)
    }

    #[test]
    fn install_bumps_generation_and_swaps() {
        let slot = slot(2);
        assert_eq!(slot.generation(), 0);
        let before = slot.snapshot();
        let replacement = model(2, 7);
        let expected = replacement.predict(&[3.0, 4.0]).unwrap();
        assert_eq!(slot.install(replacement).unwrap(), 1);
        let after = slot.snapshot();
        let (got, _) = after.predict_with(&[3.0, 4.0], true).unwrap();
        assert_eq!(got, expected);
        // Old snapshot still predicts: in-flight requests are unaffected.
        assert!(before.predict_with(&[3.0, 4.0], true).is_ok());
    }

    #[test]
    fn dimension_mismatch_is_rejected_without_disturbing_serving() {
        let slot = slot(2);
        let baseline_pred = {
            let (y, _) = slot.snapshot().predict_with(&[3.0, 4.0], true).unwrap();
            y
        };
        let err = slot.install(model(3, 2)).unwrap_err();
        assert!(matches!(err, ServeError::Model(_)), "{err}");
        assert_eq!(slot.generation(), 0);
        let (still, _) = slot.snapshot().predict_with(&[3.0, 4.0], true).unwrap();
        assert_eq!(still, baseline_pred, "serving model must be untouched");
    }

    #[test]
    fn corrupt_and_truncated_files_are_rejected() {
        let dir = std::env::temp_dir().join(format!(
            "wlc-serve-slot-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let slot = slot(2);
        let good = model(2, 3);
        let path = dir.join("model.txt");
        good.save(&path).unwrap();

        // Baseline: a good file installs.
        assert_eq!(slot.reload_from(&path).unwrap(), 1);

        let text = std::fs::read_to_string(&path).unwrap();
        // Swap the xscaler line for one that parses but holds a
        // non-finite mean: caught by validation, not by the parser.
        let nonfinite: String = text
            .lines()
            .map(|line| {
                if line.starts_with("xscaler ") {
                    "xscaler standard inf 0.0 | 1.0 1.0".to_string()
                } else {
                    line.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let cases: Vec<(&str, String)> = vec![
            ("missing", String::new()),
            (
                "truncated",
                text.lines().take(3).collect::<Vec<_>>().join("\n"),
            ),
            (
                "corrupt-header",
                text.replacen("wlc-model", "not-a-model", 1),
            ),
            ("nonfinite-scaler", nonfinite),
        ];
        for (name, content) in cases {
            let bad = dir.join(format!("{name}.txt"));
            if name != "missing" {
                std::fs::write(&bad, content).unwrap();
            }
            let err = slot.reload_from(&bad).unwrap_err();
            assert!(matches!(err, ServeError::Model(_)), "{name}: {err}");
            assert_eq!(slot.generation(), 1, "{name} must not swap");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
