//! One serving replica: a self-contained unit of serving capacity.
//!
//! A [`Replica`] owns everything a single PR-3-style server owned — a
//! hot-swappable [`ModelSlot`], a [`CircuitBreaker`] guarding its
//! primary model, a bounded request queue and per-replica counters —
//! so the fleet's failure domains are exactly the replicas: one
//! replica's open breaker, full queue, drain, or death never affects
//! the others. The [`crate::Router`] dispatches over a set of replicas
//! and performs rolling reloads one replica at a time.
//!
//! The job type `T` is generic (the server uses accepted connections)
//! so the replica/router substrate stays independent of the HTTP
//! layer and is testable with plain values.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use wlc_exec::BoundedQueue;

use wlc_model::fallback::FallbackModel;

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::state::ModelSlot;

/// Point-in-time view of one replica, as reported by `/readyz` and
/// `/stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaHealth {
    /// Replica index within the fleet.
    pub id: usize,
    /// `false` once the replica has been killed (admin/test hook).
    pub alive: bool,
    /// `true` while a rolling reload is draining this replica.
    pub draining: bool,
    /// Routable and able to answer: alive, not draining, a model is
    /// loaded, and the queue is below the readiness watermark.
    pub ready: bool,
    /// Jobs queued but not yet picked up by a worker.
    pub queue_depth: usize,
    /// Jobs dispatched to this replica and not yet answered (queued
    /// plus in service).
    pub in_flight: u64,
    /// Model-slot generation (bumped per successful swap).
    pub generation: u64,
    /// Circuit-breaker state of this replica's primary model.
    pub breaker: BreakerState,
    /// Requests answered by this replica (any status).
    pub handled: u64,
    /// Predictions served by the linear baseline (degraded mode).
    pub degraded: u64,
    /// Requests answered 504 by this replica.
    pub deadline_missed: u64,
}

/// A single serving replica (see module docs).
pub struct Replica<T> {
    id: usize,
    slot: ModelSlot,
    breaker: CircuitBreaker,
    queue: Arc<BoundedQueue<T>>,
    /// Dispatched-but-unanswered jobs: incremented by the router before
    /// the queue push, decremented by the worker after the response is
    /// written. This is the replica's load *and* the rolling-reload
    /// drain condition (zero means no request can still observe the
    /// old model slot mid-swap).
    in_flight: AtomicU64,
    draining: AtomicBool,
    alive: AtomicBool,
    handled: AtomicU64,
    degraded: AtomicU64,
    deadline_missed: AtomicU64,
}

impl<T> Replica<T> {
    /// Creates replica `id` with its own copy of the serving bundle,
    /// its own breaker and a bounded queue of `queue_capacity`.
    pub fn new(
        id: usize,
        bundle: FallbackModel,
        breaker_threshold: u32,
        breaker_cooldown: std::time::Duration,
        queue_capacity: usize,
    ) -> Self {
        Replica {
            id,
            slot: ModelSlot::new(bundle),
            breaker: CircuitBreaker::new(breaker_threshold, breaker_cooldown),
            queue: Arc::new(BoundedQueue::new(queue_capacity)),
            in_flight: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            alive: AtomicBool::new(true),
            handled: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
        }
    }

    /// Replica index within the fleet.
    pub fn id(&self) -> usize {
        self.id
    }

    /// This replica's model slot.
    pub fn slot(&self) -> &ModelSlot {
        &self.slot
    }

    /// This replica's circuit breaker.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// A handle to this replica's request queue (workers drain it).
    pub fn queue(&self) -> Arc<BoundedQueue<T>> {
        Arc::clone(&self.queue)
    }

    /// Closes the request queue (graceful shutdown: workers finish
    /// what is queued, then exit).
    pub fn close(&self) {
        self.queue.close();
    }

    /// Dispatched-but-unanswered jobs — the router's load metric.
    pub fn load(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Whether the router may send new work here.
    pub fn routable(&self) -> bool {
        self.alive.load(Ordering::SeqCst) && !self.draining.load(Ordering::SeqCst)
    }

    /// Whether the replica is alive (not killed).
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Whether a rolling reload is currently draining this replica.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Marks the replica dead: the router stops sending work, but jobs
    /// already queued still drain (accepted work is never dropped).
    pub fn kill(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }

    /// Brings a killed replica back into rotation.
    pub fn revive(&self) {
        self.alive.store(true, Ordering::SeqCst);
    }

    /// Router-side: accounts a job about to be pushed to the queue.
    pub fn begin_dispatch(&self) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    /// Router-side: undoes [`Replica::begin_dispatch`] after a failed
    /// queue push (the job was handed back, not dispatched).
    pub fn abort_dispatch(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Worker-side: accounts a job fully answered.
    pub fn finish_request(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Drain gate used by the rolling reload: marks/unmarks the
    /// replica as draining (not routable, still serving what it has).
    pub fn set_draining(&self, draining: bool) {
        self.draining.store(draining, Ordering::SeqCst);
    }

    /// Counts one answered request.
    pub fn count_handled(&self) {
        self.handled.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one baseline-served (degraded) prediction.
    pub fn count_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one 504 deadline miss.
    pub fn count_deadline_missed(&self) {
        self.deadline_missed.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime counters `(handled, degraded, deadline_missed)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.handled.load(Ordering::Relaxed),
            self.degraded.load(Ordering::Relaxed),
            self.deadline_missed.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of this replica's health against the readiness
    /// `watermark` (queued depth at or above it reports not-ready).
    pub fn health(&self, watermark: usize, now: Instant) -> ReplicaHealth {
        let snapshot = self.slot.snapshot();
        let model_loaded = snapshot.has_primary() || snapshot.has_baseline();
        let queue_depth = self.queue.len();
        let alive = self.is_alive();
        let draining = self.is_draining();
        let (handled, degraded, deadline_missed) = self.counters();
        ReplicaHealth {
            id: self.id,
            alive,
            draining,
            ready: alive && !draining && model_loaded && queue_depth < watermark,
            queue_depth,
            in_flight: self.load(),
            generation: self.slot.generation(),
            breaker: self.breaker.state(now),
            handled,
            degraded,
            deadline_missed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use wlc_data::{Dataset, Sample};
    use wlc_model::baseline::{LinearFeatures, LinearModel};

    fn bundle() -> FallbackModel {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], vec!["y".into()]).unwrap();
        for i in 0..8 {
            let (a, b) = (i as f64, (i * 2) as f64);
            ds.push(Sample::new(vec![a, b], vec![a + b])).unwrap();
        }
        let baseline = LinearModel::fit(&ds, LinearFeatures::FirstOrder).unwrap();
        FallbackModel::new(None, Some(baseline), vec![], vec![]).unwrap()
    }

    #[test]
    fn load_tracks_dispatch_and_finish() {
        let r: Replica<u32> = Replica::new(0, bundle(), 3, Duration::from_millis(10), 4);
        assert_eq!(r.load(), 0);
        r.begin_dispatch();
        r.begin_dispatch();
        assert_eq!(r.load(), 2);
        r.abort_dispatch();
        assert_eq!(r.load(), 1);
        r.finish_request();
        assert_eq!(r.load(), 0);
    }

    #[test]
    fn kill_drain_and_health_flags() {
        let r: Replica<u32> = Replica::new(3, bundle(), 3, Duration::from_millis(10), 4);
        let now = Instant::now();
        let h = r.health(2, now);
        assert!(h.ready && h.alive && !h.draining);
        assert_eq!(h.id, 3);
        assert_eq!(h.breaker, BreakerState::Closed);

        r.set_draining(true);
        assert!(!r.routable(), "draining replicas receive no new work");
        assert!(!r.health(2, now).ready);
        r.set_draining(false);

        r.kill();
        assert!(!r.routable() && !r.is_alive());
        assert!(!r.health(2, now).ready);
        r.revive();
        assert!(r.routable());
        assert!(r.health(2, now).ready);
    }

    #[test]
    fn queue_above_watermark_is_not_ready() {
        let r: Replica<u32> = Replica::new(0, bundle(), 3, Duration::from_millis(10), 4);
        r.queue().push(1).unwrap();
        r.queue().push(2).unwrap();
        assert!(!r.health(2, Instant::now()).ready);
        assert_eq!(r.health(2, Instant::now()).queue_depth, 2);
        assert!(r.health(3, Instant::now()).ready);
    }
}
