//! The replica router: least-loaded dispatch and rolling hot reload.
//!
//! [`Router`] owns the fleet of [`Replica`]s. Dispatch picks the
//! routable replica with the lowest in-flight load and falls back to
//! the next-loaded one when its queue is full; ties rotate
//! round-robin so an idle fleet spreads evenly instead of piling onto
//! replica 0. Only when *every* routable queue is full (or no replica
//! is routable at all) is the job handed back for the acceptor to
//! shed.
//!
//! [`Router::rolling_reload`] is the fleet-wide model update: the
//! candidate file is loaded and parsed once, then installed replica by
//! replica — mark draining (router routes around it), wait for its
//! in-flight count to reach zero, validate + swap its [`ModelSlot`],
//! un-drain — so at most one replica is ever out of rotation and no
//! accepted request is dropped. A `reload` mutex serializes concurrent
//! reloads; it is held across each per-replica drain + swap, which is
//! the router→replica lock edge (`Router.reload` →
//! `ModelSlot.current`) tracked by the wlc-lint lock-order graph.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wlc_exec::{PushError, TrackedMutex};
use wlc_fault::Fs;

use crate::error::ServeError;
use crate::replica::{Replica, ReplicaHealth};

/// Why the router could not place a job; the job is handed back so the
/// acceptor can shed it explicitly.
#[derive(Debug)]
pub enum RouteError<T> {
    /// Every routable replica's queue is at capacity (retriable).
    Saturated(T),
    /// No replica is routable at all — all killed or draining
    /// (retriable: a reload finishes, or an operator revives one).
    Unavailable(T),
}

impl<T> RouteError<T> {
    /// Recovers the job that was not dispatched.
    pub fn into_inner(self) -> T {
        match self {
            RouteError::Saturated(job) | RouteError::Unavailable(job) => job,
        }
    }

    /// Human-readable shed reason.
    pub fn reason(&self) -> &'static str {
        match self {
            RouteError::Saturated(_) => "server overloaded: every replica queue is full",
            RouteError::Unavailable(_) => "no serving replica available",
        }
    }
}

/// Why a rolling reload did not complete.
#[derive(Debug)]
pub enum ReloadError {
    /// The candidate was rejected — serving is undisturbed. A missing
    /// or corrupt file is the caller's mistake (non-retriable); a
    /// transient storage failure ([`ServeError::Durable`]) is
    /// retriable. Check `is_retriable()` on the inner error.
    Rejected(ServeError),
    /// A replica's in-flight work did not drain within the timeout —
    /// retriable; replicas already swapped keep the new model.
    DrainTimeout {
        /// Replica that failed to drain.
        replica: usize,
    },
    /// Another rolling reload is already in progress — retriable; this
    /// attempt changed nothing and the in-progress reload proceeds
    /// undisturbed.
    Busy,
}

/// Result of a completed rolling reload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadReport {
    /// Final per-replica generations, in replica order.
    pub generations: Vec<u64>,
    /// Generation vector snapshotted after each single-replica swap:
    /// step `i` shows exactly `i + 1` replicas advanced, proving the
    /// one-at-a-time barrier.
    pub steps: Vec<Vec<u64>>,
}

impl ReloadReport {
    /// The fleet's committed generation: the minimum across replicas
    /// (every replica has served at least this many swaps).
    pub fn fleet_generation(&self) -> u64 {
        self.generations.iter().copied().min().unwrap_or(0)
    }
}

/// Least-loaded dispatcher over a fleet of replicas (see module docs).
pub struct Router<T> {
    replicas: Vec<Arc<Replica<T>>>,
    /// Round-robin cursor for load ties.
    rr: AtomicUsize,
    /// Serializes rolling reloads: held across each per-replica
    /// drain + swap so generations advance one replica at a time.
    reload: TrackedMutex<()>,
    /// Fail-fast flag for concurrent reload attempts: the loser gets a
    /// retriable [`ReloadError::Busy`] immediately instead of blocking
    /// (and timing out its own drain barrier) behind the winner.
    reloading: AtomicBool,
}

impl<T> Router<T> {
    /// Wraps a fleet of replicas (at least one).
    pub fn new(replicas: Vec<Arc<Replica<T>>>) -> Self {
        Router {
            replicas,
            rr: AtomicUsize::new(0),
            reload: TrackedMutex::new("Router.reload", ()),
            reloading: AtomicBool::new(false),
        }
    }

    /// The fleet, in replica order.
    pub fn replicas(&self) -> &[Arc<Replica<T>>] {
        &self.replicas
    }

    /// Replica `id`, if it exists.
    pub fn replica(&self, id: usize) -> Option<&Arc<Replica<T>>> {
        self.replicas.get(id)
    }

    /// Number of replicas in the fleet.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the fleet is empty (never true for a bound server).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Dispatches a job to the least-loaded routable replica,
    /// breaking load ties round-robin and falling over to the
    /// next-loaded replica when a queue is full. Returns the chosen
    /// replica id.
    pub fn dispatch(&self, job: T) -> Result<usize, RouteError<T>> {
        // Rotate the candidate scan so equal loads round-robin; the
        // stable sort by load preserves the rotated order within ties.
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        let n = self.replicas.len().max(1);
        let mut candidates: Vec<&Arc<Replica<T>>> = (0..self.replicas.len())
            .filter_map(|k| self.replicas.get((start + k) % n))
            .filter(|r| r.routable())
            .collect();
        if candidates.is_empty() {
            return Err(RouteError::Unavailable(job));
        }
        candidates.sort_by_key(|r| r.load());
        let mut job = job;
        for replica in candidates {
            replica.begin_dispatch();
            match replica.queue().push(job) {
                Ok(_) => return Ok(replica.id()),
                Err(rejected) => {
                    replica.abort_dispatch();
                    job = match rejected {
                        PushError::Full(job) | PushError::Closed(job) => job,
                    };
                }
            }
        }
        Err(RouteError::Saturated(job))
    }

    /// Per-replica generations, in replica order.
    pub fn generations(&self) -> Vec<u64> {
        self.replicas
            .iter()
            .map(|r| r.slot().generation())
            .collect()
    }

    /// Per-replica health snapshots against the readiness `watermark`.
    pub fn health(&self, watermark: usize, now: Instant) -> Vec<ReplicaHealth> {
        self.replicas
            .iter()
            .map(|r| r.health(watermark, now))
            .collect()
    }

    /// Marks replica `id` dead (no new traffic; queued work drains).
    /// Returns `false` for an unknown id.
    pub fn kill(&self, id: usize) -> bool {
        match self.replicas.get(id) {
            Some(replica) => {
                replica.kill();
                true
            }
            None => false,
        }
    }

    /// Brings a killed replica back into rotation. Returns `false`
    /// for an unknown id.
    pub fn revive(&self, id: usize) -> bool {
        match self.replicas.get(id) {
            Some(replica) => {
                replica.revive();
                true
            }
            None => false,
        }
    }

    /// Rolling hot reload (see module docs): loads the candidate once,
    /// then drains and swaps one replica at a time.
    ///
    /// `requester` is the replica currently handling the `/reload`
    /// request itself — its drain waits for in-flight to fall to one
    /// (the reload request) instead of zero, so a reload routed
    /// through the fleet cannot deadlock on itself.
    ///
    /// Dead replicas are not drained (they receive no traffic) but are
    /// still swapped, so a later revive serves the current model.
    ///
    /// Concurrent reload attempts serialize: exactly one proceeds and
    /// every other caller gets a clean, retriable [`ReloadError::Busy`]
    /// without blocking, so the generation vector is never advanced by
    /// two interleaved rolls.
    pub fn rolling_reload(
        &self,
        fs: &dyn Fs,
        path: &Path,
        requester: Option<usize>,
        drain_timeout: Duration,
    ) -> Result<ReloadReport, ReloadError> {
        if self
            .reloading
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err(ReloadError::Busy);
        }
        let _in_progress = ClearOnDrop(&self.reloading);
        let _serialized = self.reload.lock();
        let candidate = crate::state::load_candidate(fs, path).map_err(ReloadError::Rejected)?;
        let mut steps = Vec::with_capacity(self.replicas.len());
        for replica in &self.replicas {
            if replica.is_alive() {
                replica.set_draining(true);
                let allowed = u64::from(requester == Some(replica.id()));
                if !wait_for_drain(replica, allowed, drain_timeout) {
                    replica.set_draining(false);
                    return Err(ReloadError::DrainTimeout {
                        replica: replica.id(),
                    });
                }
            }
            let installed = replica.slot().install(candidate.clone());
            replica.set_draining(false);
            if let Err(err) = installed {
                return Err(ReloadError::Rejected(err));
            }
            steps.push(self.generations());
        }
        Ok(ReloadReport {
            generations: self.generations(),
            steps,
        })
    }
}

/// Clears the reload-in-progress flag on every exit path (success,
/// rejection, drain timeout, panic) of [`Router::rolling_reload`].
struct ClearOnDrop<'a>(&'a AtomicBool);

impl Drop for ClearOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

/// Polls until the replica's in-flight count falls to `allowed`, or
/// `timeout` elapses. The replica is already un-routable (draining),
/// so the count can only fall.
fn wait_for_drain<T>(replica: &Replica<T>, allowed: u64, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if replica.load() <= allowed {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlc_data::{Dataset, Sample};
    use wlc_model::baseline::{LinearFeatures, LinearModel};
    use wlc_model::fallback::FallbackModel;
    use wlc_model::WorkloadModelBuilder;

    fn dataset() -> Dataset {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], vec!["y".into()]).unwrap();
        for i in 0..10 {
            let (a, b) = (i as f64, (i * 2) as f64);
            ds.push(Sample::new(vec![a, b], vec![a + b])).unwrap();
        }
        ds
    }

    fn bundle() -> FallbackModel {
        let baseline = LinearModel::fit(&dataset(), LinearFeatures::FirstOrder).unwrap();
        FallbackModel::new(None, Some(baseline), vec![], vec![]).unwrap()
    }

    fn fleet(n: usize, queue: usize) -> Router<u32> {
        Router::new(
            (0..n)
                .map(|i| {
                    Arc::new(Replica::new(
                        i,
                        bundle(),
                        3,
                        Duration::from_millis(50),
                        queue,
                    ))
                })
                .collect(),
        )
    }

    #[test]
    fn ties_round_robin_across_idle_replicas() {
        let router = fleet(3, 8);
        let mut seen = vec![0usize; 3];
        for job in 0..9 {
            let id = router.dispatch(job).unwrap();
            // Drain immediately so every dispatch sees an idle fleet.
            let replica = router.replica(id).unwrap();
            assert_eq!(replica.queue().pop(), Some(job));
            replica.finish_request();
            seen[id] += 1;
        }
        assert_eq!(seen, vec![3, 3, 3], "idle ties must rotate evenly");
    }

    #[test]
    fn least_loaded_wins_over_rotation() {
        let router = fleet(3, 8);
        // Load replicas 0 and 1 without draining them.
        for _ in 0..3 {
            router.replica(0).unwrap().begin_dispatch();
        }
        for _ in 0..2 {
            router.replica(1).unwrap().begin_dispatch();
        }
        for job in 0..3 {
            assert_eq!(
                router.dispatch(job).unwrap(),
                2,
                "replica 2 is idle and must win until it catches up"
            );
            router.replica(2).unwrap().queue().pop();
        }
    }

    #[test]
    fn full_queues_fall_over_then_saturate() {
        let router = fleet(2, 1);
        // Fill both single-slot queues (workers never drain them).
        assert!(router.dispatch(1).is_ok());
        assert!(router.dispatch(2).is_ok());
        match router.dispatch(3) {
            Err(RouteError::Saturated(job)) => assert_eq!(job, 3),
            other => panic!("expected saturation, got {other:?}"),
        }
        // In-flight accounting must have been rolled back for the
        // rejected job: queued work still counts, the shed one does not.
        assert_eq!(router.replica(0).unwrap().load(), 1);
        assert_eq!(router.replica(1).unwrap().load(), 1);
    }

    #[test]
    fn killed_and_draining_replicas_are_routed_around() {
        let router = fleet(3, 4);
        router.kill(0);
        router.replica(1).unwrap().set_draining(true);
        for job in 0..4 {
            assert_eq!(router.dispatch(job).unwrap(), 2);
            router.replica(2).unwrap().queue().pop();
            router.replica(2).unwrap().finish_request();
        }
        router.replica(1).unwrap().set_draining(false);
        router.kill(1);
        router.kill(2);
        match router.dispatch(9) {
            Err(RouteError::Unavailable(job)) => assert_eq!(job, 9),
            other => panic!("expected unavailable, got {other:?}"),
        }
        assert!(!router.kill(7), "unknown replica id must be rejected");
        assert!(router.revive(2));
        assert!(router.dispatch(10).is_ok());
    }

    #[test]
    fn rolling_reload_advances_one_replica_at_a_time() {
        let router = fleet(3, 4);
        let trained = WorkloadModelBuilder::new()
            .no_hidden_layers()
            .hidden_layer(4)
            .max_epochs(120)
            .seed(5)
            .train(&dataset())
            .unwrap()
            .model;
        let dir = std::env::temp_dir().join(format!("wlc-router-roll-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        trained.save(&path).unwrap();

        let report = router
            .rolling_reload(&wlc_fault::RealFs, &path, None, Duration::from_secs(5))
            .unwrap();
        assert_eq!(report.generations, vec![1, 1, 1]);
        assert_eq!(report.fleet_generation(), 1);
        assert_eq!(
            report.steps,
            vec![vec![1, 0, 0], vec![1, 1, 0], vec![1, 1, 1]],
            "each step must advance exactly one replica"
        );

        // A dead replica is swapped without draining, so a revive
        // comes back already serving the current generation.
        router.kill(1);
        let report = router
            .rolling_reload(&wlc_fault::RealFs, &path, None, Duration::from_secs(5))
            .unwrap();
        assert_eq!(report.generations, vec![2, 2, 2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rolling_reload_times_out_on_a_stuck_replica() {
        let router = fleet(2, 4);
        // A request that never finishes pins replica 0's in-flight.
        router.replica(0).unwrap().begin_dispatch();
        let trained = WorkloadModelBuilder::new()
            .no_hidden_layers()
            .hidden_layer(4)
            .max_epochs(120)
            .seed(6)
            .train(&dataset())
            .unwrap()
            .model;
        let dir = std::env::temp_dir().join(format!("wlc-router-stuck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        trained.save(&path).unwrap();

        match router.rolling_reload(&wlc_fault::RealFs, &path, None, Duration::from_millis(30)) {
            Err(ReloadError::DrainTimeout { replica }) => assert_eq!(replica, 0),
            other => panic!("expected drain timeout, got {other:?}"),
        }
        // The stuck replica is back in rotation (not wedged draining),
        // and no generation advanced.
        assert!(router.replica(0).unwrap().routable());
        assert_eq!(router.generations(), vec![0, 0]);

        // With the stuck request counted as the requester, the same
        // drain succeeds: the reload request itself is allowed.
        let report = router
            .rolling_reload(
                &wlc_fault::RealFs,
                &path,
                Some(0),
                Duration::from_millis(200),
            )
            .unwrap();
        assert_eq!(report.generations, vec![1, 1]);
    }

    #[test]
    fn concurrent_reloads_serialize_with_one_winner_and_one_clean_busy() {
        let router = Arc::new(fleet(2, 4));
        let trained = WorkloadModelBuilder::new()
            .no_hidden_layers()
            .hidden_layer(4)
            .max_epochs(120)
            .seed(6)
            .train(&dataset())
            .unwrap()
            .model;
        let dir = std::env::temp_dir().join(format!("wlc-router-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        trained.save(&path).unwrap();

        // Pin replica 0's in-flight so the first reload parks inside
        // its drain barrier while holding the reload claim.
        router.replica(0).unwrap().begin_dispatch();
        let winner = {
            let router = Arc::clone(&router);
            let path = path.clone();
            std::thread::spawn(move || {
                router.rolling_reload(&wlc_fault::RealFs, &path, None, Duration::from_secs(5))
            })
        };
        // The winner marks replica 0 draining before waiting on it;
        // once that is visible the second attempt is provably
        // concurrent.
        while router.replica(0).unwrap().routable() {
            std::thread::sleep(Duration::from_millis(1));
        }

        // The loser fails fast with a clean retriable Busy — it neither
        // blocks behind the winner nor touches any generation.
        match router.rolling_reload(&wlc_fault::RealFs, &path, None, Duration::from_secs(5)) {
            Err(ReloadError::Busy) => {}
            other => panic!("expected Busy, got {other:?}"),
        }
        assert_eq!(router.generations(), vec![0, 0]);

        // Unpin: the winner completes a normal one-at-a-time roll with
        // an untorn generation vector.
        router.replica(0).unwrap().abort_dispatch();
        let report = winner.join().unwrap().unwrap();
        assert_eq!(report.generations, vec![1, 1]);
        assert_eq!(report.steps, vec![vec![1, 0], vec![1, 1]]);

        // The claim was released, so retrying the loser now wins.
        let retry = router
            .rolling_reload(&wlc_fault::RealFs, &path, None, Duration::from_secs(5))
            .unwrap();
        assert_eq!(retry.generations, vec![2, 2]);
    }

    #[test]
    fn rejected_candidate_leaves_every_generation_pinned() {
        let router = fleet(3, 4);
        let dir = std::env::temp_dir().join(format!("wlc-router-reject-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "not a model").unwrap();
        match router.rolling_reload(&wlc_fault::RealFs, &bad, None, Duration::from_secs(1)) {
            Err(ReloadError::Rejected(_)) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(router.generations(), vec![0, 0, 0]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
