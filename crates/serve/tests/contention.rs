//! Contention tests for the serve-side tracked locks: the circuit
//! breaker's half-open probe under a thread stampede, and hot model
//! reload racing in-flight predictions. In debug builds both run under
//! the wlc-exec lock-order checker, which must observe the traffic
//! without firing.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use wlc_data::{Dataset, Sample};
use wlc_exec::tracked_acquisitions;
use wlc_model::baseline::{LinearFeatures, LinearModel};
use wlc_model::fallback::FallbackModel;
use wlc_model::{WorkloadModel, WorkloadModelBuilder};
use wlc_serve::{BreakerState, CircuitBreaker, ModelSlot};

fn dataset(inputs: usize) -> Dataset {
    let in_names: Vec<String> = (0..inputs).map(|i| format!("x{i}")).collect();
    let mut ds = Dataset::new(in_names, vec!["y".into()]).expect("valid dataset shape");
    for i in 0..12 {
        let x: Vec<f64> = (0..inputs).map(|j| (i + j) as f64).collect();
        let y = x.iter().sum::<f64>() * 0.5 + 1.0;
        ds.push(Sample::new(x, vec![y])).expect("consistent sample");
    }
    ds
}

fn model(seed: u64) -> WorkloadModel {
    WorkloadModelBuilder::new()
        .no_hidden_layers()
        .hidden_layer(4)
        .max_epochs(120)
        .seed(seed)
        .train(&dataset(2))
        .expect("tiny training run converges")
        .model
}

/// Eight threads hit the breaker exactly at the cooldown boundary; the
/// half-open state must admit exactly one probe, and a successful probe
/// must close the circuit for everyone.
#[test]
fn breaker_half_open_probe_admits_exactly_one_of_eight() {
    let before = tracked_acquisitions();
    let cooldown = Duration::from_millis(10);
    let breaker = Arc::new(CircuitBreaker::new(1, cooldown));
    let t0 = Instant::now();
    assert!(breaker.record_failure(t0), "threshold 1 opens immediately");
    assert_eq!(breaker.state(t0), BreakerState::Open);

    let probe_at = t0 + cooldown;
    let barrier = Arc::new(Barrier::new(8));
    let admitted = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let breaker = Arc::clone(&breaker);
            let barrier = Arc::clone(&barrier);
            let admitted = Arc::clone(&admitted);
            thread::spawn(move || {
                barrier.wait();
                if breaker.allow_primary(probe_at) {
                    admitted.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panics under breaker contention");
    }
    assert_eq!(
        admitted.load(Ordering::SeqCst),
        1,
        "exactly one thread wins the half-open trial"
    );
    assert_eq!(breaker.state(probe_at), BreakerState::HalfOpen);

    // The winning probe succeeds: recovery is visible to every thread.
    breaker.record_success();
    assert_eq!(breaker.state(probe_at), BreakerState::Closed);
    assert!(breaker.allow_primary(probe_at));
    if cfg!(debug_assertions) {
        assert!(
            tracked_acquisitions() > before,
            "the tracked checker must observe the breaker traffic"
        );
    }
}

/// Hot reloads land while reader threads predict continuously: the
/// generation counter is monotone from every thread's perspective,
/// every snapshot keeps predicting finite outputs, and the final
/// generation equals the number of installs.
#[test]
fn model_reload_races_in_flight_predictions() {
    let before = tracked_acquisitions();
    let baseline = LinearModel::fit(&dataset(2), LinearFeatures::FirstOrder)
        .expect("baseline fits the tiny dataset");
    let bundle = FallbackModel::new(Some(model(1)), Some(baseline), vec![], vec![])
        .expect("bundle assembles");
    let slot = Arc::new(ModelSlot::new(bundle));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let slot = Arc::clone(&slot);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut last_generation = 0u64;
                let mut predictions = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let generation = slot.generation();
                    assert!(
                        generation >= last_generation,
                        "generation went backwards: {generation} < {last_generation}"
                    );
                    last_generation = generation;
                    let snapshot = slot.snapshot();
                    let (y, _served) = snapshot
                        .predict_with(&[3.0, 4.0], true)
                        .expect("snapshot predicts even mid-reload");
                    assert!(
                        y.iter().all(|v| v.is_finite()),
                        "prediction must stay finite across reloads: {y:?}"
                    );
                    predictions += 1;
                }
                predictions
            })
        })
        .collect();

    let mut last_installed = 0u64;
    for seed in 0..6 {
        last_installed = slot
            .install(model(100 + seed))
            .expect("validated reload installs");
    }
    stop.store(true, Ordering::Relaxed);

    let total: usize = readers
        .into_iter()
        .map(|r| r.join().expect("reader must not panic"))
        .sum();
    assert!(total > 0, "readers actually predicted");
    assert_eq!(last_installed, 6);
    assert_eq!(slot.generation(), 6);
    if cfg!(debug_assertions) {
        assert!(
            tracked_acquisitions() > before,
            "the tracked checker must observe the reload traffic"
        );
    }
}
