//! End-to-end tests for the prediction server: healthy serving,
//! overload shedding, deadlines, circuit-breaker degradation, hot
//! reload under concurrent load, and graceful shutdown draining.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use wlc_data::{Dataset, Sample};
use wlc_model::baseline::{LinearFeatures, LinearModel};
use wlc_model::fallback::FallbackModel;
use wlc_model::{PerformanceModel, WorkloadModel, WorkloadModelBuilder};
use wlc_serve::{ClientConfig, Json, ServeClient, ServeConfig, ServeError, ServeStats, Server};

fn dataset() -> Dataset {
    let mut ds = Dataset::new(vec!["a".into(), "b".into()], vec!["y".into()]).unwrap();
    for i in 0..6 {
        for j in 0..6 {
            let (a, b) = (i as f64 + 1.0, j as f64 + 1.0);
            ds.push(Sample::new(vec![a, b], vec![a * 2.0 + b + a * b * 0.1]))
                .unwrap();
        }
    }
    ds
}

fn mlp(seed: u64) -> WorkloadModel {
    WorkloadModelBuilder::new()
        .no_hidden_layers()
        .hidden_layer(6)
        .max_epochs(200)
        .seed(seed)
        .train(&dataset())
        .unwrap()
        .model
}

fn baseline() -> LinearModel {
    LinearModel::fit(&dataset(), LinearFeatures::FirstOrder).unwrap()
}

fn full_bundle(seed: u64) -> FallbackModel {
    FallbackModel::new(Some(mlp(seed)), Some(baseline()), vec![], vec![]).unwrap()
}

/// Starts a server on an ephemeral port; returns its address and the
/// thread that resolves to the lifetime stats when the server drains.
fn start(bundle: FallbackModel, config: ServeConfig) -> (String, thread::JoinHandle<ServeStats>) {
    let server = Server::bind("127.0.0.1:0", bundle, config).unwrap();
    let addr = server.local_addr().to_string();
    let handle = thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

fn quick_client(addr: &str) -> ServeClient {
    ServeClient::new(
        addr,
        ClientConfig {
            max_attempts: 1,
            base_backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        },
    )
}

fn patient_client(addr: &str) -> ServeClient {
    ServeClient::new(
        addr,
        ClientConfig {
            max_attempts: 10,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            ..ClientConfig::default()
        },
    )
}

#[test]
fn healthy_serving_end_to_end() {
    let model = mlp(1);
    let expected = model.predict(&[2.0, 3.0]).unwrap();
    let bundle = FallbackModel::new(Some(model), Some(baseline()), vec![], vec![]).unwrap();
    let (addr, handle) = start(bundle, ServeConfig::default());
    let client = patient_client(&addr);

    assert_eq!(
        client
            .healthz()
            .unwrap()
            .get("status")
            .and_then(|s| s.as_str()),
        Some("ok")
    );
    assert_eq!(
        client
            .readyz()
            .unwrap()
            .get("ready")
            .and_then(|r| r.as_bool()),
        Some(true)
    );

    let prediction = client.predict(&[2.0, 3.0]).unwrap();
    assert_eq!(
        prediction.outputs, expected,
        "server must match local predict"
    );
    assert!(!prediction.degraded);
    assert_eq!(prediction.model, "mlp");
    assert_eq!(prediction.output_names, vec!["y".to_string()]);

    // Validation errors are non-retriable 400s.
    match client.predict(&[1.0]) {
        Err(ServeError::Rejected {
            status, retriable, ..
        }) => {
            assert_eq!(status, 400);
            assert!(!retriable);
        }
        other => panic!("width mismatch must reject, got {other:?}"),
    }
    // Non-finite features serialize as JSON null and are rejected, not
    // propagated into the network as NaN.
    match client.predict(&[f64::NAN, 1.0]) {
        Err(ServeError::Rejected { status, .. }) => assert_eq!(status, 400),
        other => panic!("non-finite input must reject, got {other:?}"),
    }
    match client.request("GET", "/nope", "") {
        Ok(resp) => assert_eq!(resp.status, 404),
        other => panic!("unexpected {other:?}"),
    }

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(stats.handled >= 6);
    assert_eq!(stats.shed, 0);
}

#[test]
fn predict_batch_matches_single_predictions_bitwise() {
    let model = mlp(9);
    let inputs: Vec<Vec<f64>> = vec![
        vec![1.0, 1.0],
        vec![2.0, 3.0],
        vec![5.5, 2.5],
        vec![4.0, 6.0],
        vec![3.0, 3.0],
    ];
    let expected: Vec<Vec<f64>> = inputs.iter().map(|x| model.predict(x).unwrap()).collect();
    let bundle = FallbackModel::new(Some(model), Some(baseline()), vec![], vec![]).unwrap();
    let (addr, handle) = start(bundle, ServeConfig::default());
    let client = patient_client(&addr);

    // Repeated batches through the same worker exercise the reused
    // per-worker scratch; every row must stay bitwise equal to the
    // single-row path.
    for _ in 0..3 {
        let batch = client.predict_batch(&inputs).unwrap();
        assert_eq!(
            batch.outputs, expected,
            "batched predictions must match per-row predict exactly"
        );
        assert!(!batch.degraded);
        assert_eq!(batch.model, "mlp");
        assert_eq!(batch.output_names, vec!["y".to_string()]);
    }

    // Ragged and malformed batches are non-retriable 400s.
    match client.predict_batch(&[vec![1.0, 2.0], vec![1.0]]) {
        Err(ServeError::Rejected {
            status, retriable, ..
        }) => {
            assert_eq!(status, 400);
            assert!(!retriable);
        }
        other => panic!("ragged batch must reject, got {other:?}"),
    }
    match client.predict_batch(&[]) {
        Err(ServeError::Rejected { status, .. }) => assert_eq!(status, 400),
        other => panic!("empty batch must reject, got {other:?}"),
    }
    match client.predict_batch(&[vec![f64::NAN, 1.0]]) {
        Err(ServeError::Rejected { status, .. }) => assert_eq!(status, 400),
        other => panic!("non-finite batch must reject, got {other:?}"),
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn predict_batch_degrades_to_baseline_when_no_primary() {
    let base = baseline();
    let inputs: Vec<Vec<f64>> = vec![vec![3.0, 4.0], vec![1.0, 2.0]];
    let expected: Vec<Vec<f64>> = inputs.iter().map(|x| base.predict(x).unwrap()).collect();
    let bundle = FallbackModel::new(
        None,
        Some(base),
        vec!["a".into(), "b".into()],
        vec!["y".into()],
    )
    .unwrap();
    let (addr, handle) = start(bundle, ServeConfig::default());
    let client = patient_client(&addr);

    let batch = client.predict_batch(&inputs).unwrap();
    assert!(batch.degraded);
    assert_eq!(batch.model, "linear-baseline");
    assert_eq!(batch.outputs, expected);

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(stats.degraded >= 1);
}

#[test]
fn degraded_only_serving_matches_baseline_exactly() {
    let base = baseline();
    let expected = base.predict(&[3.0, 4.0]).unwrap();
    let bundle = FallbackModel::new(
        None,
        Some(base),
        vec!["a".into(), "b".into()],
        vec!["y".into()],
    )
    .unwrap();
    let (addr, handle) = start(bundle, ServeConfig::default());
    let client = patient_client(&addr);

    let prediction = client.predict(&[3.0, 4.0]).unwrap();
    assert!(prediction.degraded);
    assert_eq!(prediction.model, "linear-baseline");
    assert_eq!(
        prediction.outputs, expected,
        "degraded responses must be byte-identical to the wlc-core baseline"
    );
    // A server with only a baseline still reports ready: it can answer.
    assert_eq!(
        client
            .readyz()
            .unwrap()
            .get("ready")
            .and_then(|r| r.as_bool()),
        Some(true)
    );

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(stats.degraded >= 1);
}

#[test]
fn overload_soak_sheds_deterministically_and_recovers() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 2,
        slow_per_request: Duration::from_millis(15),
        default_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(full_bundle(2), config);

    // Sustained burst far beyond 1 worker x 2 queue slots.
    let ok = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let (addr, ok, shed) = (addr.clone(), Arc::clone(&ok), Arc::clone(&shed));
            thread::spawn(move || {
                let client = quick_client(&addr);
                for _ in 0..6 {
                    match client.predict(&[2.0, 2.0]) {
                        Ok(_) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Rejected {
                            status, retriable, ..
                        }) => {
                            assert_eq!(status, 503, "only shedding may reject under load");
                            assert!(retriable, "shed responses must be marked retriable");
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::RetriesExhausted { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected failure under load: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let (ok, shed) = (ok.load(Ordering::Relaxed), shed.load(Ordering::Relaxed));
    assert_eq!(ok + shed, 48, "every request must resolve decisively");
    assert!(ok > 0, "some requests must get through");
    assert!(
        shed > 0,
        "a 3-slot pipeline cannot absorb 8x6 concurrent requests"
    );

    // After the burst drains, readiness recovers and requests succeed.
    let client = patient_client(&addr);
    let recovered = (0..100).any(|_| {
        thread::sleep(Duration::from_millis(10));
        client
            .readyz()
            .ok()
            .and_then(|j| j.get("ready").and_then(|r| r.as_bool()))
            == Some(true)
    });
    assert!(recovered, "/readyz must flip back after the burst");
    assert!(client.predict(&[2.0, 2.0]).is_ok());

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(stats.shed >= shed, "acceptor must account for every shed");
    assert!(stats.handled >= ok);
}

#[test]
fn deadlines_fire_for_slow_requests() {
    let config = ServeConfig {
        workers: 2,
        slow_per_request: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(full_bundle(3), config);
    let client = quick_client(&addr);

    // 10ms deadline against 50ms service time: must time out, and the
    // timeout must be marked retriable (504).
    match client.predict_with_deadline(&[2.0, 2.0], Some(10)) {
        Err(ServeError::Rejected {
            status,
            retriable,
            message,
        }) => {
            assert_eq!(status, 504);
            assert!(retriable, "timeouts must be marked retriable");
            assert!(message.contains("deadline"), "got: {message}");
        }
        other => panic!("expected deadline miss, got {other:?}"),
    }
    // A generous deadline succeeds.
    assert!(client
        .predict_with_deadline(&[2.0, 2.0], Some(5000))
        .is_ok());

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(stats.deadline_missed >= 1);
}

#[test]
fn breaker_opens_degrades_then_half_open_probe_recovers() {
    let base = baseline();
    let expected_degraded = base.predict(&[2.0, 3.0]).unwrap();
    let model = mlp(4);
    let expected_primary = model.predict(&[2.0, 3.0]).unwrap();
    let bundle = FallbackModel::new(Some(model), Some(base), vec![], vec![]).unwrap();
    let config = ServeConfig {
        force_fail: 3,
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(bundle, config);
    let client = patient_client(&addr);

    // The three injected failures each degrade to the baseline and
    // count against the breaker.
    for i in 0..3 {
        let p = client.predict(&[2.0, 3.0]).unwrap();
        assert!(p.degraded, "injected failure {i} must degrade");
        assert_eq!(p.model, "linear-baseline");
        assert_eq!(
            p.outputs, expected_degraded,
            "degraded output must match the wlc-core baseline"
        );
    }
    // Circuit is now open: the injection budget is spent, but requests
    // keep degrading without touching the primary.
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("breaker").and_then(|s| s.as_str()), Some("open"));
    let p = client.predict(&[2.0, 3.0]).unwrap();
    assert!(p.degraded, "open circuit must bypass the primary");

    // After the cooldown a half-open probe succeeds and closes the
    // circuit; primary serving resumes.
    thread::sleep(Duration::from_millis(150));
    let p = client.predict(&[2.0, 3.0]).unwrap();
    assert!(!p.degraded, "half-open probe should recover the primary");
    assert_eq!(p.outputs, expected_primary);
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get("breaker").and_then(|s| s.as_str()),
        Some("closed")
    );

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(stats.degraded >= 4);
}

#[test]
fn hot_reload_swaps_atomically_under_concurrent_load() {
    let model_a = mlp(5);
    let model_b = mlp(6);
    let probe = [2.5, 3.5];
    let pred_a = model_a.predict(&probe).unwrap();
    let pred_b = model_b.predict(&probe).unwrap();
    assert_ne!(pred_a, pred_b, "test needs distinguishable models");

    let dir = std::env::temp_dir().join(format!("wlc-serve-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path_b = dir.join("model-b.txt");
    model_b.save(&path_b).unwrap();

    let bundle = FallbackModel::new(Some(model_a), Some(baseline()), vec![], vec![]).unwrap();
    let (addr, handle) = start(bundle, ServeConfig::default());
    let client = patient_client(&addr);

    // Hammer the server from background threads for the whole duration.
    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..3)
        .map(|_| {
            let (addr, stop) = (addr.clone(), Arc::clone(&stop));
            thread::spawn(move || {
                let client = patient_client(&addr);
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let p = client.predict(&[2.5, 3.5]).unwrap();
                    assert!(!p.degraded, "reload must never interrupt serving");
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Invalid reloads: every one rejected, generation pinned, serving
    // predictions still byte-identical to model A.
    let text = std::fs::read_to_string(&path_b).unwrap();
    let corrupt = dir.join("corrupt.txt");
    std::fs::write(&corrupt, text.replacen("wlc-model v1", "broken", 1)).unwrap();
    let truncated = dir.join("truncated.txt");
    std::fs::write(
        &truncated,
        text.lines().take(4).collect::<Vec<_>>().join("\n"),
    )
    .unwrap();
    let missing = dir.join("missing.txt");
    for bad in [&corrupt, &truncated, &missing] {
        match client.reload(bad.to_str().unwrap()) {
            Err(ServeError::Rejected {
                status, retriable, ..
            }) => {
                assert_eq!(status, 400);
                assert!(!retriable);
            }
            other => panic!("invalid reload must reject, got {other:?}"),
        }
    }
    assert_eq!(client.predict(&probe).unwrap().outputs, pred_a);
    assert_eq!(client.predict(&probe).unwrap().generation, 0);

    // A dimension-mismatched model is rejected by validation.
    let mut narrow = Dataset::new(vec!["a".into()], vec!["y".into()]).unwrap();
    for i in 0..8 {
        narrow
            .push(Sample::new(vec![i as f64], vec![i as f64 * 3.0]))
            .unwrap();
    }
    let wrong_dims = WorkloadModelBuilder::new()
        .no_hidden_layers()
        .hidden_layer(3)
        .max_epochs(50)
        .seed(9)
        .train(&narrow)
        .unwrap()
        .model;
    let path_wrong = dir.join("wrong-dims.txt");
    wrong_dims.save(&path_wrong).unwrap();
    match client.reload(path_wrong.to_str().unwrap()) {
        Err(ServeError::Rejected { status, .. }) => assert_eq!(status, 400),
        other => panic!("dim mismatch must reject, got {other:?}"),
    }
    assert_eq!(client.predict(&probe).unwrap().outputs, pred_a);

    // The valid reload swaps atomically: generation bumps and new
    // predictions come from model B.
    assert_eq!(client.reload(path_b.to_str().unwrap()).unwrap(), 1);
    let p = client.predict(&probe).unwrap();
    assert_eq!(p.generation, 1);
    assert_eq!(p.outputs, pred_b);

    stop.store(true, Ordering::Relaxed);
    let total: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        total > 0,
        "hammer threads must have exercised the swap window"
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predict_batch_error_paths_match_the_http_contract() {
    let (addr, handle) = start(full_bundle(8), ServeConfig::default());
    let client = quick_client(&addr);

    // Raw bodies so the test pins the wire contract, not the client's
    // serializer. Every malformed batch is a 400 per the README status
    // table, marked non-retriable, with an error message naming the
    // problem.
    let bad: &[(&str, &str)] = &[
        (r#"{"inputs":[]}"#, "empty batch"),
        (r#"{"inputs":[[1.0,2.0],[1.0]]}"#, "ragged rows"),
        (r#"{"inputs":[[1.0,null]]}"#, "non-finite value"),
        (r#"{"inputs":[5.0]}"#, "non-array row"),
        (r#"{"inputs":"x"}"#, "non-array inputs"),
        (r#"{}"#, "missing inputs"),
        (r#"{"#, "unparseable body"),
    ];
    for (body, what) in bad {
        let resp = client.request("POST", "/predict_batch", body).unwrap();
        assert_eq!(resp.status, 400, "{what} must answer 400");
        let json = Json::parse(resp.body_str().unwrap()).unwrap();
        assert_eq!(
            json.get("retriable").and_then(Json::as_bool),
            Some(false),
            "{what} is the caller's fault: retrying cannot help"
        );
        assert!(
            json.get("error")
                .and_then(Json::as_str)
                .is_some_and(|m| !m.is_empty()),
            "{what} must carry an error message"
        );
    }

    // The same endpoint still answers a well-formed batch.
    let resp = client
        .request(
            "POST",
            "/predict_batch",
            r#"{"inputs":[[2.0,3.0],[1.0,1.0]]}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 200);

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.deadline_missed, 0);
}

/// Behavioral pin of the breaker accounting sweep (the unit rule lives
/// in `wlc_serve::counts_against_breaker`): with a threshold of one, a
/// single miscounted failure would flip `/stats` to "open".
#[test]
fn breaker_ignores_caller_errors_and_queued_deadline_misses() {
    let probe = [2.0, 3.0];
    let config = ServeConfig {
        workers: 1,
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_secs(60),
        slow_per_request: Duration::from_millis(250),
        default_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(full_bundle(4), config);
    let client = quick_client(&addr);

    // Caller errors: 400s and a 404 never touch the breaker.
    assert!(matches!(
        client.predict(&[1.0]),
        Err(ServeError::Rejected { status: 400, .. })
    ));
    assert!(matches!(
        client.predict(&[f64::NAN, 1.0]),
        Err(ServeError::Rejected { status: 400, .. })
    ));
    assert_eq!(client.request("GET", "/nope", "").unwrap().status, 404);

    // Queued-phase deadline miss: a slow request occupies the single
    // worker, so a tight-deadline request expires while still queued.
    let bg = {
        let addr = addr.clone();
        thread::spawn(move || quick_client(&addr).predict_with_deadline(&probe, Some(5000)))
    };
    thread::sleep(Duration::from_millis(60)); // slow request is in service
    match client.predict_with_deadline(&probe, Some(20)) {
        Err(ServeError::Rejected {
            status,
            retriable,
            message,
        }) => {
            assert_eq!(status, 504);
            assert!(retriable);
            assert!(message.contains("while queued"), "got: {message}");
        }
        other => panic!("expected queued deadline miss, got {other:?}"),
    }
    assert!(bg.join().unwrap().is_ok());

    // None of the above counted: the breaker is still closed and the
    // primary still serves.
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get("breaker").and_then(Json::as_str),
        Some("closed"),
        "caller errors and queued 504s must not trip the breaker"
    );
    assert!(!client.predict(&probe).unwrap().degraded);

    // A compute-phase deadline miss (the primary answered, but too
    // late) is a real serving failure and opens the breaker at once.
    match client.predict_with_deadline(&probe, Some(100)) {
        Err(ServeError::Rejected {
            status, message, ..
        }) => {
            assert_eq!(status, 504);
            assert!(message.contains("during computation"), "got: {message}");
        }
        other => panic!("expected compute deadline miss, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get("breaker").and_then(Json::as_str),
        Some("open"),
        "one compute-phase failure must open a threshold-1 breaker"
    );
    // Open breaker bypasses the primary: serving degrades to baseline.
    assert!(client.predict(&probe).unwrap().degraded);

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(stats.deadline_missed >= 2);
    assert!(stats.degraded >= 1);
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 16,
        slow_per_request: Duration::from_millis(60),
        default_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(full_bundle(7), config);

    // Six slow requests: two in flight, four queued behind them.
    let inflight: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || quick_client(&addr).predict(&[2.0, 2.0]))
        })
        .collect();
    thread::sleep(Duration::from_millis(20)); // let them enqueue

    // The shutdown request queues behind them and must still drain
    // everything that was accepted.
    let started = Instant::now();
    quick_client(&addr).shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drain must terminate promptly"
    );
    for t in inflight {
        let result = t.join().unwrap();
        assert!(
            result.is_ok(),
            "accepted request dropped during shutdown: {result:?}"
        );
    }
    assert!(stats.handled >= 7, "6 predicts + shutdown, got {stats:?}");

    // The listener is gone: new connections fail.
    assert!(quick_client(&addr).healthz().is_err());
}

#[test]
fn injected_read_fault_rejects_reload_as_retriable_503_and_a_retry_succeeds() {
    use wlc_fault::{FailPlan, FaultKind, Fs, SimFs};

    let model_a = mlp(5);
    let model_b = mlp(6);
    let probe = [2.5, 3.5];
    let pred_a = model_a.predict(&probe).unwrap();
    let pred_b = model_b.predict(&probe).unwrap();
    assert_ne!(pred_a, pred_b, "test needs distinguishable models");

    // The candidate lives on a simulated filesystem whose first read at
    // `serve.model.load` returns EIO; the server never touches disk.
    let sim = Arc::new(SimFs::with_plan(FailPlan::single(
        "serve.model.load",
        0,
        FaultKind::Eio,
    )));
    let dir = std::path::Path::new("models");
    sim.create_dir_all("test.setup", dir).unwrap();
    let path_b = dir.join("model-b.txt");
    sim.write("test.setup", &path_b, model_b.to_text().as_bytes())
        .unwrap();

    let bundle = FallbackModel::new(Some(model_a), Some(baseline()), vec![], vec![]).unwrap();
    let config = ServeConfig {
        fs: sim,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(bundle, config);
    let client = quick_client(&addr);

    // The injected fault is a transient storage failure, not a caller
    // mistake: 503, retriable, and serving stays on the last-good model.
    match client.reload_detailed(path_b.to_str().unwrap()) {
        Err(ServeError::Rejected {
            status,
            retriable,
            message,
            ..
        }) => {
            assert_eq!(status, 503);
            assert!(retriable);
            assert!(message.contains("injected eio"), "{message}");
        }
        other => panic!("expected retriable 503, got {other:?}"),
    }
    let p = client.predict(&probe).unwrap();
    assert_eq!(p.outputs, pred_a, "failed reload must not disturb serving");
    assert_eq!(p.generation, 0);

    // The failpoint fired once and is consumed: the retry goes through.
    assert_eq!(client.reload(path_b.to_str().unwrap()).unwrap(), 1);
    let p = client.predict(&probe).unwrap();
    assert_eq!(p.generation, 1);
    assert_eq!(p.outputs, pred_b);

    client.shutdown().unwrap();
    handle.join().unwrap();
}
