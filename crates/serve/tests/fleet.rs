//! Fleet-level tests for the multi-replica serving tier: least-loaded
//! dispatch spreading traffic, per-replica health reporting, a
//! mid-load replica kill plus rolling reload with zero failed
//! (non-shed) requests and one-at-a-time generation advancement, and
//! the overload contract across replica queues.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use wlc_data::{Dataset, Sample};
use wlc_model::baseline::{LinearFeatures, LinearModel};
use wlc_model::fallback::FallbackModel;
use wlc_model::{PerformanceModel, WorkloadModel, WorkloadModelBuilder};
use wlc_serve::{ClientConfig, Json, ServeClient, ServeConfig, ServeError, ServeStats, Server};

fn dataset() -> Dataset {
    let mut ds = Dataset::new(vec!["a".into(), "b".into()], vec!["y".into()]).unwrap();
    for i in 0..6 {
        for j in 0..6 {
            let (a, b) = (i as f64 + 1.0, j as f64 + 1.0);
            ds.push(Sample::new(vec![a, b], vec![a * 2.0 + b + a * b * 0.1]))
                .unwrap();
        }
    }
    ds
}

fn mlp(seed: u64) -> WorkloadModel {
    WorkloadModelBuilder::new()
        .no_hidden_layers()
        .hidden_layer(6)
        .max_epochs(200)
        .seed(seed)
        .train(&dataset())
        .unwrap()
        .model
}

fn full_bundle(seed: u64) -> FallbackModel {
    let baseline = LinearModel::fit(&dataset(), LinearFeatures::FirstOrder).unwrap();
    FallbackModel::new(Some(mlp(seed)), Some(baseline), vec![], vec![]).unwrap()
}

fn start(bundle: FallbackModel, config: ServeConfig) -> (String, thread::JoinHandle<ServeStats>) {
    let server = Server::bind("127.0.0.1:0", bundle, config).unwrap();
    let addr = server.local_addr().to_string();
    let handle = thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

fn patient_client(addr: &str) -> ServeClient {
    ServeClient::new(
        addr,
        ClientConfig {
            max_attempts: 10,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            ..ClientConfig::default()
        },
    )
}

fn quick_client(addr: &str) -> ServeClient {
    ServeClient::new(
        addr,
        ClientConfig {
            max_attempts: 1,
            base_backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        },
    )
}

fn ready_count(json: &Json) -> u64 {
    json.get("replicas_ready")
        .and_then(Json::as_f64)
        .unwrap_or(-1.0) as u64
}

/// Polls `/readyz` until `replicas_ready` matches `want` (the fleet may
/// answer 503 while not ready — that is still an answer).
fn wait_for_ready_replicas(client: &ServeClient, want: u64) -> bool {
    for _ in 0..200 {
        let seen = match client.readyz() {
            Ok(json) => Some(ready_count(&json)),
            Err(ServeError::Rejected { .. }) => None,
            Err(_) => None,
        };
        if seen == Some(want) {
            return true;
        }
        thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn idle_fleet_rotates_and_reports_per_replica_stats() {
    let config = ServeConfig {
        replicas: 3,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(full_bundle(1), config);
    let client = patient_client(&addr);

    let ready = client.readyz().unwrap();
    assert_eq!(
        ready.get("replicas_total").and_then(Json::as_f64),
        Some(3.0)
    );
    assert_eq!(ready_count(&ready), 3);
    assert_eq!(
        ready
            .get("replicas")
            .and_then(Json::as_arr)
            .map(|a| a.len()),
        Some(3)
    );

    // Sequential requests against an idle fleet: load ties rotate
    // round-robin, so every replica serves.
    let mut seen = [false; 3];
    for _ in 0..30 {
        let p = client.predict(&[2.0, 3.0]).unwrap();
        assert!(!p.degraded);
        if let Some(slot) = seen.get_mut(p.replica as usize) {
            *slot = true;
        }
    }
    assert_eq!(seen, [true, true, true], "all three replicas must serve");

    let stats = client.stats().unwrap();
    let replicas = stats.get("replicas").and_then(Json::as_arr).unwrap();
    assert_eq!(replicas.len(), 3);
    for entry in replicas {
        let handled = entry.get("handled").and_then(Json::as_f64).unwrap();
        assert!(handled >= 1.0, "every replica must have answered requests");
        assert_eq!(entry.get("breaker").and_then(Json::as_str), Some("closed"));
        assert_eq!(entry.get("generation").and_then(Json::as_f64), Some(0.0));
    }

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(stats.handled >= 31);
}

/// The PR acceptance test: with 3 replicas under sustained load, a
/// mid-load replica kill and a rolling reload both complete with zero
/// failed (non-shed) requests, p99 holds, and per-replica generation
/// counters advance one replica at a time.
#[test]
fn replica_kill_and_rolling_reload_under_sustained_load() {
    let model_a = mlp(5);
    let model_b = mlp(6);
    let probe = [2.5, 3.5];
    let pred_a = model_a.predict(&probe).unwrap();
    let pred_b = model_b.predict(&probe).unwrap();
    assert_ne!(pred_a, pred_b, "test needs distinguishable models");

    let dir = std::env::temp_dir().join(format!("wlc-fleet-roll-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path_b = dir.join("model-b.txt");
    model_b.save(&path_b).unwrap();

    let baseline = LinearModel::fit(&dataset(), LinearFeatures::FirstOrder).unwrap();
    let bundle = FallbackModel::new(Some(model_a), Some(baseline), vec![], vec![]).unwrap();
    let config = ServeConfig {
        replicas: 3,
        workers: 2,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(bundle, config);
    let client = patient_client(&addr);
    assert!(wait_for_ready_replicas(&client, 3));

    // Sustained load for the whole scenario. Every request must either
    // succeed or be an explicit retriable shed — anything else is a
    // dropped request and fails the test.
    let stop = Arc::new(AtomicBool::new(false));
    let shed = Arc::new(AtomicU64::new(0));
    let latencies = Arc::new(Mutex::new(Vec::<Duration>::new()));
    let hammers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let shed = Arc::clone(&shed);
            let latencies = Arc::clone(&latencies);
            thread::spawn(move || {
                let client = patient_client(&addr);
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let started = Instant::now();
                    match client.predict(&probe) {
                        Ok(p) => {
                            assert!(!p.degraded, "kill/reload must never degrade serving");
                            latencies.lock().unwrap().push(started.elapsed());
                            served += 1;
                        }
                        // The only acceptable rejection is an explicit
                        // retriable shed (all queues busy mid-drain).
                        Err(ServeError::Rejected {
                            status, retriable, ..
                        }) if status == 503 && retriable => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::RetriesExhausted { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("request failed mid-fleet-event: {other:?}"),
                    }
                }
                served
            })
        })
        .collect();
    thread::sleep(Duration::from_millis(50)); // load is flowing

    // Kill replica 1 mid-load: the fleet degrades to 2 ready replicas
    // but stays ready, and the router routes around the corpse.
    client.kill_replica(1).unwrap();
    assert!(wait_for_ready_replicas(&client, 2));
    assert_eq!(
        client
            .readyz()
            .unwrap()
            .get("ready")
            .and_then(Json::as_bool),
        Some(true),
        "fleet must stay ready with 2 of 3 replicas"
    );
    thread::sleep(Duration::from_millis(50)); // sustained load on 2 replicas

    // Rolling reload mid-load: generations advance one replica at a
    // time (the dead replica is swapped too, without draining).
    let outcome = client.reload_detailed(path_b.to_str().unwrap()).unwrap();
    assert_eq!(outcome.generation, 1);
    assert_eq!(outcome.generations, vec![1, 1, 1]);
    assert_eq!(
        outcome.steps,
        vec![vec![1, 0, 0], vec![1, 1, 0], vec![1, 1, 1]],
        "each rolling step must advance exactly one replica"
    );

    // Post-reload predictions come from model B at generation 1.
    let p = client.predict(&probe).unwrap();
    assert_eq!(p.outputs, pred_b);
    assert_eq!(p.generation, 1);

    // Revive replica 1: it rejoins already serving the new generation.
    client.revive_replica(1).unwrap();
    assert!(wait_for_ready_replicas(&client, 3));
    let mut revived_served = false;
    for _ in 0..60 {
        let p = client.predict(&probe).unwrap();
        assert_eq!(p.outputs, pred_b, "every replica must serve model B");
        assert_eq!(p.generation, 1);
        if p.replica == 1 {
            revived_served = true;
            break;
        }
    }
    assert!(revived_served, "revived replica must rejoin the rotation");

    stop.store(true, Ordering::Relaxed);
    let served: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(served > 0, "hammers must have exercised the fleet events");

    // Error budget: p99 of successful requests stays well under the
    // 2 s default deadline even across the kill and the rolling reload.
    let mut lat = latencies.lock().unwrap().clone();
    lat.sort();
    let p99 = lat.get(lat.len() * 99 / 100).copied().unwrap();
    assert!(
        p99 < Duration::from_secs(2),
        "p99 {p99:?} must hold through kill + rolling reload"
    );

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(stats.handled >= served);
    std::fs::remove_dir_all(&dir).ok();
}

/// Supervisor bookkeeping across a promote-then-rollback cycle: the
/// fleet's `min_generation` stays consistent (every replica on the
/// same generation after each completed swap), and the `/supervisor`
/// counters surface promotions, rollbacks, quarantines and probation
/// state through `/stats`.
#[test]
fn stats_min_generation_and_supervisor_counters_survive_a_rollback() {
    let model_a = mlp(7);
    let model_b = mlp(8);
    let probe = [2.5, 3.5];
    let pred_a = model_a.predict(&probe).unwrap();

    let dir = std::env::temp_dir().join(format!("wlc-fleet-rollback-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path_a = dir.join("model-a.txt");
    let path_b = dir.join("model-b.txt");
    model_a.save(&path_a).unwrap();
    model_b.save(&path_b).unwrap();

    let baseline = LinearModel::fit(&dataset(), LinearFeatures::FirstOrder).unwrap();
    let bundle = FallbackModel::new(Some(model_a), Some(baseline), vec![], vec![]).unwrap();
    let config = ServeConfig {
        replicas: 3,
        workers: 2,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(bundle, config);
    let client = patient_client(&addr);
    assert!(wait_for_ready_replicas(&client, 3));

    // Promotion: swap the fleet to the candidate and open probation.
    let outcome = client.reload_detailed(path_b.to_str().unwrap()).unwrap();
    assert_eq!(outcome.generation, 1);
    client.notify_supervisor("promotion").unwrap();
    client.notify_supervisor("probation_start").unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get("min_generation").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(
        stats.get("probation").and_then(Json::as_str),
        Some("active")
    );

    // Watchdog verdict: bad candidate. Roll the fleet back to
    // last-good and record the rollback + quarantine.
    let outcome = client.reload_detailed(path_a.to_str().unwrap()).unwrap();
    assert_eq!(outcome.generation, 2);
    assert_eq!(outcome.generations, vec![2, 2, 2]);
    client.notify_supervisor("rollback").unwrap();
    client.notify_supervisor("quarantine").unwrap();
    client.notify_supervisor("probation_end").unwrap();

    // After the rollback every replica sits on the same generation:
    // min_generation equals the fleet generation and each per-replica
    // counter agrees — no replica was left behind on the bad model.
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get("min_generation").and_then(Json::as_f64),
        Some(2.0)
    );
    assert_eq!(stats.get("generation").and_then(Json::as_f64), Some(2.0));
    let replicas = stats.get("replicas").and_then(Json::as_arr).unwrap();
    assert_eq!(replicas.len(), 3);
    for entry in replicas {
        assert_eq!(entry.get("generation").and_then(Json::as_f64), Some(2.0));
    }
    assert_eq!(stats.get("promotions").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("rollbacks").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("quarantined").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("probation").and_then(Json::as_str), Some("idle"));

    // And the fleet actually serves last-good again.
    let p = client.predict(&probe).unwrap();
    assert_eq!(p.outputs, pred_a);
    assert_eq!(p.generation, 2);

    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_overload_sheds_only_when_every_queue_is_full() {
    let config = ServeConfig {
        replicas: 3,
        workers: 1,
        queue_capacity: 1,
        slow_per_request: Duration::from_millis(20),
        default_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(full_bundle(2), config);

    // 10 threads x 5 requests against 3 replicas x (1 worker + 1 queue
    // slot): far beyond fleet capacity, so some requests must shed —
    // but the router falls over between queues, so some must also land.
    let ok = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..10)
        .map(|_| {
            let (addr, ok, shed) = (addr.clone(), Arc::clone(&ok), Arc::clone(&shed));
            thread::spawn(move || {
                let client = quick_client(&addr);
                for _ in 0..5 {
                    match client.predict(&[2.0, 2.0]) {
                        Ok(_) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Rejected {
                            status, retriable, ..
                        }) => {
                            assert_eq!(status, 503, "only shedding may reject under load");
                            assert!(retriable, "shed responses must be marked retriable");
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::RetriesExhausted { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected failure under load: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let (ok, shed) = (ok.load(Ordering::Relaxed), shed.load(Ordering::Relaxed));
    assert_eq!(ok + shed, 50, "every request must resolve decisively");
    assert!(ok > 0, "the fleet must absorb some of the burst");
    assert!(
        shed > 0,
        "a 6-slot fleet cannot absorb 10x5 concurrent requests"
    );

    // After the burst, readiness recovers fleet-wide.
    let client = patient_client(&addr);
    assert!(wait_for_ready_replicas(&client, 3));
    assert!(client.predict(&[2.0, 2.0]).is_ok());

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(stats.shed >= shed, "acceptor must account for every shed");
    assert!(stats.handled >= ok);
}
