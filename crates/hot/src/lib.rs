//! The `#[wlc_hot]` marker attribute for allocation-free hot paths.
//!
//! Functions on the batched training / inference / serving hot path are
//! annotated `#[wlc_hot]`. The attribute is deliberately inert — it
//! expands to the unchanged item and adds zero runtime or compile-time
//! behaviour. Its only purpose is to be visible to `wlc-lint`, whose
//! `alloc-in-hot-path` rule scans marked functions and flags heap
//! allocations (`Vec::new`, `to_vec()`, `clone()`, `vec![]`, ...)
//! inside them.
//!
//! Intentional allocations (e.g. one-time workspace construction) can be
//! suppressed with the usual grammar:
//! `// wlc-lint: allow(alloc-in-hot-path, reason = "...")`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Marks a function as hot-path: `wlc-lint` forbids heap allocation inside.
///
/// The macro returns the item unchanged.
#[proc_macro_attribute]
pub fn wlc_hot(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
