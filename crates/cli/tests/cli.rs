//! End-to-end tests of the `wlc` binary: every subcommand, driven through
//! a real process, sharing one temp workspace.

use std::path::PathBuf;
use std::process::{Command, Output};

fn wlc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wlc"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn workspace() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wlc-cli-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn help_lists_commands() {
    let out = wlc(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in ["simulate", "collect", "train", "predict", "cv", "surface"] {
        assert!(text.contains(cmd), "missing `{cmd}` in help");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = wlc(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn subcommand_without_flags_prints_usage() {
    let out = wlc(&["simulate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--rate"));
}

#[test]
fn simulate_prints_measurement() {
    let out = wlc(&[
        "simulate",
        "--rate",
        "300",
        "--default",
        "8",
        "--mfg",
        "12",
        "--web",
        "8",
        "--duration",
        "4",
        "--warmup",
        "1",
        "--seed",
        "3",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("manufacturing"));
    assert!(text.contains("throughput"));
    assert!(text.contains("p95"));
}

#[test]
fn simulate_rejects_bad_flags() {
    let out = wlc(&[
        "simulate",
        "--rate",
        "abc",
        "--default",
        "8",
        "--mfg",
        "8",
        "--web",
        "8",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot parse"));
}

#[test]
fn exit_codes_distinguish_failure_kinds() {
    // Bad usage: unknown command and missing flags are exit 2.
    assert_eq!(wlc(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(wlc(&["train"]).status.code(), Some(2));

    // Strict validation failure is exit 3 with a one-line diagnosis.
    let dir = workspace();
    let bad = dir.join("bad.csv");
    let bad_s = bad.to_str().expect("utf8 path");
    std::fs::write(&bad, "a,y*\n1.0,NaN\n").expect("write csv");
    let out = wlc(&["train", "--data", bad_s, "--out", "/dev/null"]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("validation error at line 2"));

    // Repair mode drops the bad row instead (then fails on the now-empty
    // dataset, which is a plain failure, not a validation error).
    let out = wlc(&[
        "train",
        "--data",
        bad_s,
        "--out",
        "/dev/null",
        "--mode",
        "repair",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("dropped"));

    // A bad fault profile is also a validation failure.
    let out = wlc(&[
        "collect",
        "--samples",
        "2",
        "--out",
        "/dev/null",
        "--fault-profile",
        "dropout=7",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
}

#[test]
fn cv_quarantines_forced_divergence() {
    let dir = workspace();
    let data = dir.join("cv-faults.csv");
    let data_s = data.to_str().expect("utf8 path");
    let out = wlc(&[
        "collect",
        "--samples",
        "12",
        "--out",
        data_s,
        "--duration",
        "3",
        "--warmup",
        "1",
        "--seed",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let base = [
        "cv",
        "--data",
        data_s,
        "--k",
        "3",
        "--epochs",
        "200",
        "--hidden",
        "6",
        "--force-diverge",
        "1",
    ];
    // Without quarantine the forced fold aborts the run with exit 4.
    let out = wlc(&base);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
    assert!(stderr(&out).contains("diverged"));

    // With quarantine the run succeeds and reports the survivors.
    let mut with_q = base.to_vec();
    with_q.push("--quarantine");
    let out = wlc(&with_q);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("fold 2 quarantined"), "{text}");
    assert!(text.contains("aggregating 2 surviving fold(s)"), "{text}");
    assert!(text.contains("Average"));

    // A retry (fresh seed, real learning rate) recovers the fold.
    let mut with_retry = base.to_vec();
    with_retry.extend(["--retries", "1"]);
    let out = wlc(&with_retry);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(!stdout(&out).contains("quarantined"));
}

#[test]
fn collect_with_faults_quarantines_and_stays_deterministic() {
    let dir = workspace();
    let a = dir.join("faulty-a.csv");
    let b = dir.join("faulty-b.csv");
    let base = |out_path: &str, jobs: &str| {
        wlc(&[
            "collect",
            "--samples",
            "6",
            "--out",
            out_path,
            "--duration",
            "3",
            "--warmup",
            "1",
            "--seed",
            "4",
            "--fault-profile",
            "dropout=0.5,truncate=0.2,truncate_frac=0.5",
            "--retries",
            "8",
            "--jobs",
            jobs,
        ])
    };
    let out = base(a.to_str().expect("utf8"), "1");
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("fault injection:"));
    let out = base(b.to_str().expect("utf8"), "4");
    assert!(out.status.success(), "{}", stderr(&out));
    let csv_a = std::fs::read_to_string(&a).expect("csv a");
    let csv_b = std::fs::read_to_string(&b).expect("csv b");
    assert_eq!(csv_a, csv_b, "faulty collection must not depend on --jobs");

    // Certain dropout with no retries quarantines every sample.
    let empty = dir.join("faulty-empty.csv");
    let out = wlc(&[
        "collect",
        "--samples",
        "3",
        "--out",
        empty.to_str().expect("utf8"),
        "--duration",
        "3",
        "--warmup",
        "1",
        "--fault-profile",
        "dropout=1.0",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("wrote 0 samples"));
    assert!(stderr(&out).contains("quarantined"));
}

#[test]
fn train_checkpoint_resume_matches_uninterrupted() {
    let dir = workspace();
    let data = dir.join("resume-data.csv");
    let data_s = data.to_str().expect("utf8 path");
    let out = wlc(&[
        "collect",
        "--samples",
        "10",
        "--out",
        data_s,
        "--duration",
        "3",
        "--warmup",
        "1",
        "--seed",
        "6",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let full = dir.join("full.txt");
    let partial = dir.join("partial.txt");
    let resumed = dir.join("resumed.txt");
    let ckpt = dir.join("partial.ckpt");
    let (full_s, partial_s, resumed_s, ckpt_s) = (
        full.to_str().expect("utf8"),
        partial.to_str().expect("utf8"),
        resumed.to_str().expect("utf8"),
        ckpt.to_str().expect("utf8"),
    );
    let train = |extra: &[&str]| {
        let mut args = vec![
            "train",
            "--data",
            data_s,
            "--hidden",
            "6",
            "--lr",
            "0.01",
            "--threshold",
            "1e-12",
            "--seed",
            "9",
        ];
        args.extend(extra);
        wlc(&args)
    };

    // Uninterrupted 60-epoch run.
    let out = train(&["--out", full_s, "--epochs", "60"]);
    assert!(out.status.success(), "{}", stderr(&out));

    // "Killed" run: stops at epoch 40 with a checkpoint every 20 epochs.
    let out = train(&[
        "--out",
        partial_s,
        "--epochs",
        "40",
        "--checkpoint-every",
        "20",
        "--checkpoint",
        ckpt_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(ckpt.exists());

    // Resume to epoch 60: the model file must match the uninterrupted run
    // byte for byte.
    let out = train(&["--out", resumed_s, "--epochs", "60", "--resume", ckpt_s]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("resuming from"));
    let full_text = std::fs::read_to_string(&full).expect("full model");
    let resumed_text = std::fs::read_to_string(&resumed).expect("resumed model");
    assert_eq!(full_text, resumed_text);
    assert_ne!(
        std::fs::read_to_string(&partial).expect("partial model"),
        full_text
    );
}

#[test]
fn full_pipeline_collect_train_predict_cv_surface() {
    let dir = workspace();
    let data = dir.join("data.csv");
    let model = dir.join("model.txt");
    let data_s = data.to_str().expect("utf8 path");
    let model_s = model.to_str().expect("utf8 path");

    // collect
    let out = wlc(&[
        "collect",
        "--samples",
        "12",
        "--out",
        data_s,
        "--duration",
        "4",
        "--warmup",
        "1",
        "--seed",
        "5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(data.exists());
    assert!(stdout(&out).contains("wrote 12 samples"));

    // train
    let out = wlc(&[
        "train", "--data", data_s, "--out", model_s, "--epochs", "800", "--hidden", "8",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(model.exists());
    assert!(stdout(&out).contains("trained [4, 8, 5]"));

    // predict
    let out = wlc(&["predict", "--model", model_s, "--config", "450,10,16,10"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("throughput"));

    // predict with wrong width fails cleanly
    let out = wlc(&["predict", "--model", model_s, "--config", "450,10"]);
    assert!(!out.status.success());

    // cv
    let out = wlc(&[
        "cv", "--data", data_s, "--k", "3", "--epochs", "300", "--hidden", "8",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("Average"));

    // surface
    let out = wlc(&[
        "surface",
        "--model",
        model_s,
        "--base",
        "450,10,16,10",
        "--indicator",
        "4",
        "--steps",
        "5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("classification:"));
    assert!(text.contains("throughput"));

    std::fs::remove_dir_all(&dir).ok();
}
