//! End-to-end tests of the `wlc` binary: every subcommand, driven through
//! a real process, sharing one temp workspace.

use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

fn wlc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wlc"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn workspace() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wlc-cli-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn help_lists_commands() {
    let out = wlc(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in [
        "simulate", "collect", "train", "predict", "cv", "surface", "serve",
    ] {
        assert!(text.contains(cmd), "missing `{cmd}` in help");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = wlc(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn subcommand_without_flags_prints_usage() {
    let out = wlc(&["simulate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--rate"));
}

#[test]
fn simulate_prints_measurement() {
    let out = wlc(&[
        "simulate",
        "--rate",
        "300",
        "--default",
        "8",
        "--mfg",
        "12",
        "--web",
        "8",
        "--duration",
        "4",
        "--warmup",
        "1",
        "--seed",
        "3",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("manufacturing"));
    assert!(text.contains("throughput"));
    assert!(text.contains("p95"));
}

#[test]
fn simulate_rejects_bad_flags() {
    let out = wlc(&[
        "simulate",
        "--rate",
        "abc",
        "--default",
        "8",
        "--mfg",
        "8",
        "--web",
        "8",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot parse"));
}

#[test]
fn exit_codes_distinguish_failure_kinds() {
    // Bad usage: unknown command and missing flags are exit 2.
    assert_eq!(wlc(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(wlc(&["train"]).status.code(), Some(2));

    // Strict validation failure is exit 3 with a one-line diagnosis.
    let dir = workspace();
    let bad = dir.join("bad.csv");
    let bad_s = bad.to_str().expect("utf8 path");
    std::fs::write(&bad, "a,y*\n1.0,NaN\n").expect("write csv");
    let out = wlc(&["train", "--data", bad_s, "--out", "/dev/null"]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("validation error at line 2"));

    // Repair mode drops the bad row instead (then fails on the now-empty
    // dataset, which is a plain failure, not a validation error).
    let out = wlc(&[
        "train",
        "--data",
        bad_s,
        "--out",
        "/dev/null",
        "--mode",
        "repair",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("dropped"));

    // A bad fault profile is also a validation failure.
    let out = wlc(&[
        "collect",
        "--samples",
        "2",
        "--out",
        "/dev/null",
        "--fault-profile",
        "dropout=7",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
}

#[test]
fn cv_quarantines_forced_divergence() {
    let dir = workspace();
    let data = dir.join("cv-faults.csv");
    let data_s = data.to_str().expect("utf8 path");
    let out = wlc(&[
        "collect",
        "--samples",
        "12",
        "--out",
        data_s,
        "--duration",
        "3",
        "--warmup",
        "1",
        "--seed",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let base = [
        "cv",
        "--data",
        data_s,
        "--k",
        "3",
        "--epochs",
        "200",
        "--hidden",
        "6",
        "--force-diverge",
        "1",
    ];
    // Without quarantine the forced fold aborts the run with exit 4.
    let out = wlc(&base);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
    assert!(stderr(&out).contains("diverged"));

    // With quarantine the run succeeds and reports the survivors.
    let mut with_q = base.to_vec();
    with_q.push("--quarantine");
    let out = wlc(&with_q);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("fold 2 quarantined"), "{text}");
    assert!(text.contains("aggregating 2 surviving fold(s)"), "{text}");
    assert!(text.contains("Average"));

    // A retry (fresh seed, real learning rate) recovers the fold.
    let mut with_retry = base.to_vec();
    with_retry.extend(["--retries", "1"]);
    let out = wlc(&with_retry);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(!stdout(&out).contains("quarantined"));
}

#[test]
fn collect_with_faults_quarantines_and_stays_deterministic() {
    let dir = workspace();
    let a = dir.join("faulty-a.csv");
    let b = dir.join("faulty-b.csv");
    let base = |out_path: &str, jobs: &str| {
        wlc(&[
            "collect",
            "--samples",
            "6",
            "--out",
            out_path,
            "--duration",
            "3",
            "--warmup",
            "1",
            "--seed",
            "4",
            "--fault-profile",
            "dropout=0.5,truncate=0.2,truncate_frac=0.5",
            "--retries",
            "8",
            "--jobs",
            jobs,
        ])
    };
    let out = base(a.to_str().expect("utf8"), "1");
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("fault injection:"));
    let out = base(b.to_str().expect("utf8"), "4");
    assert!(out.status.success(), "{}", stderr(&out));
    let csv_a = std::fs::read_to_string(&a).expect("csv a");
    let csv_b = std::fs::read_to_string(&b).expect("csv b");
    assert_eq!(csv_a, csv_b, "faulty collection must not depend on --jobs");

    // Certain dropout with no retries quarantines every sample.
    let empty = dir.join("faulty-empty.csv");
    let out = wlc(&[
        "collect",
        "--samples",
        "3",
        "--out",
        empty.to_str().expect("utf8"),
        "--duration",
        "3",
        "--warmup",
        "1",
        "--fault-profile",
        "dropout=1.0",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("wrote 0 samples"));
    assert!(stderr(&out).contains("quarantined"));
}

#[test]
fn train_checkpoint_resume_matches_uninterrupted() {
    let dir = workspace();
    let data = dir.join("resume-data.csv");
    let data_s = data.to_str().expect("utf8 path");
    let out = wlc(&[
        "collect",
        "--samples",
        "10",
        "--out",
        data_s,
        "--duration",
        "3",
        "--warmup",
        "1",
        "--seed",
        "6",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let full = dir.join("full.txt");
    let partial = dir.join("partial.txt");
    let resumed = dir.join("resumed.txt");
    let ckpt = dir.join("partial.ckpt");
    let (full_s, partial_s, resumed_s, ckpt_s) = (
        full.to_str().expect("utf8"),
        partial.to_str().expect("utf8"),
        resumed.to_str().expect("utf8"),
        ckpt.to_str().expect("utf8"),
    );
    let train = |extra: &[&str]| {
        let mut args = vec![
            "train",
            "--data",
            data_s,
            "--hidden",
            "6",
            "--lr",
            "0.01",
            "--threshold",
            "1e-12",
            "--seed",
            "9",
        ];
        args.extend(extra);
        wlc(&args)
    };

    // Uninterrupted 60-epoch run.
    let out = train(&["--out", full_s, "--epochs", "60"]);
    assert!(out.status.success(), "{}", stderr(&out));

    // "Killed" run: stops at epoch 40 with a checkpoint every 20 epochs.
    let out = train(&[
        "--out",
        partial_s,
        "--epochs",
        "40",
        "--checkpoint-every",
        "20",
        "--checkpoint",
        ckpt_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(ckpt.exists());

    // Resume to epoch 60: the model file must match the uninterrupted run
    // byte for byte.
    let out = train(&["--out", resumed_s, "--epochs", "60", "--resume", ckpt_s]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("resuming from"));
    let full_text = std::fs::read_to_string(&full).expect("full model");
    let resumed_text = std::fs::read_to_string(&resumed).expect("resumed model");
    assert_eq!(full_text, resumed_text);
    assert_ne!(
        std::fs::read_to_string(&partial).expect("partial model"),
        full_text
    );
}

/// A running `wlc serve` child process, killed on drop so a failing
/// assertion cannot leak servers.
struct ServerProc {
    child: Child,
    addr: String,
    // Keeps the stdout pipe readable so the server's final stats line
    // has somewhere to go.
    stdout: std::io::BufReader<std::process::ChildStdout>,
}

impl ServerProc {
    fn spawn(args: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_wlc"))
            .arg("serve")
            .args(args)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("serve starts");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut stdout = std::io::BufReader::new(stdout);
        let mut first = String::new();
        stdout.read_line(&mut first).expect("startup line");
        let addr = first
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line: {first}"))
            .to_string();
        ServerProc {
            child,
            addr,
            stdout,
        }
    }

    /// Requests a graceful shutdown and asserts the process exits 0
    /// after printing its drain summary.
    fn shutdown(mut self) {
        let out = wlc(&["predict", "--server", &self.addr, "--shutdown"]);
        assert!(out.status.success(), "{}", stderr(&out));
        let status = self.child.wait().expect("server exits");
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut self.stdout, &mut rest).expect("drain output");
        assert_eq!(status.code(), Some(0), "graceful shutdown must exit 0");
        assert!(rest.contains("server drained:"), "missing summary: {rest}");
        // Drop still runs, but kill/wait on a reaped child are no-ops.
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn serve_predicts_reloads_and_shuts_down_gracefully() {
    let dir = workspace();
    let data = dir.join("serve-data.csv");
    let model_a = dir.join("serve-model-a.txt");
    let model_b = dir.join("serve-model-b.txt");
    let data_s = data.to_str().expect("utf8 path");

    let out = wlc(&[
        "collect",
        "--samples",
        "10",
        "--out",
        data_s,
        "--duration",
        "3",
        "--warmup",
        "1",
        "--seed",
        "11",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    for (model, seed) in [(&model_a, "1"), (&model_b, "2")] {
        let out = wlc(&[
            "train",
            "--data",
            data_s,
            "--out",
            model.to_str().expect("utf8"),
            "--epochs",
            "200",
            "--hidden",
            "6",
            "--seed",
            seed,
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
    }
    let model_a_s = model_a.to_str().expect("utf8");
    let model_b_s = model_b.to_str().expect("utf8");

    let server = ServerProc::spawn(&["--model", model_a_s, "--data", data_s, "--quiet"]);
    let addr = server.addr.clone();

    // Healthy prediction from the MLP.
    let out = wlc(&["predict", "--server", &addr, "--config", "450,10,16,10"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("model: mlp"), "{text}");
    assert!(text.contains("throughput"), "{text}");
    assert!(!text.contains("DEGRADED"), "{text}");

    // Status probes.
    let out = wlc(&["predict", "--server", &addr, "--status"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("ready"), "{text}");
    assert!(text.contains("breaker"), "{text}");

    // Server-side validation failures exit 3 (consistent with local
    // validation) and are not retried.
    let out = wlc(&["predict", "--server", &addr, "--config", "450,10"]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("width mismatch"), "{}", stderr(&out));

    // Invalid reloads are rejected without disturbing the server...
    let corrupt = dir.join("corrupt-model.txt");
    std::fs::write(&corrupt, "not a model").expect("write corrupt");
    let out = wlc(&[
        "predict",
        "--server",
        &addr,
        "--reload",
        corrupt.to_str().expect("utf8"),
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    // ... and a valid reload swaps to the new model.
    let out = wlc(&["predict", "--server", &addr, "--reload", model_b_s]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("reloaded: generation 1"));

    server.shutdown();

    // The drained server is gone: client attempts exhaust retries, exit 5.
    let out = wlc(&[
        "predict",
        "--server",
        &addr,
        "--config",
        "450,10,16,10",
        "--retries",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(5), "{}", stderr(&out));
}

#[test]
fn serve_degrades_to_baseline_when_model_is_unusable() {
    let dir = workspace();
    let data = dir.join("degraded-data.csv");
    let data_s = data.to_str().expect("utf8 path");
    let out = wlc(&[
        "collect",
        "--samples",
        "8",
        "--out",
        data_s,
        "--duration",
        "3",
        "--warmup",
        "1",
        "--seed",
        "12",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // The MLP file does not exist, but --data provides a baseline: the
    // server starts degraded instead of failing.
    let missing = dir.join("nope.txt");
    let server = ServerProc::spawn(&[
        "--model",
        missing.to_str().expect("utf8"),
        "--data",
        data_s,
        "--quiet",
    ]);
    let out = wlc(&[
        "predict",
        "--server",
        &server.addr,
        "--config",
        "450,10,16,10",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("DEGRADED"), "{text}");
    assert!(text.contains("linear-baseline"), "{text}");
    server.shutdown();
}

#[test]
fn serve_usage_and_exit_codes() {
    // No flags → usage (exit 2).
    assert_eq!(wlc(&["serve"]).status.code(), Some(2));
    // No model source → usage error (exit 2).
    let out = wlc(&["serve", "--queue", "8"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("something to serve"),
        "{}",
        stderr(&out)
    );
    // A missing model with no baseline cannot serve: model load error.
    let out = wlc(&["serve", "--model", "/nonexistent/model.txt"]);
    assert!(!out.status.success());
}

#[test]
fn full_pipeline_collect_train_predict_cv_surface() {
    let dir = workspace();
    let data = dir.join("data.csv");
    let model = dir.join("model.txt");
    let data_s = data.to_str().expect("utf8 path");
    let model_s = model.to_str().expect("utf8 path");

    // collect
    let out = wlc(&[
        "collect",
        "--samples",
        "12",
        "--out",
        data_s,
        "--duration",
        "4",
        "--warmup",
        "1",
        "--seed",
        "5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(data.exists());
    assert!(stdout(&out).contains("wrote 12 samples"));

    // train
    let out = wlc(&[
        "train", "--data", data_s, "--out", model_s, "--epochs", "800", "--hidden", "8",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(model.exists());
    assert!(stdout(&out).contains("trained [4, 8, 5]"));

    // predict
    let out = wlc(&["predict", "--model", model_s, "--config", "450,10,16,10"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("throughput"));

    // predict with wrong width fails cleanly
    let out = wlc(&["predict", "--model", model_s, "--config", "450,10"]);
    assert!(!out.status.success());

    // cv
    let out = wlc(&[
        "cv", "--data", data_s, "--k", "3", "--epochs", "300", "--hidden", "8",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("Average"));

    // surface
    let out = wlc(&[
        "surface",
        "--model",
        model_s,
        "--base",
        "450,10,16,10",
        "--indicator",
        "4",
        "--steps",
        "5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("classification:"));
    assert!(text.contains("throughput"));

    std::fs::remove_dir_all(&dir).ok();
}
