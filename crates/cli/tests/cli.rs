//! End-to-end tests of the `wlc` binary: every subcommand, driven through
//! a real process, sharing one temp workspace.

use std::path::PathBuf;
use std::process::{Command, Output};

fn wlc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wlc"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn workspace() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wlc-cli-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn help_lists_commands() {
    let out = wlc(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in ["simulate", "collect", "train", "predict", "cv", "surface"] {
        assert!(text.contains(cmd), "missing `{cmd}` in help");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = wlc(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn subcommand_without_flags_prints_usage() {
    let out = wlc(&["simulate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--rate"));
}

#[test]
fn simulate_prints_measurement() {
    let out = wlc(&[
        "simulate",
        "--rate",
        "300",
        "--default",
        "8",
        "--mfg",
        "12",
        "--web",
        "8",
        "--duration",
        "4",
        "--warmup",
        "1",
        "--seed",
        "3",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("manufacturing"));
    assert!(text.contains("throughput"));
    assert!(text.contains("p95"));
}

#[test]
fn simulate_rejects_bad_flags() {
    let out = wlc(&[
        "simulate",
        "--rate",
        "abc",
        "--default",
        "8",
        "--mfg",
        "8",
        "--web",
        "8",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot parse"));
}

#[test]
fn full_pipeline_collect_train_predict_cv_surface() {
    let dir = workspace();
    let data = dir.join("data.csv");
    let model = dir.join("model.txt");
    let data_s = data.to_str().expect("utf8 path");
    let model_s = model.to_str().expect("utf8 path");

    // collect
    let out = wlc(&[
        "collect",
        "--samples",
        "12",
        "--out",
        data_s,
        "--duration",
        "4",
        "--warmup",
        "1",
        "--seed",
        "5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(data.exists());
    assert!(stdout(&out).contains("wrote 12 samples"));

    // train
    let out = wlc(&[
        "train", "--data", data_s, "--out", model_s, "--epochs", "800", "--hidden", "8",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(model.exists());
    assert!(stdout(&out).contains("trained [4, 8, 5]"));

    // predict
    let out = wlc(&["predict", "--model", model_s, "--config", "450,10,16,10"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("throughput"));

    // predict with wrong width fails cleanly
    let out = wlc(&["predict", "--model", model_s, "--config", "450,10"]);
    assert!(!out.status.success());

    // cv
    let out = wlc(&[
        "cv", "--data", data_s, "--k", "3", "--epochs", "300", "--hidden", "8",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("Average"));

    // surface
    let out = wlc(&[
        "surface",
        "--model",
        model_s,
        "--base",
        "450,10,16,10",
        "--indicator",
        "4",
        "--steps",
        "5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("classification:"));
    assert!(text.contains("throughput"));

    std::fs::remove_dir_all(&dir).ok();
}
