//! `wlc train` — train the MLP workload model on a CSV dataset.

use wlc_data::Dataset;
use wlc_model::WorkloadModelBuilder;

use crate::args::Flags;

use super::{usage, CmdResult};

const USAGE: &str = "\
wlc train — train the MLP workload model on a CSV dataset

FLAGS:
    --data <path>       input CSV (from `wlc collect`)     (required)
    --out <path>        output model file                  (required)
    --hidden <list>     hidden widths, e.g. 16,12          [default: 16,12]
    --epochs <usize>    epoch budget                       [default: 6000]
    --lr <f64>          learning rate                      [default: 0.02]
    --threshold <f64>   loose-fit termination threshold    [default: 1e-3]
    --seed <u64>        weight-init / shuffle seed         [default: 1]";

pub fn run(raw: &[String]) -> CmdResult {
    if raw.is_empty() {
        return usage(USAGE);
    }
    let flags = Flags::parse(raw, &[])?;
    let dataset = Dataset::load_csv(flags.required("data")?)?;
    eprintln!("loaded {dataset}");

    let mut builder = WorkloadModelBuilder::new()
        .max_epochs(flags.get_or("epochs", 6000)?)
        .learning_rate(flags.get_or("lr", 0.02)?)
        .optimizer(wlc_nn::OptimizerKind::adam())
        .termination_threshold(flags.get_or("threshold", 1e-3)?)
        .seed(flags.get_or("seed", 1)?);
    if let Some(hidden) = flags.get_list::<usize>("hidden")? {
        builder = builder.no_hidden_layers();
        for w in hidden {
            builder = builder.hidden_layer(w);
        }
    }

    let outcome = builder.train(&dataset)?;
    let out = flags.required("out")?;
    outcome.model.save(out)?;

    let report = outcome.model.evaluate(&dataset)?;
    println!(
        "trained {:?} in {} epochs ({})",
        outcome.model.topology(),
        outcome.report.epochs_run,
        outcome.report.stop_reason
    );
    println!(
        "training-set error per indicator: {}",
        report
            .outputs()
            .iter()
            .map(|o| format!("{} {:.1}%", o.name, o.harmonic_mean_error * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("model written to {out}");
    Ok(())
}
