//! `wlc train` — train the MLP workload model on a CSV dataset.

use wlc_data::{Dataset, ValidateMode, ValidationReport};
use wlc_model::WorkloadModelBuilder;
use wlc_nn::Checkpoint;

use crate::args::Flags;

use super::{usage, CmdResult};

const USAGE: &str = "\
wlc train — train the MLP workload model on a CSV dataset

FLAGS:
    --data <path>       input CSV (from `wlc collect`)     (required)
    --out <path>        output model file                  (required)
    --hidden <list>     hidden widths, e.g. 16,12          [default: 16,12]
    --epochs <usize>    epoch budget                       [default: 6000]
    --lr <f64>          learning rate                      [default: 0.02]
    --threshold <f64>   loose-fit termination threshold    [default: 1e-3]
    --seed <u64>        weight-init / shuffle seed         [default: 1]
    --mode <m>          CSV validation: strict | repair    [default: strict]
    --retries <usize>   divergence-recovery restarts       [default: 0]
    --checkpoint-every <usize>  epochs between checkpoints [default: off]
    --checkpoint <path> checkpoint file          [default: <out>.ckpt]
    --resume <path>     continue from a checkpoint file

Exits 3 when --mode strict rejects the CSV, 4 when training diverges
beyond --retries. A run killed mid-way can be continued with --resume;
with the same flags the result is bit-identical to an uninterrupted run.";

/// Loads the dataset under the requested validation mode, reporting any
/// repaired rows on stderr.
pub(super) fn load_validated(
    flags: &Flags,
    path: &str,
) -> Result<Dataset, Box<dyn std::error::Error>> {
    let mode: ValidateMode = flags.get_or("mode", ValidateMode::Strict)?;
    let (dataset, report) = Dataset::load_csv_validated(path, mode)?;
    describe_validation(&report);
    Ok(dataset)
}

pub(super) fn describe_validation(report: &ValidationReport) {
    if !report.is_clean() {
        eprintln!("repaired input: {report}");
        for issue in &report.issues {
            eprintln!("  dropped {issue}");
        }
    }
}

pub fn run(raw: &[String]) -> CmdResult {
    if raw.is_empty() {
        return usage(USAGE);
    }
    let flags = Flags::parse(raw, &[])?;
    let dataset = load_validated(&flags, flags.required("data")?)?;
    eprintln!("loaded {dataset}");
    let out = flags.required("out")?;

    let mut builder = WorkloadModelBuilder::new()
        .max_epochs(flags.get_or("epochs", 6000)?)
        .learning_rate(flags.get_or("lr", 0.02)?)
        .optimizer(wlc_nn::OptimizerKind::adam())
        .termination_threshold(flags.get_or("threshold", 1e-3)?)
        .seed(flags.get_or("seed", 1)?);
    if let Some(hidden) = flags.get_list::<usize>("hidden")? {
        builder = builder.no_hidden_layers();
        for w in hidden {
            builder = builder.hidden_layer(w);
        }
    }
    let retries: usize = flags.get_or("retries", 0)?;
    if retries > 0 {
        builder = builder.recover(retries);
    }
    let every: usize = flags.get_or("checkpoint-every", 0)?;
    let ckpt_path: String = flags.get_or("checkpoint", format!("{out}.ckpt"))?;
    if every > 0 {
        builder = builder.checkpoint(&ckpt_path, every);
        eprintln!("checkpointing to {ckpt_path} every {every} epochs");
    }

    let outcome = match flags.get_or("resume", String::new())? {
        resume if resume.is_empty() => builder.train(&dataset)?,
        resume => {
            let ck = Checkpoint::load(&resume)?;
            eprintln!(
                "resuming from {resume} (epoch {}, attempt {})",
                ck.epochs_completed(),
                ck.attempt()
            );
            builder.train_resuming(&dataset, &ck)?
        }
    };
    outcome.model.save(out)?;

    let report = outcome.model.evaluate(&dataset)?;
    println!(
        "trained {:?} in {} epochs ({})",
        outcome.model.topology(),
        outcome.report.epochs_run,
        outcome.report.stop_reason
    );
    if outcome.report.recovery_attempts > 0 {
        println!(
            "recovered from divergence after {} restart(s)",
            outcome.report.recovery_attempts
        );
    }
    println!(
        "training-set error per indicator: {}",
        report
            .outputs()
            .iter()
            .map(|o| format!("{} {:.1}%", o.name, o.harmonic_mean_error * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("model written to {out}");
    Ok(())
}
