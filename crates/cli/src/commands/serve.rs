//! `wlc serve` — run the fault-tolerant prediction server.

use std::time::Duration;

use wlc_model::baseline::{LinearFeatures, LinearModel};
use wlc_model::fallback::FallbackModel;
use wlc_model::{PerformanceModel, WorkloadModel};
use wlc_serve::{ServeConfig, ServeError, Server};

use crate::args::Flags;

use super::{usage, CmdResult};

const USAGE: &str = "\
wlc serve — fault-tolerant prediction server (HTTP/1.1 + JSON)

MODEL SOURCES (at least one required):
    --model <path>      MLP model file (from `wlc train`); if it is
                        missing or invalid and a baseline is available,
                        the server starts in degraded mode instead
    --baseline <path>   linear baseline file (wlc-linear v1 format)
    --data <path>       CSV dataset: fit a linear baseline at startup
    --features <kind>   baseline features: first-order | interactions
                        | quadratic                [default: first-order]

SERVER:
    --addr <ip:port>    bind address            [default: 127.0.0.1:0]
    --replicas <n>      serving replicas behind the least-loaded
                        router; each owns its own model slot,
                        breaker, queue and workers      [default: 1]
    --workers <n>       worker threads per replica      [default: 4]
    --queue <n>         per-replica queue capacity; requests are shed
                        with a retriable 503 only when every
                        replica's queue is full         [default: 64]
    --watermark <n>     /readyz not-ready queue depth  [default: queue/2]
    --deadline-ms <n>   default per-request deadline   [default: 2000]
    --breaker-threshold <n>    consecutive primary failures that trip
                               a replica's circuit breaker  [default: 5]
    --breaker-cooldown-ms <n>  cooldown before a half-open probe
                               [default: 5000]
    --reload-drain-ms <n>      rolling reload: max wait for one replica
                               to drain before aborting  [default: 5000]
    --shed-jitter-seed <n>     seed for the jittered Retry-After on shed
                               503 responses          [default: 0x5eed]
    --quiet             suppress per-request log lines on stderr

TEST HOOKS (fault injection, mirroring `wlc train --force-diverge`):
    --slow-ms <n>       artificial per-request service time
    --force-fail <n>    fail the first n primary predictions

ENDPOINTS:
    POST /predict {\"inputs\":[...],\"deadline_ms\":n?}   prediction
    GET  /healthz | /readyz | /stats                   probes (per-replica)
    POST /reload {\"path\":\"model.txt\"}                 rolling hot swap,
                                                       one replica at a time
    POST /replica {\"replica\":n,\"action\":\"kill\"}       admin/test hook
    POST /shutdown                                     graceful drain

Prints `listening on <addr>` on stdout once ready. Exits 0 after a
graceful shutdown, 5 on server errors.";

/// Assembles the serving bundle from `--model` / `--baseline` / `--data`.
fn build_bundle(flags: &Flags) -> Result<FallbackModel, Box<dyn std::error::Error>> {
    let model_path: String = flags.get_or("model", String::new())?;
    let baseline_path: String = flags.get_or("baseline", String::new())?;
    let data_path: String = flags.get_or("data", String::new())?;

    let mut names: Option<(Vec<String>, Vec<String>)> = None;
    let baseline = if !baseline_path.is_empty() {
        Some(LinearModel::load(&baseline_path)?)
    } else if !data_path.is_empty() {
        let features = match flags
            .get_or("features", "first-order".to_string())?
            .as_str()
        {
            "first-order" => LinearFeatures::FirstOrder,
            "interactions" => LinearFeatures::Interactions,
            "quadratic" => LinearFeatures::Quadratic,
            other => return Err(format!("unknown --features `{other}`").into()),
        };
        let dataset = super::train::load_validated(flags, &data_path)?;
        names = Some((
            dataset.input_names().to_vec(),
            dataset.output_names().to_vec(),
        ));
        eprintln!("fitted linear baseline on {dataset}");
        Some(LinearModel::fit(&dataset, features)?)
    } else {
        None
    };

    let primary = if model_path.is_empty() {
        None
    } else {
        let loaded = WorkloadModel::load(&model_path).and_then(|m| {
            let expected = baseline.as_ref().map(|b| (b.inputs(), b.outputs()));
            m.validate(expected)?;
            Ok(m)
        });
        match loaded {
            Ok(model) => Some(model),
            // An unusable MLP degrades to the baseline when one exists;
            // without one there is nothing to serve, so fail loudly.
            Err(err) if baseline.is_some() => {
                eprintln!(
                    "warning: primary model `{model_path}` unusable ({err}); \
                     serving the linear baseline in degraded mode"
                );
                None
            }
            Err(err) => return Err(Box::new(err)),
        }
    };

    let (input_names, output_names) = names.unwrap_or_default();
    FallbackModel::new(primary, baseline, input_names, output_names).map_err(|_| {
        Box::from(ServeError::InvalidParameter {
            name: "model",
            reason: "need --model, --baseline or --data to have something to serve",
        })
    })
}

pub fn run(raw: &[String]) -> CmdResult {
    if raw.is_empty() {
        return usage(USAGE);
    }
    let flags = Flags::parse(raw, &["quiet"])?;
    let bundle = build_bundle(&flags)?;

    let config = ServeConfig {
        replicas: flags.get_or("replicas", 1usize)?,
        workers: flags.get_or("workers", 4usize)?,
        queue_capacity: flags.get_or("queue", 64usize)?,
        ready_watermark: flags.get_or("watermark", 0usize)?,
        default_deadline: Duration::from_millis(flags.get_or("deadline-ms", 2000u64)?),
        breaker_threshold: flags.get_or("breaker-threshold", 5u32)?,
        breaker_cooldown: Duration::from_millis(flags.get_or("breaker-cooldown-ms", 5000u64)?),
        reload_drain_timeout: Duration::from_millis(flags.get_or("reload-drain-ms", 5000u64)?),
        slow_per_request: Duration::from_millis(flags.get_or("slow-ms", 0u64)?),
        force_fail: flags.get_or("force-fail", 0u64)?,
        shed_jitter_seed: flags.get_or("shed-jitter-seed", 0x5eedu64)?,
        fs: wlc_fault::real_fs(),
        log: !flags.switch("quiet"),
    };
    let addr: String = flags.get_or("addr", "127.0.0.1:0".to_string())?;

    let server = Server::bind(&addr, bundle, config)?;
    // Machine-parseable startup line (CI and scripts read the port).
    println!("listening on {}", server.local_addr());
    let stats = server.run()?;
    println!(
        "server drained: handled={} shed={} degraded={} deadline_missed={}",
        stats.handled, stats.shed, stats.degraded, stats.deadline_missed
    );
    Ok(())
}
