//! Subcommand implementations.

pub mod bench;
pub mod collect;
pub mod cv;
pub mod learn;
pub mod predict;
pub mod serve;
pub mod simulate;
pub mod surface;
pub mod train;

use std::error::Error;

/// Shared result alias for subcommands.
pub type CmdResult = Result<(), Box<dyn Error>>;

/// Prints a usage block and returns an error asking the user to retry.
pub fn usage(text: &str) -> CmdResult {
    eprintln!("{text}");
    Err(Box::new(crate::args::ArgError(
        "missing required flags (usage above)".into(),
    )))
}
