//! `wlc predict` — predict indicators for a configuration, either with
//! a saved model file or against a running `wlc serve` instance.

use wlc_model::{PerformanceModel, WorkloadModel};
use wlc_serve::{ClientConfig, Json, ServeClient};

use crate::args::Flags;

use super::{usage, CmdResult};

const USAGE: &str = "\
wlc predict — predict performance indicators with a saved model

LOCAL MODE:
    --model <path>     model file (from `wlc train`)               (required)
    --config <list>    configuration values, e.g. 560,10,16,12     (required)

SERVER MODE (against a running `wlc serve`):
    --server <ip:port>  server address (replaces --model)
    --config <list>     configuration values
    --deadline-ms <n>   per-request deadline
    --retries <n>       max attempts; retriable failures (503 shed,
                        504 deadline, connect errors) back off
                        exponentially with jitter      [default: 5]
    --status            print health/readiness/stats and exit
    --reload <path>     rolling hot reload of the server's model file
                        (drains and swaps one replica at a time), exit
    --kill-replica <n>  take replica n out of rotation and exit
    --revive-replica <n>  bring a killed replica back and exit
    --shutdown          gracefully stop the server and exit

Exits 3 when the server rejects the request as invalid (400), 5 on
server/transport errors.";

fn client_for(flags: &Flags, addr: &str) -> Result<ServeClient, Box<dyn std::error::Error>> {
    let config = ClientConfig {
        max_attempts: flags.get_or("retries", 5usize)?,
        ..ClientConfig::default()
    };
    Ok(ServeClient::new(addr, config))
}

fn print_json_fields(label: &str, json: &Json) {
    match json {
        Json::Obj(map) => {
            println!("{label}:");
            for (key, value) in map {
                println!("  {key:<24} {value}");
            }
        }
        other => println!("{label}: {other}"),
    }
}

fn server_mode(flags: &Flags, addr: &str) -> CmdResult {
    let client = client_for(flags, addr)?;
    if flags.switch("status") {
        print_json_fields("health", &client.healthz()?);
        match client.readyz() {
            Ok(json) => print_json_fields("readiness", &json),
            Err(err) if !err.is_retriable() => return Err(Box::new(err)),
            // A 503 from /readyz is an answer, not a failure.
            Err(_) => println!("readiness:\n  ready                    false"),
        }
        print_json_fields("stats", &client.stats()?);
        return Ok(());
    }
    let reload: String = flags.get_or("reload", String::new())?;
    if !reload.is_empty() {
        let outcome = client.reload_detailed(&reload)?;
        println!("reloaded: generation {}", outcome.generation);
        for (id, generation) in outcome.generations.iter().enumerate() {
            println!("  replica {id:<16} generation {generation}");
        }
        return Ok(());
    }
    let kill: String = flags.get_or("kill-replica", String::new())?;
    if !kill.is_empty() {
        let id: usize = kill.parse()?;
        client.kill_replica(id)?;
        println!("replica {id} killed");
        return Ok(());
    }
    let revive: String = flags.get_or("revive-replica", String::new())?;
    if !revive.is_empty() {
        let id: usize = revive.parse()?;
        client.revive_replica(id)?;
        println!("replica {id} revived");
        return Ok(());
    }
    if flags.switch("shutdown") {
        client.shutdown()?;
        println!("server shutting down");
        return Ok(());
    }

    let config = flags
        .get_list::<f64>("config")?
        .ok_or("missing required flag `--config`")?;
    let deadline = match flags.get_or("deadline-ms", 0u64)? {
        0 => None,
        ms => Some(ms),
    };
    let prediction = client.predict_with_deadline(&config, deadline)?;
    println!(
        "predicted indicators (model: {}, generation {}{}):",
        prediction.model,
        prediction.generation,
        if prediction.degraded {
            ", DEGRADED"
        } else {
            ""
        }
    );
    for (i, v) in prediction.outputs.iter().enumerate() {
        let name = prediction
            .output_names
            .get(i)
            .map(String::as_str)
            .unwrap_or("output");
        println!("  {name:<24} {v:.6}");
    }
    Ok(())
}

pub fn run(raw: &[String]) -> CmdResult {
    if raw.is_empty() {
        return usage(USAGE);
    }
    let flags = Flags::parse(raw, &["status", "shutdown"])?;
    let server: String = flags.get_or("server", String::new())?;
    if !server.is_empty() {
        return server_mode(&flags, &server);
    }
    let model = WorkloadModel::load(flags.required("model")?)?;
    let config = flags
        .get_list::<f64>("config")?
        .ok_or("missing required flag `--config`")?;

    let prediction = model.predict(&config)?;
    println!("configuration:");
    for (name, v) in model.input_names().iter().zip(&config) {
        println!("  {name:<24} {v}");
    }
    println!("predicted indicators:");
    for (name, v) in model.output_names().iter().zip(&prediction) {
        println!("  {name:<24} {v:.6}");
    }
    Ok(())
}
