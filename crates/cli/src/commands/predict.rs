//! `wlc predict` — predict indicators for a configuration with a saved
//! model.

use wlc_model::{PerformanceModel, WorkloadModel};

use crate::args::Flags;

use super::{usage, CmdResult};

const USAGE: &str = "\
wlc predict — predict performance indicators with a saved model

FLAGS:
    --model <path>     model file (from `wlc train`)               (required)
    --config <list>    configuration values, e.g. 560,10,16,12     (required)";

pub fn run(raw: &[String]) -> CmdResult {
    if raw.is_empty() {
        return usage(USAGE);
    }
    let flags = Flags::parse(raw, &[])?;
    let model = WorkloadModel::load(flags.required("model")?)?;
    let config = flags
        .get_list::<f64>("config")?
        .ok_or("missing required flag `--config`")?;

    let prediction = model.predict(&config)?;
    println!("configuration:");
    for (name, v) in model.input_names().iter().zip(&config) {
        println!("  {name:<24} {v}");
    }
    println!("predicted indicators:");
    for (name, v) in model.output_names().iter().zip(&prediction) {
        println!("  {name:<24} {v:.6}");
    }
    Ok(())
}
