//! `wlc bench` — tracked performance baseline for the train/predict hot
//! path.
//!
//! Three benchmarks, all single-threaded:
//!
//! - **train-epoch** — one full epoch (minibatch gradients + optimizer
//!   steps + full-set evaluation) through (a) a faithful port of the
//!   pre-workspace allocating per-sample path (the committed baseline)
//!   and (b) the allocation-free GEMM/workspace path the trainer uses
//!   now.
//! - **forward-batch** — batched inference via the warm workspace vs the
//!   allocating per-row forward of the baseline implementation.
//! - **serve-predict** — end-to-end `/predict` and `/predict_batch`
//!   throughput against a live loopback server.
//!
//! Each metric reports the median with p10/p90 over `--repeats` repeats
//! and is written to a JSON report (default `BENCH_nn.json`).
//!
//! Raw throughput depends on the machine, so the regression gate
//! (`--check <committed.json>`) compares *in-run speedup ratios*
//! (batched vs baseline measured in the same process) against the
//! committed ratios: the run fails if the train-epoch speedup drops
//! below 3x, or if either speedup regresses more than 25% relative to
//! the committed report.

use std::time::Instant;

use wlc_data::{Dataset, Sample};
use wlc_math::rng::Xoshiro256;
use wlc_math::Matrix;
use wlc_model::fallback::FallbackModel;
use wlc_model::WorkloadModelBuilder;
use wlc_nn::{Activation, Loss, Mlp, MlpBuilder, NnError, Workspace};
use wlc_serve::{ClientConfig, Json, ServeClient, ServeConfig, Server};

use crate::args::Flags;

use super::{usage, CmdResult};

const USAGE: &str = "\
wlc bench — time the train/predict hot path and track a baseline

FLAGS:
    --quick             fewer repeats (CI mode)
    --out <path>        report file [default: BENCH_nn.json,
                        or BENCH_nn.new.json with --check]
    --check <path>      verify speedups against a committed report;
                        exits non-zero on >25% ratio regression or a
                        train-epoch speedup below 3x
    --repeats <usize>   timing repeats per metric    [default: 30 / 7 quick]
    --samples <usize>   training rows                [default: 1024 / 512 quick]
    --batch <usize>     minibatch size               [default: 256]
    --inputs <usize>    input width                  [default: 4]
    --hidden <list>     hidden widths                [default: 16,12]
    --outputs <usize>   output width                 [default: 5]
    --activation <act>  hidden activation            [default: relu]
    --no-serve          skip the loopback serving benchmark

The default hidden activation is `relu` so the timed work is the
linear-algebra/allocation hot path rather than `exp` calls, whose cost
is identical in both arms and would only dilute the measured ratio.
Pass --activation 'logistic(1)' to time the paper's configuration.

The baseline arm is a faithful port of the pre-workspace per-sample
implementation (allocating forward trace + per-sample accumulation), so
the reported speedup measures exactly what the workspace/GEMM refactor
bought on this machine.";

/// Faithful port of the pre-workspace (allocating, per-sample) training
/// path — the committed baseline the speedup is measured against. Kept
/// byte-for-byte equivalent in *work performed*: every `Vec` the old
/// implementation allocated per sample is allocated here too.
mod legacy {
    use super::{Loss, Matrix, Mlp, NnError};

    pub fn forward(mlp: &Mlp, input: &[f64]) -> Result<Vec<f64>, NnError> {
        let mut current = input.to_vec();
        for layer in mlp.layers() {
            current = layer.forward(&current)?;
        }
        Ok(current)
    }

    #[allow(clippy::type_complexity)]
    fn forward_trace(mlp: &Mlp, input: &[f64]) -> Result<(Vec<Vec<f64>>, Vec<Vec<f64>>), NnError> {
        let mut pre = Vec::with_capacity(mlp.layers().len());
        let mut acts = Vec::with_capacity(mlp.layers().len() + 1);
        acts.push(input.to_vec());
        for layer in mlp.layers() {
            let z = layer.pre_activation(acts.last().expect("non-empty"))?;
            let mut a = z.clone();
            layer.activation().apply_slice(&mut a);
            pre.push(z);
            acts.push(a);
        }
        Ok((pre, acts))
    }

    fn accumulate_sample_gradient(
        mlp: &Mlp,
        input: &[f64],
        target: &[f64],
        loss: Loss,
        grad: &mut [f64],
    ) -> Result<f64, NnError> {
        let layers = mlp.layers();
        let (pre, acts) = forward_trace(mlp, input)?;
        let prediction = acts.last().expect("non-empty");
        let loss_value = loss.value(prediction, target)?;

        let dl_da = loss.gradient(prediction, target)?;
        let last = layers.len() - 1;
        let mut delta: Vec<f64> = dl_da
            .iter()
            .zip(pre[last].iter().zip(acts[last + 1].iter()))
            .map(|(&g, (&z, &a))| g * layers[last].activation().derivative(z, a))
            .collect();

        let mut offsets = Vec::with_capacity(layers.len());
        let mut off = 0;
        for layer in layers {
            offsets.push(off);
            off += layer.param_count();
        }

        for l in (0..layers.len()).rev() {
            let layer = &layers[l];
            let a_prev = &acts[l];
            let base = offsets[l];
            let in_w = layer.inputs();
            for (i, &d) in delta.iter().enumerate() {
                let row_base = base + i * in_w;
                for (j, &ap) in a_prev.iter().enumerate() {
                    grad[row_base + j] += d * ap;
                }
            }
            let bias_base = base + layer.outputs() * in_w;
            for (i, &d) in delta.iter().enumerate() {
                grad[bias_base + i] += d;
            }

            if l > 0 {
                let prev_layer = &layers[l - 1];
                let mut next_delta = vec![0.0; layer.inputs()];
                for (i, &d) in delta.iter().enumerate() {
                    let row = layer.weights().row(i);
                    for (j, &w) in row.iter().enumerate() {
                        next_delta[j] += w * d;
                    }
                }
                for (j, nd) in next_delta.iter_mut().enumerate() {
                    let z = pre[l - 1][j];
                    let a = acts[l][j];
                    *nd *= prev_layer.activation().derivative(z, a);
                }
                delta = next_delta;
            }
        }
        Ok(loss_value)
    }

    pub fn batch_gradient(
        mlp: &Mlp,
        inputs: &Matrix,
        targets: &Matrix,
        loss: Loss,
    ) -> Result<(f64, Vec<f64>), NnError> {
        let mut grad = vec![0.0; mlp.param_count()];
        let mut total_loss = 0.0;
        for r in 0..inputs.rows() {
            total_loss +=
                accumulate_sample_gradient(mlp, inputs.row(r), targets.row(r), loss, &mut grad)?;
        }
        let scale = 1.0 / inputs.rows() as f64;
        for g in &mut grad {
            *g *= scale;
        }
        Ok((total_loss * scale, grad))
    }

    pub fn evaluate_loss(mlp: &Mlp, xs: &Matrix, ys: &Matrix, loss: Loss) -> Result<f64, NnError> {
        let mut total = 0.0;
        for r in 0..xs.rows() {
            let pred = forward(mlp, xs.row(r))?;
            total += loss.value(&pred, ys.row(r))?;
        }
        Ok(total / xs.rows() as f64)
    }
}

/// Median and tail percentiles over timing repeats.
#[derive(Debug, Clone, Copy)]
struct Summary {
    median: f64,
    p10: f64,
    p90: f64,
}

impl Summary {
    fn of(mut samples: Vec<f64>) -> Summary {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing samples"));
        let pick = |q: f64| {
            let idx = ((samples.len() - 1) as f64 * q).round() as usize;
            samples[idx.min(samples.len() - 1)]
        };
        Summary {
            median: pick(0.5),
            p10: pick(0.1),
            p90: pick(0.9),
        }
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("median", Json::Num(self.median)),
            ("p10", Json::Num(self.p10)),
            ("p90", Json::Num(self.p90)),
        ])
    }
}

/// Times `work` `repeats` times; returns per-repeat throughput in
/// `units / second` where each call to `work` performs `units` of work.
fn throughput<F: FnMut()>(repeats: usize, units: f64, mut work: F) -> Vec<f64> {
    let mut samples = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let start = Instant::now();
        work();
        samples.push(units / start.elapsed().as_secs_f64().max(1e-12));
    }
    samples
}

/// Times two arms interleaved (`base, fast, base, fast, ...`) and
/// returns `(base_summary, fast_summary, speedup)` where the speedup is
/// the median of the per-repeat `fast/base` ratios. Interleaving means
/// machine-wide drift (frequency scaling, noisy neighbours) hits both
/// arms alike instead of biasing whichever arm happened to run during
/// the slow minutes, and pairing the ratios cancels what drift remains.
fn throughput_pair<B: FnMut(), F: FnMut()>(
    repeats: usize,
    units: f64,
    mut base: B,
    mut fast: F,
) -> (Summary, Summary, f64) {
    let mut base_samples = Vec::with_capacity(repeats);
    let mut fast_samples = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let start = Instant::now();
        base();
        base_samples.push(units / start.elapsed().as_secs_f64().max(1e-12));
        let start = Instant::now();
        fast();
        fast_samples.push(units / start.elapsed().as_secs_f64().max(1e-12));
    }
    let ratios: Vec<f64> = fast_samples
        .iter()
        .zip(&base_samples)
        .map(|(f, b)| f / b)
        .collect();
    let speedup = Summary::of(ratios).median;
    (
        Summary::of(base_samples),
        Summary::of(fast_samples),
        speedup,
    )
}

struct BenchSetup {
    xs: Matrix,
    ys: Matrix,
    mlp: Mlp,
    batch: usize,
    lr: f64,
}

fn synthetic(inputs: usize, outputs: usize, samples: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = Xoshiro256::seed_from(seed);
    let mut xs = Matrix::zeros(samples, inputs);
    let mut ys = Matrix::zeros(samples, outputs);
    for r in 0..samples {
        for v in xs.row_mut(r) {
            *v = rng.next_f64() * 2.0 - 1.0;
        }
        let row = xs.row(r).to_vec();
        for (c, v) in ys.row_mut(r).iter_mut().enumerate() {
            let a = row[c % row.len()];
            let b = row[(c + 1) % row.len()];
            *v = (a * b + 0.5 * a * a - b).tanh();
        }
    }
    (xs, ys)
}

fn legacy_epoch(setup: &BenchSetup, mlp: &mut Mlp, params: &mut [f64]) -> f64 {
    let n = setup.xs.rows();
    let indices: Vec<usize> = (0..n).collect();
    for chunk in indices.chunks(setup.batch) {
        mlp.set_params_flat(params).expect("param width");
        let mut bx = Matrix::zeros(chunk.len(), setup.xs.cols());
        let mut by = Matrix::zeros(chunk.len(), setup.ys.cols());
        for (out_r, &r) in chunk.iter().enumerate() {
            bx.row_mut(out_r).copy_from_slice(setup.xs.row(r));
            by.row_mut(out_r).copy_from_slice(setup.ys.row(r));
        }
        let (_, grads) = legacy::batch_gradient(mlp, &bx, &by, Loss::MeanSquared).expect("shapes");
        for (p, g) in params.iter_mut().zip(&grads) {
            *p -= setup.lr * g;
        }
    }
    mlp.set_params_flat(params).expect("param width");
    legacy::evaluate_loss(mlp, &setup.xs, &setup.ys, Loss::MeanSquared).expect("shapes")
}

struct BatchedScratch {
    ws: Workspace,
    bx: Matrix,
    by: Matrix,
}

fn batched_epoch(
    setup: &BenchSetup,
    mlp: &mut Mlp,
    params: &mut [f64],
    scratch: &mut BatchedScratch,
) -> f64 {
    let n = setup.xs.rows();
    let indices: Vec<usize> = (0..n).collect();
    for chunk in indices.chunks(setup.batch) {
        mlp.set_params_flat(params).expect("param width");
        scratch.bx.resize_rows(chunk.len());
        scratch.by.resize_rows(chunk.len());
        for (out_r, &r) in chunk.iter().enumerate() {
            scratch.bx.row_mut(out_r).copy_from_slice(setup.xs.row(r));
            scratch.by.row_mut(out_r).copy_from_slice(setup.ys.row(r));
        }
        mlp.batch_gradient_with(&scratch.bx, &scratch.by, Loss::MeanSquared, &mut scratch.ws)
            .expect("shapes");
        for (p, g) in params.iter_mut().zip(scratch.ws.grad()) {
            *p -= setup.lr * g;
        }
    }
    mlp.set_params_flat(params).expect("param width");
    mlp.batch_loss_with(&setup.xs, &setup.ys, Loss::MeanSquared, &mut scratch.ws)
        .expect("shapes")
}

fn bench_train_epoch(setup: &BenchSetup, repeats: usize) -> (Summary, Summary, f64) {
    // Each arm trains its own clone from the same weights; per-epoch work
    // is shape-dependent only, so drifting parameters do not skew timing.
    let mut legacy_mlp = setup.mlp.clone();
    let mut legacy_params = legacy_mlp.params_flat();

    let mut fast_mlp = setup.mlp.clone();
    let mut fast_params = fast_mlp.params_flat();
    let mut scratch = BatchedScratch {
        ws: Workspace::for_mlp(&fast_mlp),
        bx: Matrix::zeros(0, setup.xs.cols()),
        by: Matrix::zeros(0, setup.ys.cols()),
    };
    // Warm the workspace so the timed region is the steady state.
    batched_epoch(setup, &mut fast_mlp, &mut fast_params.clone(), &mut scratch);

    throughput_pair(
        repeats,
        1.0,
        || {
            legacy_epoch(setup, &mut legacy_mlp, &mut legacy_params);
        },
        || {
            batched_epoch(setup, &mut fast_mlp, &mut fast_params, &mut scratch);
        },
    )
}

fn bench_forward_batch(setup: &BenchSetup, repeats: usize) -> (Summary, Summary, f64) {
    let rows = setup.xs.rows() as f64;
    let mut ws = Workspace::for_mlp(&setup.mlp);
    setup
        .mlp
        .forward_batch_with(&setup.xs, &mut ws)
        .expect("widths");

    throughput_pair(
        repeats,
        rows,
        || {
            for r in 0..setup.xs.rows() {
                let y = legacy::forward(&setup.mlp, setup.xs.row(r)).expect("widths");
                std::hint::black_box(&y);
            }
        },
        || {
            let out = setup
                .mlp
                .forward_batch_with(&setup.xs, &mut ws)
                .expect("widths");
            std::hint::black_box(out);
        },
    )
}

fn bench_serve(
    inputs: usize,
    outputs: usize,
    repeats: usize,
) -> Result<(Summary, Summary), Box<dyn std::error::Error>> {
    let mut ds = Dataset::new(
        (0..inputs).map(|i| format!("x{i}")).collect(),
        (0..outputs).map(|i| format!("y{i}")).collect(),
    )?;
    let (xs, ys) = synthetic(inputs, outputs, 64, 11);
    for r in 0..xs.rows() {
        ds.push(Sample::new(xs.row(r).to_vec(), ys.row(r).to_vec()))?;
    }
    let model = WorkloadModelBuilder::new()
        .max_epochs(60)
        .seed(7)
        .train(&ds)?
        .model;
    let bundle = FallbackModel::new(Some(model), None, vec![], vec![])?;
    let server = Server::bind(
        "127.0.0.1:0",
        bundle,
        ServeConfig {
            workers: 1, // single-threaded serving for a stable baseline
            ..ServeConfig::default()
        },
    )?;
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    let client = ServeClient::new(addr, ClientConfig::default());

    let batch_rows: Vec<Vec<f64>> = (0..64).map(|r| xs.row(r % xs.rows()).to_vec()).collect();
    client.predict_batch(&batch_rows)?; // warm up (worker scratch + TCP stack)
    let batch_tp = Summary::of(throughput(repeats, batch_rows.len() as f64, || {
        client.predict_batch(&batch_rows).expect("serving");
    }));
    let single_tp = Summary::of(throughput(repeats, batch_rows.len() as f64, || {
        for row in &batch_rows {
            client.predict(row).expect("serving");
        }
    }));

    client.shutdown()?;
    handle.join().expect("server thread")?;
    Ok((batch_tp, single_tp))
}

fn speedup_from(report: &Json, section: &str) -> Option<f64> {
    report.get(section)?.get("speedup")?.as_f64()
}

pub fn run(raw: &[String]) -> CmdResult {
    if raw.first().map(String::as_str) == Some("--help") {
        return usage(USAGE);
    }
    let flags = Flags::parse(raw, &["quick", "no-serve"])?;
    let quick = flags.switch("quick");
    let repeats: usize = flags.get_or("repeats", if quick { 7 } else { 30 })?;
    let samples: usize = flags.get_or("samples", if quick { 512 } else { 1024 })?;
    let batch: usize = flags.get_or("batch", 256)?;
    let inputs: usize = flags.get_or("inputs", 4)?;
    let outputs: usize = flags.get_or("outputs", 5)?;
    let hidden = flags
        .get_list::<usize>("hidden")?
        .unwrap_or_else(|| vec![16, 12]);
    let activation: Activation = flags.get_or("activation", Activation::relu())?;
    let check: Option<String> =
        flags
            .get_or("check", String::new())
            .map(|s| if s.is_empty() { None } else { Some(s) })?;
    let default_out = if check.is_some() {
        "BENCH_nn.new.json"
    } else {
        "BENCH_nn.json"
    };
    let out: String = flags.get_or("out", default_out.to_string())?;
    if repeats == 0 || samples == 0 || batch == 0 {
        return Err(Box::new(crate::args::ArgError(
            "--repeats, --samples and --batch must be positive".into(),
        )));
    }

    let (xs, ys) = synthetic(inputs, outputs, samples, 42);
    let mut builder = MlpBuilder::new(inputs).seed(9);
    for w in &hidden {
        builder = builder.hidden(*w, activation);
    }
    let mlp = builder.output(outputs, Activation::identity()).build()?;
    let setup = BenchSetup {
        xs,
        ys,
        mlp,
        batch,
        lr: 0.01,
    };

    eprintln!(
        "benchmarking topology {:?}, {samples} samples, batch {batch}, {repeats} repeats{}",
        setup.mlp.topology(),
        if quick { " (quick)" } else { "" }
    );

    // Parse the committed reference up front so a bad path fails before
    // any timing work.
    let committed = match &check {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            Some(
                Json::parse(&text)
                    .map_err(|reason| crate::args::ArgError(format!("bad {path}: {reason}")))?,
            )
        }
        None => None,
    };

    // Under --check, a shared machine's load spikes can sink one
    // measurement below the gate even though the code is fine, so a
    // failing attempt is re-measured (up to three attempts) before the
    // gate reports a regression.
    let attempts = if committed.is_some() { 3 } else { 1 };
    let mut measured = None;
    let mut failures = Vec::new();
    for attempt in 1..=attempts {
        let (train_base, train_fast, train_speedup) = bench_train_epoch(&setup, repeats);
        println!(
            "train-epoch : baseline {:>8.2} epochs/s | batched {:>8.2} epochs/s | speedup {:.2}x",
            train_base.median, train_fast.median, train_speedup
        );
        let (fwd_base, fwd_fast, fwd_speedup) = bench_forward_batch(&setup, repeats);
        println!(
            "forward     : baseline {:>8.0} rows/s   | batched {:>8.0} rows/s   | speedup {:.2}x",
            fwd_base.median, fwd_fast.median, fwd_speedup
        );
        measured = Some((
            train_base,
            train_fast,
            train_speedup,
            fwd_base,
            fwd_fast,
            fwd_speedup,
        ));

        failures.clear();
        if let Some(committed) = &committed {
            if train_speedup < 3.0 {
                failures.push(format!(
                    "train-epoch speedup {train_speedup:.2}x is below the required 3x"
                ));
            }
            for (section, current) in [
                ("train_epoch", train_speedup),
                ("forward_batch", fwd_speedup),
            ] {
                if let Some(reference) = speedup_from(committed, section) {
                    let floor = 0.75 * reference;
                    if current < floor {
                        failures.push(format!(
                            "{section} speedup {current:.2}x regressed >25% vs committed \
                             {reference:.2}x (floor {floor:.2}x)"
                        ));
                    }
                }
            }
        }
        if failures.is_empty() {
            break;
        }
        if attempt < attempts {
            eprintln!(
                "speedup below the gate ({}); re-measuring (attempt {}/{attempts})",
                failures.join("; "),
                attempt + 1
            );
        }
    }
    let (train_base, train_fast, train_speedup, fwd_base, fwd_fast, fwd_speedup) =
        measured.expect("at least one attempt");

    let serve = if flags.switch("no-serve") {
        None
    } else {
        let serve_repeats = if quick { 5 } else { repeats.min(15) };
        let (batch_tp, single_tp) = bench_serve(inputs, outputs, serve_repeats)?;
        println!(
            "serve       : /predict_batch {:>8.0} rows/s | /predict {:>8.0} rows/s",
            batch_tp.median, single_tp.median
        );
        Some((batch_tp, single_tp))
    };

    let mut report = vec![
        ("schema", Json::Num(1.0)),
        (
            "config",
            Json::obj([
                ("inputs", Json::Num(inputs as f64)),
                (
                    "hidden",
                    Json::nums(&hidden.iter().map(|&w| w as f64).collect::<Vec<_>>()),
                ),
                ("outputs", Json::Num(outputs as f64)),
                ("samples", Json::Num(samples as f64)),
                ("batch", Json::Num(batch as f64)),
                ("repeats", Json::Num(repeats as f64)),
                ("activation", Json::Str(activation.to_string())),
                ("quick", Json::Bool(quick)),
            ]),
        ),
        (
            "train_epoch",
            Json::obj([
                ("baseline_epochs_per_s", train_base.to_json()),
                ("batched_epochs_per_s", train_fast.to_json()),
                ("speedup", Json::Num(train_speedup)),
            ]),
        ),
        (
            "forward_batch",
            Json::obj([
                ("baseline_rows_per_s", fwd_base.to_json()),
                ("batched_rows_per_s", fwd_fast.to_json()),
                ("speedup", Json::Num(fwd_speedup)),
            ]),
        ),
    ];
    if let Some((batch_tp, single_tp)) = serve {
        report.push((
            "serve",
            Json::obj([
                ("predict_batch_rows_per_s", batch_tp.to_json()),
                ("predict_rows_per_s", single_tp.to_json()),
            ]),
        ));
    }
    let report = Json::Obj(
        report
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    // wlc-lint: allow(durable-write, reason = "bench report is a throwaway measurement artifact, not recovered state")
    std::fs::write(&out, format!("{report}\n"))?;
    eprintln!("report written to {out}");

    if let Some(committed) = &committed {
        if !failures.is_empty() {
            return Err(failures.join("; ").into());
        }
        for (section, current) in [
            ("train_epoch", train_speedup),
            ("forward_batch", fwd_speedup),
        ] {
            if let Some(reference) = speedup_from(committed, section) {
                println!("check {section}: {current:.2}x vs committed {reference:.2}x — ok");
            }
        }
        println!("bench check passed");
    }
    Ok(())
}
