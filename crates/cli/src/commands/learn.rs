//! `wlc learn` — run the continuous-learning supervisor.

use std::path::PathBuf;

use wlc_learn::{LearnConfig, Supervisor};
use wlc_sim::{DriftProfile, FaultProfile};

use crate::args::Flags;

use super::{usage, CmdResult};

const USAGE: &str = "\
wlc learn — continuous-learning supervisor: stream, retrain, shadow,
promote (with watchdog-guarded rollback)

STATE:
    --state-dir <path>  durable state directory         (required)
    --seed <u64>        root seed for every draw        [default: 0]
    --rounds <u64>      rounds to run or resume to      [default: 3]

STREAM:
    --window <n>        stream ticks ingested per round [default: 6]
    --buffer-cap <n>    rolling sample-buffer capacity  [default: 48]
    --bootstrap-ticks <n>  bootstrap/reference window   [default: 10]
    --drift-profile <spec>  workload drift, e.g.
                  kind=ramp,rate=0.02 | kind=rotate,period=5
                  | kind=switch,at=12            [default: steady]
    --fault-profile <spec>  measurement faults (same spec as
                  `wlc collect --fault-profile`) [default: none]
    --duration <f64>    simulated seconds per tick      [default: 3]
    --warmup <f64>      warmup seconds per tick         [default: 0.5]
    --retries <usize>   retries before a tick is quarantined [default: 2]
    --jobs <usize>      stream workers (never changes output)
                                           [default: available cores]

RETRAIN + SHADOW:
    --epochs <n>        retraining epochs per round     [default: 400]
    --checkpoint-every <n>  checkpoint interval (0 = epochs/4) [default: 0]
    --hidden <list>     hidden-layer widths, e.g. 8,4   [default: 8]
    --learning-rate <f64>                               [default: 0.05]
    --batch-size <n>                                    [default: 16]
    --holdout <n>       recent samples held out for shadow scoring
                                                        [default: 4]
    --margin <f64>      candidate must beat live by this fraction on
                        the recent holdout              [default: 0]
    --tolerance <f64>   allowed regression vs live on the reference
                        window                          [default: 0.25]

PROMOTE + PROBATION:
    --probes <n>        probation probes after a promotion [default: 6]
    --watchdog <f64>    roll back when the probe degraded/error rate
                        exceeds this fraction           [default: 0.5]
    --replicas <n>      in-process serving replicas     [default: 2]
    --workers <n>       worker threads per replica      [default: 2]
    --queue <n>         per-replica queue capacity      [default: 16]
    --quiet             suppress live event lines on stdout

CHAOS HOOKS (test/CI fault injection, mirroring --force-fail):
    --chaos-kill-round <r>     die mid-retrain in round r, right after
                               the first checkpoint; rerun to resume
    --chaos-corrupt-round <r>  corrupt round r's candidate artifact so
                               the fleet must reject it
    --force-bad-round <r>      force round r's probation probes to fail,
                               driving a watchdog rollback

The supervisor is resumable: rerunning with the same --state-dir picks
up after the last committed round and reproduces the exact bytes an
uninterrupted run would have written (state, models, events.log).
Exits 0 on success, 1 on failure (including a chaos kill), 2 on bad
usage, 3 when a profile or config value fails validation, 4 when
retraining diverges, 5 on serving errors.";

pub fn run(raw: &[String]) -> CmdResult {
    if raw.is_empty() {
        return usage(USAGE);
    }
    let flags = Flags::parse(raw, &["quiet"])?;
    let state_dir: PathBuf = PathBuf::from(flags.required("state-dir")?);

    // Parsed by hand (not `get_or`) so a bad spec surfaces the typed
    // `SimError` and its validation exit code.
    let drift: DriftProfile = flags
        .get_or("drift-profile", String::new())?
        .parse::<DriftProfile>()?;
    let faults: FaultProfile = flags
        .get_or("fault-profile", String::new())?
        .parse::<FaultProfile>()?;
    let hidden: Vec<usize> = flags.get_list("hidden")?.unwrap_or_else(|| vec![8]);

    let chaos_kill_round: Option<u64> = flags.get_list("chaos-kill-round")?.map(first_round);
    let chaos_corrupt_candidate_round: Option<u64> =
        flags.get_list("chaos-corrupt-round")?.map(first_round);
    let force_bad_round: Option<u64> = flags.get_list("force-bad-round")?.map(first_round);

    let config = LearnConfig {
        state_dir,
        seed: flags.get_or("seed", 0u64)?,
        rounds: flags.get_or("rounds", 3u64)?,
        window: flags.get_or("window", 6usize)?,
        buffer_cap: flags.get_or("buffer-cap", 48usize)?,
        holdout: flags.get_or("holdout", 4usize)?,
        bootstrap_ticks: flags.get_or("bootstrap-ticks", 10usize)?,
        drift,
        faults,
        duration_secs: flags.get_or("duration", 3.0f64)?,
        warmup_secs: flags.get_or("warmup", 0.5f64)?,
        stream_retries: flags.get_or("retries", 2usize)?,
        jobs: flags.get_or("jobs", wlc_exec::default_jobs())?.max(1),
        epochs: flags.get_or("epochs", 400usize)?,
        checkpoint_every: flags.get_or("checkpoint-every", 0usize)?,
        hidden,
        learning_rate: flags.get_or("learning-rate", 0.05f64)?,
        batch_size: flags.get_or("batch-size", 16usize)?,
        margin: flags.get_or("margin", 0.0f64)?,
        tolerance: flags.get_or("tolerance", 0.25f64)?,
        probes: flags.get_or("probes", 6usize)?,
        watchdog: flags.get_or("watchdog", 0.5f64)?,
        replicas: flags.get_or("replicas", 2usize)?,
        workers: flags.get_or("workers", 2usize)?,
        queue_capacity: flags.get_or("queue", 16usize)?,
        force_bad_round,
        chaos_kill_round,
        chaos_corrupt_candidate_round,
        fs: wlc_fault::real_fs(),
        quiet: flags.switch("quiet"),
    };

    let supervisor = Supervisor::new(config)?;
    let outcome = supervisor.run()?;
    println!(
        "supervisor done: rounds={} generation={} promotions={} rollbacks={} quarantined={} live={}",
        outcome.rounds,
        outcome.generation,
        outcome.promotions,
        outcome.rollbacks,
        outcome.quarantined,
        outcome.live
    );
    Ok(())
}

/// `get_list` parses single-value flags too; take the first entry.
fn first_round(values: Vec<u64>) -> u64 {
    values.into_iter().next().unwrap_or(0)
}
