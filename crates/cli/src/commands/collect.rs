//! `wlc collect` — simulate a Latin-hypercube design and save a CSV
//! dataset.

use wlc_data::design::{latin_hypercube, round_to_integers, ParamRange};
use wlc_math::rng::Seed;
use wlc_sim::{run_design_faulty_jobs, run_design_replicated_timed, FaultProfile, ServerConfig};

use crate::args::Flags;

use super::{usage, CmdResult};

const USAGE: &str = "\
wlc collect — simulate a Latin-hypercube design, write a CSV dataset

FLAGS:
    --samples <usize>  number of configurations           (required)
    --out <path>       output CSV file                    (required)
    --seed <u64>       design + simulation seed           [default: 0]
    --rate <lo:hi>     injection-rate range               [default: 350:620]
    --default <lo:hi>  default-thread range               [default: 5:20]
    --mfg <lo:hi>      mfg-thread range                   [default: 10:24]
    --web <lo:hi>      web-thread range                   [default: 5:20]
    --duration <f64>   simulated seconds per run          [default: 20]
    --warmup <f64>     warmup seconds per run             [default: 4]
    --replications <u32>  runs averaged per configuration [default: 1]
    --jobs <usize>     simulation worker threads  [default: available cores]
    --fault-profile <spec>  inject measurement faults, e.g.
                  dropout=0.1,spike=0.05,spike_scale=0.5,truncate=0.1,
                  truncate_frac=0.5,stall=0.02      [default: none]
    --retries <usize>  re-runs of a dropped/stalled sample [default: 0]

Results are bit-identical for any --jobs value: every run's seed is
derived from its position in the design, not from scheduling order.
--fault-profile cannot be combined with --replications > 1; samples that
fail every retry are quarantined (omitted from the CSV).";

pub fn run(raw: &[String]) -> CmdResult {
    if raw.is_empty() {
        return usage(USAGE);
    }
    let flags = Flags::parse(raw, &[])?;
    let samples: usize = flags.get_required("samples")?;
    let out = flags.required("out")?.to_string();
    let seed: u64 = flags.get_or("seed", 0)?;

    let (rate_lo, rate_hi) = flags.get_range("rate", (350.0, 620.0))?;
    let (def_lo, def_hi) = flags.get_range("default", (5.0, 20.0))?;
    let (mfg_lo, mfg_hi) = flags.get_range("mfg", (10.0, 24.0))?;
    let (web_lo, web_hi) = flags.get_range("web", (5.0, 20.0))?;

    let ranges = [
        ParamRange::new(rate_lo, rate_hi)?,
        ParamRange::new(def_lo, def_hi)?,
        ParamRange::new(mfg_lo, mfg_hi)?,
        ParamRange::new(web_lo, web_hi)?,
    ];
    let mut points = latin_hypercube(&ranges, samples, Seed::new(seed))?;
    for p in &mut points {
        let rate = p[0];
        round_to_integers(std::slice::from_mut(p));
        p[0] = rate;
    }
    let configs: Vec<ServerConfig> = points
        .iter()
        .map(|p| ServerConfig::from_vector(p))
        .collect::<Result<_, _>>()?;

    let jobs: usize = flags.get_or("jobs", wlc_exec::default_jobs())?.max(1);
    let duration: f64 = flags.get_or("duration", 20.0)?;
    let warmup: f64 = flags.get_or("warmup", 4.0)?;
    let replications: u32 = flags.get_or("replications", 1u32)?;
    // Parsed by hand (not `get_or`) so a bad spec surfaces the typed
    // `SimError::InvalidFaultProfile` and its validation exit code.
    let profile: FaultProfile = flags
        .get_or("fault-profile", String::new())?
        .parse::<FaultProfile>()?;
    let retries: usize = flags.get_or("retries", 0)?;

    eprintln!("simulating {samples} configurations on {jobs} worker(s)...");
    let (dataset, timing) = if profile.is_none() {
        run_design_replicated_timed(
            &configs,
            seed.wrapping_add(1),
            duration,
            warmup,
            replications,
            jobs,
        )?
    } else {
        if replications > 1 {
            return Err("--fault-profile cannot be combined with --replications > 1".into());
        }
        let (ds, faults, timing) = run_design_faulty_jobs(
            &configs,
            seed.wrapping_add(1),
            duration,
            warmup,
            profile,
            retries,
            jobs,
        )?;
        eprintln!("fault injection: {faults}");
        for q in &faults.quarantined {
            eprintln!("  configuration {q} quarantined (all attempts failed)");
        }
        (ds, timing)
    };
    eprintln!("{timing}");
    dataset.save_csv(&out)?;
    println!("wrote {} samples to {out}", dataset.len());
    for summary in dataset.column_summaries() {
        println!(
            "  {:<24} min {:>10.4}  mean {:>10.4}  max {:>10.4}  std {:>9.4}",
            summary.name, summary.min, summary.mean, summary.max, summary.std_dev
        );
    }
    Ok(())
}
