//! `wlc cv` — k-fold cross validation on a CSV dataset (the paper's
//! Table 2 protocol).

use wlc_model::{CrossValidator, WorkloadModelBuilder};

use crate::args::Flags;

use super::{usage, CmdResult};

const USAGE: &str = "\
wlc cv — k-fold cross validation (paper Table 2 protocol)

FLAGS:
    --data <path>       input CSV (from `wlc collect`)     (required)
    --k <usize>         number of folds                    [default: 5]
    --hidden <list>     hidden widths, e.g. 16,12          [default: 16,12]
    --epochs <usize>    epoch budget per fold              [default: 6000]
    --lr <f64>          learning rate                      [default: 0.02]
    --threshold <f64>   termination threshold              [default: 1e-3]
    --seed <u64>        fold-assignment / weight seed      [default: 7]
    --jobs <usize>      fold worker threads        [default: available cores]
    --mode <m>          CSV validation: strict | repair    [default: strict]
    --retries <usize>   per-fold retraining attempts       [default: 0]
    --quarantine        drop failed folds, aggregate survivors
    --force-diverge <list>  fold indices whose first attempt is forced to
                            diverge (fault-injection test hook)

The report is bit-identical for any --jobs value: each fold's split and
weight seed depend only on the fold index, --seed and the retry attempt.
Without --quarantine a failed fold aborts with exit code 4; with it, the
run succeeds while listing quarantined folds (all folds failing is still
exit code 4).";

pub fn run(raw: &[String]) -> CmdResult {
    if raw.is_empty() {
        return usage(USAGE);
    }
    let flags = Flags::parse(raw, &["quarantine"])?;
    let dataset = super::train::load_validated(&flags, flags.required("data")?)?;
    eprintln!("loaded {dataset}");

    let mut builder = WorkloadModelBuilder::new()
        .max_epochs(flags.get_or("epochs", 6000)?)
        .learning_rate(flags.get_or("lr", 0.02)?)
        .optimizer(wlc_nn::OptimizerKind::adam())
        .termination_threshold(flags.get_or("threshold", 1e-3)?);
    if let Some(hidden) = flags.get_list::<usize>("hidden")? {
        builder = builder.no_hidden_layers();
        for w in hidden {
            builder = builder.hidden_layer(w);
        }
    }

    let jobs: usize = flags.get_or("jobs", wlc_exec::default_jobs())?;
    let mut validator = CrossValidator::new(builder)
        .k(flags.get_or("k", 5)?)
        .seed(flags.get_or("seed", 7)?)
        .jobs(jobs)
        .retries(flags.get_or("retries", 0)?)
        .quarantine(flags.switch("quarantine"));
    if let Some(folds) = flags.get_list::<usize>("force-diverge")? {
        validator = validator.force_diverge(&folds);
    }
    let (report, timing) = validator.run_timed(&dataset)?;
    eprintln!("{timing}");

    println!("{}", report.to_table());
    if !report.is_complete() {
        println!(
            "aggregating {} surviving fold(s); {} quarantined",
            report.trials().len(),
            report.quarantined().len()
        );
    }
    println!(
        "overall average prediction accuracy: {:.1} %",
        report.overall_accuracy() * 100.0
    );
    Ok(())
}
