//! `wlc simulate` — run the 3-tier simulator for one configuration.

use wlc_sim::{ArrivalProcess, ServerConfig, Simulation, TransactionKind};

use crate::args::Flags;

use super::{usage, CmdResult};

const USAGE: &str = "\
wlc simulate — run the 3-tier simulator for one configuration

FLAGS:
    --rate <f64>       injection rate in requests/second   (required)
    --default <u32>    default-queue thread count          (required)
    --mfg <u32>        mfg-queue thread count              (required)
    --web <u32>        web-queue thread count              (required)
    --seed <u64>       RNG seed                            [default: 0]
    --duration <f64>   simulated seconds                   [default: 30]
    --warmup <f64>     warmup seconds (discarded)          [default: 5]
    --bursty           use the bursty (MMPP) driver instead of Poisson";

pub fn run(raw: &[String]) -> CmdResult {
    if raw.is_empty() {
        return usage(USAGE);
    }
    let flags = Flags::parse(raw, &["bursty"])?;
    let config = ServerConfig::builder()
        .injection_rate(flags.get_required("rate")?)
        .default_threads(flags.get_required("default")?)
        .mfg_threads(flags.get_required("mfg")?)
        .web_threads(flags.get_required("web")?)
        .build()?;

    let mut sim = Simulation::new(config)
        .seed(flags.get_or("seed", 0u64)?)
        .duration_secs(flags.get_or("duration", 30.0)?)
        .warmup_secs(flags.get_or("warmup", 5.0)?);
    if flags.switch("bursty") {
        sim = sim.arrivals(ArrivalProcess::bursty());
    }

    let m = sim.run()?;
    println!("{m}");
    println!();
    println!("p95 response times:");
    for kind in TransactionKind::ALL {
        println!(
            "  {:<22} {:>9.2} ms",
            kind.name(),
            m.p95_response_time(kind) * 1e3
        );
    }
    Ok(())
}
