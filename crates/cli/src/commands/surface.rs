//! `wlc surface` — evaluate and classify a response surface of a saved
//! model (the paper's 3-D diagrams and shape taxonomy).

use wlc_model::classify::classify;
use wlc_model::report::ascii_heatmap;
use wlc_model::{ResponseSurface, WorkloadModel};

use crate::args::Flags;

use super::{usage, CmdResult};

const USAGE: &str = "\
wlc surface — evaluate + classify a response surface of a saved model

FLAGS:
    --model <path>      model file (from `wlc train`)               (required)
    --base <list>       full configuration, e.g. 560,10,16,10       (required)
    --indicator <usize> output index to plot (0-based)              [default: 0]
    --axis1 <usize>     first swept input index                     [default: 1]
    --axis2 <usize>     second swept input index                    [default: 3]
    --range1 <lo:hi>    sweep range of axis1                        [default: 4:20]
    --range2 <lo:hi>    sweep range of axis2                        [default: 4:20]
    --steps <usize>     grid points per axis                        [default: 9]
    --jobs <usize>      grid-row worker threads      [default: available cores]

The grid is bit-identical for any --jobs value: each row depends only
on its axis value.";

pub fn run(raw: &[String]) -> CmdResult {
    if raw.is_empty() {
        return usage(USAGE);
    }
    let flags = Flags::parse(raw, &[])?;
    let model = WorkloadModel::load(flags.required("model")?)?;
    let base = flags
        .get_list::<f64>("base")?
        .ok_or("missing required flag `--base`")?;
    let output: usize = flags.get_or("indicator", 0)?;
    let axis1: usize = flags.get_or("axis1", 1)?;
    let axis2: usize = flags.get_or("axis2", 3)?;
    let (lo1, hi1) = flags.get_range("range1", (4.0, 20.0))?;
    let (lo2, hi2) = flags.get_range("range2", (4.0, 20.0))?;
    let steps: usize = flags.get_or("steps", 9)?;
    if steps < 3 {
        return Err("`--steps` must be at least 3".into());
    }

    let axis = |lo: f64, hi: f64| -> Vec<f64> {
        (0..steps)
            .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
            .collect()
    };
    let jobs: usize = flags.get_or("jobs", wlc_exec::default_jobs())?;
    let surface = ResponseSurface::new(base, axis1, axis(lo1, hi1), axis2, axis(lo2, hi2), output)?;
    let (grid, timing) = surface.evaluate_timed(&model, jobs)?;
    eprintln!("{timing}");
    let analysis = classify(&grid);

    let indicator_name = model
        .output_names()
        .get(output)
        .cloned()
        .unwrap_or_else(|| format!("output {output}"));
    let axis_name = |i: usize| {
        model
            .input_names()
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("input {i}"))
    };
    println!(
        "surface of `{indicator_name}` over ({}, {}):",
        axis_name(axis1),
        axis_name(axis2)
    );
    print!("{}", ascii_heatmap(&grid));
    let (i_min, j_min, v_min) = grid.min_cell();
    let (i_max, j_max, v_max) = grid.max_cell();
    println!(
        "min {:.4} at ({}, {}); max {:.4} at ({}, {})",
        v_min,
        grid.axis1_values()[i_min],
        grid.axis2_values()[j_min],
        v_max,
        grid.axis1_values()[i_max],
        grid.axis2_values()[j_max]
    );
    println!("classification: {:?}", analysis.shape);
    println!(
        "  sensitivities: {} {:.3}, {} {:.3}; valley {:.2}, hill {:.2}",
        axis_name(axis1),
        analysis.sensitivity_axis1,
        axis_name(axis2),
        analysis.sensitivity_axis2,
        analysis.valley_score,
        analysis.hill_score
    );
    Ok(())
}
