//! A small, dependency-free `--flag value` argument parser.

use std::collections::BTreeMap;
use std::fmt;

/// Error produced while parsing command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn err(msg: impl Into<String>) -> ArgError {
    ArgError(msg.into())
}

/// Parsed `--key value` flags (plus boolean `--key` switches).
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses flags from raw arguments. `known_switches` lists flags that
    /// take no value.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for positional arguments, missing values, or
    /// duplicated flags.
    pub fn parse(args: &[String], known_switches: &[&str]) -> Result<Self, ArgError> {
        let mut flags = Flags::default();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(err(format!("unexpected positional argument `{arg}`")));
            };
            if known_switches.contains(&name) {
                flags.switches.push(name.to_string());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| err(format!("flag `--{name}` requires a value")))?;
            if flags
                .values
                .insert(name.to_string(), value.clone())
                .is_some()
            {
                return Err(err(format!("flag `--{name}` given twice")));
            }
        }
        Ok(flags)
    }

    /// Whether a boolean switch was present.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if missing.
    pub fn required(&self, name: &str) -> Result<&str, ArgError> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| err(format!("missing required flag `--{name}`")))
    }

    /// A parsed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| err(format!("flag `--{name}`: cannot parse `{raw}`"))),
        }
    }

    /// A required parsed flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if missing or unparsable.
    pub fn get_required<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let raw = self.required(name)?;
        raw.parse()
            .map_err(|_| err(format!("flag `--{name}`: cannot parse `{raw}`")))
    }

    /// Parses a comma-separated list of values, e.g. `16,12`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if any element fails to parse.
    pub fn get_list<T: std::str::FromStr>(&self, name: &str) -> Result<Option<Vec<T>>, ArgError> {
        match self.values.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .split(',')
                .map(|tok| {
                    tok.trim()
                        .parse()
                        .map_err(|_| err(format!("flag `--{name}`: cannot parse `{tok}`")))
                })
                .collect::<Result<Vec<T>, ArgError>>()
                .map(Some),
        }
    }

    /// Parses an inclusive `lo:hi` range, e.g. `4:20`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on format or ordering problems.
    pub fn get_range(&self, name: &str, default: (f64, f64)) -> Result<(f64, f64), ArgError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => {
                let (lo, hi) = raw
                    .split_once(':')
                    .ok_or_else(|| err(format!("flag `--{name}`: expected `lo:hi`")))?;
                let lo: f64 = lo
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("flag `--{name}`: bad lower bound")))?;
                let hi: f64 = hi
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("flag `--{name}`: bad upper bound")))?;
                if lo > hi {
                    return Err(err(format!("flag `--{name}`: lower bound above upper")));
                }
                Ok((lo, hi))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_switches() {
        let f = Flags::parse(&args(&["--rate", "560", "--bursty"]), &["bursty"]).unwrap();
        assert_eq!(f.get_required::<f64>("rate").unwrap(), 560.0);
        assert!(f.switch("bursty"));
        assert!(!f.switch("other"));
    }

    #[test]
    fn rejects_positional_and_duplicates() {
        assert!(Flags::parse(&args(&["oops"]), &[]).is_err());
        assert!(Flags::parse(&args(&["--a", "1", "--a", "2"]), &[]).is_err());
        assert!(Flags::parse(&args(&["--a"]), &[]).is_err());
    }

    #[test]
    fn defaults_and_required() {
        let f = Flags::parse(&args(&["--x", "3"]), &[]).unwrap();
        assert_eq!(f.get_or("x", 1i32).unwrap(), 3);
        assert_eq!(f.get_or("y", 7i32).unwrap(), 7);
        assert!(f.required("z").is_err());
        assert!(f.get_required::<i32>("x").is_ok());
    }

    #[test]
    fn lists_and_ranges() {
        let f = Flags::parse(&args(&["--hidden", "16,12", "--span", "4:20"]), &[]).unwrap();
        assert_eq!(f.get_list::<usize>("hidden").unwrap(), Some(vec![16, 12]));
        assert_eq!(f.get_range("span", (0.0, 1.0)).unwrap(), (4.0, 20.0));
        assert_eq!(f.get_range("missing", (0.0, 1.0)).unwrap(), (0.0, 1.0));
    }

    #[test]
    fn bad_values_are_reported() {
        let f = Flags::parse(&args(&["--n", "abc", "--r", "9:1"]), &[]).unwrap();
        assert!(f.get_required::<i32>("n").is_err());
        assert!(f.get_range("r", (0.0, 1.0)).is_err());
        let g = Flags::parse(&args(&["--l", "1,x"]), &[]).unwrap();
        assert!(g.get_list::<i32>("l").is_err());
    }
}
