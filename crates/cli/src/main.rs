//! `wlc` — command-line interface for the workload-characterization
//! toolkit.
//!
//! ```text
//! wlc simulate --rate 560 --default 10 --mfg 16 --web 12
//! wlc collect  --samples 50 --out data.csv
//! wlc train    --data data.csv --out model.txt
//! wlc predict  --model model.txt --config 560,10,16,12
//! wlc cv       --data data.csv --k 5
//! wlc surface  --model model.txt --indicator 4 --base 560,10,16,10
//! ```
//!
//! Run `wlc help` (or any subcommand with `--help`-style mistakes) for
//! usage.

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
wlc — non-linear workload characterization (IISWC 2006 reproduction)

USAGE:
    wlc <COMMAND> [--flag value ...]

COMMANDS:
    simulate   Run the 3-tier simulator for one configuration
    collect    Simulate a Latin-hypercube design and write a CSV dataset
    train      Train the MLP workload model on a CSV dataset
    predict    Predict indicators for a configuration with a saved model
    cv         k-fold cross validation on a CSV dataset (paper Table 2)
    surface    Evaluate + classify a response surface of a saved model
    help       Show this message

Run a command with no flags to see its options.";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "simulate" => commands::simulate::run(rest),
        "collect" => commands::collect::run(rest),
        "train" => commands::train::run(rest),
        "predict" => commands::predict::run(rest),
        "cv" => commands::cv::run(rest),
        "surface" => commands::surface::run(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
