//! `wlc` — command-line interface for the workload-characterization
//! toolkit.
//!
//! ```text
//! wlc simulate --rate 560 --default 10 --mfg 16 --web 12
//! wlc collect  --samples 50 --out data.csv
//! wlc train    --data data.csv --out model.txt
//! wlc predict  --model model.txt --config 560,10,16,12
//! wlc cv       --data data.csv --k 5
//! wlc surface  --model model.txt --indicator 4 --base 560,10,16,10
//! wlc serve    --model model.txt --data data.csv --addr 127.0.0.1:0
//! wlc predict  --server 127.0.0.1:4321 --config 560,10,16,12
//! wlc learn    --state-dir learn-state --drift-profile kind=ramp,rate=0.02
//! ```
//!
//! Run `wlc help` (or any subcommand with `--help`-style mistakes) for
//! usage.

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::error::Error;
use std::process::ExitCode;

use wlc_data::DataError;
use wlc_learn::LearnError;
use wlc_model::ModelError;
use wlc_nn::NnError;
use wlc_serve::ServeError;
use wlc_sim::SimError;

const USAGE: &str = "\
wlc — non-linear workload characterization (IISWC 2006 reproduction)

USAGE:
    wlc <COMMAND> [--flag value ...]

COMMANDS:
    simulate   Run the 3-tier simulator for one configuration
    collect    Simulate a Latin-hypercube design and write a CSV dataset
    train      Train the MLP workload model on a CSV dataset
    predict    Predict indicators for a configuration with a saved model
    cv         k-fold cross validation on a CSV dataset (paper Table 2)
    surface    Evaluate + classify a response surface of a saved model
    serve      Run the fault-tolerant prediction server (HTTP + JSON)
    learn      Continuous learning: stream, retrain, shadow, promote
    bench      Benchmark the train/predict hot path; track BENCH_nn.json
    help       Show this message

EXIT CODES:
    0 success   1 failure   2 bad usage
    3 input failed validation   4 training diverged   5 serve error
    6 durable storage failed (see the fault-injection docs; retriable
      failures resolve by rerunning — state resumes from the last commit)

Run a command with no flags to see its options.";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "simulate" => commands::simulate::run(rest),
        "collect" => commands::collect::run(rest),
        "train" => commands::train::run(rest),
        "predict" => commands::predict::run(rest),
        "cv" => commands::cv::run(rest),
        "surface" => commands::surface::run(rest),
        "serve" => commands::serve::run(rest),
        "learn" => commands::learn::run(rest),
        "bench" => commands::bench::run(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(exit_code_for(e.as_ref()))
        }
    }
}

/// Generic failure.
const EXIT_FAILURE: u8 = 1;
/// Bad flags or usage.
const EXIT_USAGE: u8 = 2;
/// Input data failed strict validation (bad CSV, bad fault profile).
const EXIT_VALIDATION: u8 = 3;
/// Training diverged (or every cross-validation fold did).
const EXIT_DIVERGED: u8 = 4;
/// Prediction-server failure (bind, transport, retries exhausted).
const EXIT_SERVE: u8 = 5;
/// Durable storage failed at a fault-injection site (write, fsync or
/// rename of committed state, or committed state that cannot be read
/// back). Retriable sites recover by rerunning the same command.
const EXIT_DURABLE: u8 = 6;

/// Maps an error to the documented process exit code by inspecting the
/// concrete type behind the `dyn Error` (including wrapped sources).
fn exit_code_for(e: &(dyn Error + 'static)) -> u8 {
    if e.downcast_ref::<args::ArgError>().is_some() {
        return EXIT_USAGE;
    }
    if let Some(d) = e.downcast_ref::<DataError>() {
        return data_code(d);
    }
    if let Some(s) = e.downcast_ref::<SimError>() {
        return sim_code(s);
    }
    if let Some(n) = e.downcast_ref::<NnError>() {
        return nn_code(n);
    }
    if let Some(m) = e.downcast_ref::<ModelError>() {
        return model_code(m);
    }
    if let Some(s) = e.downcast_ref::<ServeError>() {
        return serve_code(s);
    }
    if let Some(l) = e.downcast_ref::<LearnError>() {
        return learn_code(l);
    }
    EXIT_FAILURE
}

fn data_code(e: &DataError) -> u8 {
    match e {
        DataError::Validation { .. } => EXIT_VALIDATION,
        _ => EXIT_FAILURE,
    }
}

fn sim_code(e: &SimError) -> u8 {
    match e {
        SimError::InvalidFaultProfile { .. } | SimError::InvalidDriftProfile { .. } => {
            EXIT_VALIDATION
        }
        SimError::Data(d) => data_code(d),
        _ => EXIT_FAILURE,
    }
}

fn nn_code(e: &NnError) -> u8 {
    match e {
        NnError::Diverged { .. } => EXIT_DIVERGED,
        _ => EXIT_FAILURE,
    }
}

fn model_code(e: &ModelError) -> u8 {
    match e {
        ModelError::Nn(n) => nn_code(n),
        ModelError::Data(d) => data_code(d),
        ModelError::Sim(s) => sim_code(s),
        ModelError::AllFoldsQuarantined { .. } => EXIT_DIVERGED,
        ModelError::LoadFailed { source, .. } => model_code(source),
        _ => EXIT_FAILURE,
    }
}

fn learn_code(e: &LearnError) -> u8 {
    match e {
        // Bad supervisor configuration reads like a validation problem.
        LearnError::InvalidParameter { .. } => EXIT_VALIDATION,
        // Wrapped errors keep their established codes.
        LearnError::Sim(s) => sim_code(s),
        LearnError::Data(d) => data_code(d),
        LearnError::Model(m) => model_code(m),
        LearnError::Serve(s) => serve_code(s),
        // Storage failed under the supervisor at a named failpoint
        // site; the message carries whether a rerun can recover.
        LearnError::Durable { .. } => EXIT_DURABLE,
        // State corruption and deliberate chaos kills are generic
        // failures; rerunning resumes from the last committed round.
        _ => EXIT_FAILURE,
    }
}

fn serve_code(e: &ServeError) -> u8 {
    match e {
        // Bad flag combinations read like usage problems.
        ServeError::InvalidParameter { .. } => EXIT_USAGE,
        // Model problems keep their established codes (3/4).
        ServeError::Model(m) => model_code(m),
        // A 4xx means the server validated and rejected our input;
        // oversized bodies and header timeouts are the same family
        // seen from the server's own side of the connection.
        ServeError::Rejected { status, .. } if (400..500).contains(status) => EXIT_VALIDATION,
        ServeError::BodyTooLarge { .. } | ServeError::HeaderTimeout { .. } => EXIT_VALIDATION,
        // Durable storage failed while loading or reloading a model.
        ServeError::Durable { .. } => EXIT_DURABLE,
        // Transport-level failures are all "serving errors": could not
        // bind, connection died, peer spoke garbage, retry budget spent,
        // or a 5xx rejection (shed/deadline) that outlived the retries.
        ServeError::Bind { .. }
        | ServeError::Io(_)
        | ServeError::Protocol(_)
        | ServeError::Rejected { .. }
        | ServeError::RetriesExhausted { .. } => EXIT_SERVE,
        // `ServeError` is #[non_exhaustive]; future variants default to
        // the generic serve failure code.
        _ => EXIT_SERVE,
    }
}
