//! Exhaustive crash-consistency sweep: run a full supervisor round —
//! bootstrap commit, mid-retrain checkpoints, promotion through the
//! fleet, watchdog rollback, quarantine — entirely on a simulated
//! filesystem, then replay a power cut after **every** recorded
//! filesystem operation and rerun the supervisor on what survived.
//!
//! The contract being proven:
//!
//! 1. `state.txt` is the single commit point — at every crash prefix it
//!    is either absent or a complete, parseable record (never torn).
//! 2. The live and last-good models named by a committed `state.txt`
//!    are always present and loadable (serving can always come back).
//! 3. The event log replays idempotently — no duplicated or lost lines.
//! 4. A resumed run converges: the final durable state is byte-for-byte
//!    identical to an uninterrupted run, for every crash point.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use wlc_fault::{FailPlan, FsHandle, SimFs};
use wlc_learn::{LearnConfig, LearnError, Supervisor};
use wlc_model::WorkloadModel;
use wlc_sim::DriftProfile;

/// One full-featured round on a virtual state directory: the ramp
/// drift makes round 1 promote (verified below), and the forced-bad
/// probation makes the watchdog roll the promotion back — so a single
/// round exercises every durable transition the supervisor has.
fn config(fs: FsHandle) -> LearnConfig {
    LearnConfig {
        state_dir: PathBuf::from("sweep-state"),
        seed: 0,
        rounds: 1,
        window: 5,
        buffer_cap: 30,
        holdout: 3,
        bootstrap_ticks: 8,
        drift: "kind=ramp,rate=0.08".parse::<DriftProfile>().unwrap(),
        duration_secs: 2.0,
        warmup_secs: 0.5,
        epochs: 200,
        hidden: vec![8],
        probes: 4,
        tolerance: 2.0,
        replicas: 1,
        workers: 2,
        jobs: 1,
        force_bad_round: Some(1),
        fs,
        quiet: true,
        ..LearnConfig::default()
    }
}

fn run_to_completion(sim: &Arc<SimFs>) -> wlc_learn::Outcome {
    let handle: FsHandle = Arc::clone(sim) as FsHandle;
    Supervisor::new(config(handle))
        .unwrap()
        .run()
        .unwrap_or_else(|e| panic!("fault-free run failed: {e}"))
}

fn parse_state(bytes: &[u8]) -> BTreeMap<String, String> {
    let text = std::str::from_utf8(bytes).expect("state.txt must be UTF-8 at every crash point");
    assert!(
        text.starts_with("wlc-learn-state v1\n") && text.ends_with('\n'),
        "state.txt must never be torn: {text:?}"
    );
    text.lines()
        .skip(1)
        .map(|line| {
            let (k, v) = line.split_once(' ').expect("state line");
            (k.to_string(), v.to_string())
        })
        .collect()
}

#[test]
fn every_crash_prefix_recovers_to_the_uninterrupted_bytes() {
    let dir = Path::new("sweep-state");

    // Reference: one uninterrupted run on a pristine SimFs.
    let reference = Arc::new(SimFs::new());
    let outcome = run_to_completion(&reference);
    assert_eq!(outcome.promotions, 1, "round 1 must promote");
    assert_eq!(outcome.rollbacks, 1, "probation must roll back");
    assert_eq!(outcome.quarantined, 1);
    assert_eq!(outcome.live, "model-g0.model");
    let want = reference.durable();
    assert!(want.contains_key(&dir.join("state.txt")));
    assert!(want.contains_key(&dir.join("events.log")));
    assert!(want.contains_key(&dir.join("quarantine/round-1.model")));
    // The commit protocol leaves no staging files behind.
    assert!(
        !want.keys().any(|p| p.to_string_lossy().ends_with(".tmp")),
        "stray tmp files in final durable state: {:?}",
        want.keys()
    );

    let ops = reference.op_log();
    assert!(
        ops.len() >= 30,
        "expected a rich op log, got {} ops",
        ops.len()
    );

    // Sweep: simulate a power cut after every op-log prefix (0 = crash
    // before anything landed), check the invariants on the wreckage,
    // then rerun the supervisor on it and demand convergence.
    for prefix in 0..=ops.len() {
        let crashed = reference.crash_at(prefix);
        let survived = crashed.durable();

        // Invariants on the crash state itself.
        if let Some(bytes) = survived.get(&dir.join("state.txt")) {
            let state = parse_state(bytes);
            for key in ["live", "last_good"] {
                let name = &state[key];
                let model = survived
                    .get(&dir.join(name))
                    .unwrap_or_else(|| panic!("prefix {prefix}: committed {key} {name} missing"));
                WorkloadModel::from_text(std::str::from_utf8(model).unwrap()).unwrap_or_else(|e| {
                    panic!("prefix {prefix}: committed {key} {name} unloadable: {e}")
                });
            }
        }
        if let Some(bytes) = survived.get(&dir.join("events.log")) {
            // Never torn: atomically replaced, so always whole lines.
            let text = std::str::from_utf8(bytes).unwrap();
            assert!(
                text.is_empty() || text.ends_with('\n'),
                "prefix {prefix}: torn events.log"
            );
        }

        // Recovery: rerun on the crashed filesystem.
        let resumed = Arc::new(crashed);
        let recovered = run_to_completion(&resumed);
        assert_eq!(recovered.rounds, outcome.rounds, "prefix {prefix}");
        assert_eq!(recovered.generation, outcome.generation, "prefix {prefix}");
        assert_eq!(recovered.live, outcome.live, "prefix {prefix}");

        // Convergence: the entire durable state — state record, event
        // log, models, buffers, quarantine — is byte-identical to the
        // uninterrupted run's. No missing files, no strays, no drift.
        let got = resumed.durable();
        assert_eq!(
            got.keys().collect::<Vec<_>>(),
            want.keys().collect::<Vec<_>>(),
            "prefix {prefix}: durable file set diverged"
        );
        for (path, bytes) in &want {
            assert_eq!(
                bytes,
                &got[path],
                "prefix {prefix}: {} diverged after recovery",
                path.display()
            );
        }
    }
}

/// A seeded fault schedule peppers the retriable write sites with
/// injected failures. Every failure must surface as a typed error
/// marked retriable — and because a consumed schedule entry never
/// re-fires, simply rerunning the supervisor converges to the exact
/// bytes of a fault-free run.
#[test]
fn seeded_write_faults_are_typed_retriable_and_rerun_converges() {
    let dir = Path::new("sweep-state");

    // Fault-free reference bytes.
    let clean = Arc::new(SimFs::new());
    run_to_completion(&clean);
    let want = clean.durable();

    let sites = [
        "learn.state.commit",
        "learn.events.commit",
        "learn.buffer.write",
        "learn.model.write",
        "learn.reference.write",
        "learn.quarantine.write",
        "nn.checkpoint.write",
        "serve.model.load",
    ];
    let plan = FailPlan::seeded(0xfau64, &sites, 6, 8);
    assert!(!plan.is_empty());
    let sim = Arc::new(SimFs::with_plan(plan));

    let mut failures = 0usize;
    let mut attempts = 0usize;
    loop {
        attempts += 1;
        assert!(attempts <= 20, "did not converge within 20 reruns");
        let handle: FsHandle = Arc::clone(&sim) as FsHandle;
        match Supervisor::new(config(handle)).unwrap().run() {
            Ok(outcome) => {
                assert_eq!(outcome.live, "model-g0.model");
                break;
            }
            Err(e) => {
                failures += 1;
                // Every injected failure must come back typed, naming
                // its site, and marked safe to retry by rerunning.
                match &e {
                    LearnError::Durable {
                        site,
                        reason,
                        retriable,
                        ..
                    } => {
                        assert!(sites.contains(&site.as_str()), "unknown site {site}");
                        assert!(reason.contains("injected"), "{reason}");
                        assert!(retriable, "write sites must be retriable: {e}");
                    }
                    // An injected serve.model.load failure surfaces
                    // through the fleet as a retriable 503 rejection.
                    LearnError::Serve(serve) => {
                        assert!(serve.is_retriable(), "fleet error must be retriable: {e}");
                    }
                    other => panic!("expected a typed retriable error, got {other}"),
                }
            }
        }
    }
    assert!(failures >= 1, "the schedule never fired — nothing tested");

    // Convergence: identical bytes to the fault-free run.
    let got = sim.durable();
    assert_eq!(
        got.keys().collect::<Vec<_>>(),
        want.keys().collect::<Vec<_>>()
    );
    for (path, bytes) in &want {
        assert_eq!(bytes, &got[path], "{} diverged", path.display());
    }
    let _ = dir;
}
