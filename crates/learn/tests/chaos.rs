//! Chaos coverage for the continuous-learning supervisor: kill it
//! mid-retrain, corrupt its artifacts, force bad promotions — and
//! assert serving never leaves the last validated model while the
//! whole loop stays bit-identical under a fixed seed.

use std::fs;
use std::path::{Path, PathBuf};

use wlc_learn::{LearnConfig, LearnError, Supervisor};
use wlc_sim::DriftProfile;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wlc-learn-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small but full-featured loop: drifting workload, promotions from
/// round 1 (verified by the assertions below), two serving replicas.
fn base_config(dir: &Path) -> LearnConfig {
    LearnConfig {
        state_dir: dir.to_path_buf(),
        seed: 0,
        rounds: 3,
        window: 5,
        buffer_cap: 30,
        holdout: 3,
        bootstrap_ticks: 8,
        drift: "kind=ramp,rate=0.08".parse::<DriftProfile>().unwrap(),
        duration_secs: 2.0,
        warmup_secs: 0.5,
        epochs: 200,
        hidden: vec![8],
        probes: 4,
        tolerance: 2.0,
        replicas: 2,
        workers: 2,
        jobs: 1,
        quiet: true,
        ..LearnConfig::default()
    }
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    fs::read(dir.join(name)).unwrap_or_else(|e| panic!("reading {name}: {e}"))
}

#[test]
fn kill_mid_retrain_then_corrupt_checkpoint_resumes_byte_identically() {
    // Reference: an uninterrupted sequential run.
    let dir_a = temp_dir("ref");
    let outcome_a = Supervisor::new(base_config(&dir_a)).unwrap().run().unwrap();
    assert!(outcome_a.promotions >= 1, "config must exercise promotion");
    assert_eq!(outcome_a.rounds, 3);

    // Chaos: run with more workers, die mid-retrain in round 2 right
    // after the first checkpoint hits disk.
    let dir_b = temp_dir("killed");
    let mut killed = base_config(&dir_b);
    killed.jobs = 4;
    killed.chaos_kill_round = Some(2);
    match Supervisor::new(killed).unwrap().run() {
        Err(LearnError::ChaosKill { round: 2 }) => {}
        other => panic!("expected chaos kill in round 2, got {other:?}"),
    }
    // Nothing from round 2 was committed; the checkpoint survives.
    assert!(String::from_utf8(read(&dir_b, "state.txt"))
        .unwrap()
        .contains("round 1"));
    assert!(dir_b.join("retrain-2.ckpt").exists());

    // Worse: the checkpoint the kill left behind is itself corrupt.
    // The resumed supervisor must discard it and retrain from scratch
    // — which produces the same bytes either way.
    fs::write(
        dir_b.join("retrain-2.ckpt"),
        b"wlc-nn-checkpoint v1\ngarbage\n",
    )
    .unwrap();

    let mut resumed = base_config(&dir_b);
    resumed.jobs = 4;
    let outcome_b = Supervisor::new(resumed).unwrap().run().unwrap();

    // The interrupted-and-resumed parallel run reproduces the
    // uninterrupted sequential run bit for bit.
    assert_eq!(outcome_b.rounds, outcome_a.rounds);
    assert_eq!(outcome_b.generation, outcome_a.generation);
    assert_eq!(outcome_b.live, outcome_a.live);
    assert_eq!(read(&dir_a, "events.log"), read(&dir_b, "events.log"));
    assert_eq!(read(&dir_a, "state.txt"), read(&dir_b, "state.txt"));
    assert_eq!(read(&dir_a, &outcome_a.live), read(&dir_b, &outcome_b.live));
    // Round scratch was cleaned up at commit.
    assert!(!dir_b.join("retrain-2.ckpt").exists());

    fs::remove_dir_all(&dir_a).unwrap();
    fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn corrupt_candidate_is_quarantined_and_serving_never_leaves_last_good() {
    let dir = temp_dir("corrupt");
    let mut config = base_config(&dir);
    config.rounds = 1;
    config.chaos_corrupt_candidate_round = Some(1);
    let outcome = Supervisor::new(config).unwrap().run().unwrap();

    // The fleet's validated reload rejected the torn artifact: no
    // promotion happened, no fleet swap happened, and the supervisor
    // still serves (and trusts) generation 0.
    assert_eq!(outcome.promotions, 0);
    assert_eq!(outcome.rollbacks, 0);
    assert_eq!(outcome.generation, 0);
    assert_eq!(outcome.quarantined, 1);
    assert_eq!(outcome.live, "model-g0.model");

    // The bad candidate moved into quarantine with a diagnosis record.
    assert!(dir.join("quarantine/round-1.model").exists());
    let diagnosis = String::from_utf8(read(&dir, "quarantine/round-1.diagnosis")).unwrap();
    assert!(diagnosis.contains("reason reload_rejected"), "{diagnosis}");
    assert!(!dir.join("model-g1.model").exists());

    let events = String::from_utf8(read(&dir, "events.log")).unwrap();
    assert!(events.contains("event=quarantine round=1 reason=reload_rejected"));
    assert!(!events.contains("event=promote"));

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn forced_bad_promotion_rolls_back_within_the_probation_window() {
    let dir = temp_dir("rollback");
    let mut config = base_config(&dir);
    config.rounds = 1;
    config.force_bad_round = Some(1);
    let outcome = Supervisor::new(config).unwrap().run().unwrap();

    // Round 1 promoted generation 1, every probation probe degraded,
    // the watchdog fired, and the fleet swapped back to last-good
    // (generation 2 = two swaps: promote + rollback).
    assert_eq!(outcome.promotions, 1);
    assert_eq!(outcome.rollbacks, 1);
    assert_eq!(outcome.quarantined, 1);
    assert_eq!(outcome.generation, 2);
    assert_eq!(outcome.live, "model-g0.model");

    let events = String::from_utf8(read(&dir, "events.log")).unwrap();
    assert!(events.contains("event=probation round=1 probes=4 breaches=4 verdict=breach"));
    assert!(events.contains(
        "event=rollback round=1 generation=2 restored=model-g0.model quarantined=model-g1.model"
    ));
    let diagnosis = String::from_utf8(read(&dir, "quarantine/round-1.diagnosis")).unwrap();
    assert!(diagnosis.contains("watchdog breach"), "{diagnosis}");
    assert!(diagnosis.contains("restored model-g0.model"), "{diagnosis}");

    // The quarantined artifact is the candidate that was serving
    // during probation, preserved for offline inspection.
    assert!(dir.join("quarantine/round-1.model").exists());
    assert!(!dir.join("model-g1.model").exists());

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stream_faults_degrade_the_loop_but_serving_stays_validated() {
    let dir = temp_dir("faults");
    let mut config = base_config(&dir);
    config.rounds = 2;
    config.faults = "dropout=0.2,spike=0.1,spike_scale=0.3,truncate=0.2,truncate_frac=0.6"
        .parse()
        .unwrap();
    let outcome = Supervisor::new(config).unwrap().run().unwrap();
    assert_eq!(outcome.rounds, 2);

    // Whatever the faults did to the stream, the live model is always
    // one the fleet validated: it loads, and it matches an artifact
    // the supervisor committed.
    let live = wlc_model::WorkloadModel::load(dir.join(&outcome.live)).unwrap();
    live.validate(None).unwrap();

    // And the same faulty stream replays identically.
    let dir_b = temp_dir("faults-b");
    let mut config_b = base_config(&dir_b);
    config_b.rounds = 2;
    config_b.faults = "dropout=0.2,spike=0.1,spike_scale=0.3,truncate=0.2,truncate_frac=0.6"
        .parse()
        .unwrap();
    config_b.jobs = 3;
    Supervisor::new(config_b).unwrap().run().unwrap();
    assert_eq!(read(&dir, "events.log"), read(&dir_b, "events.log"));

    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&dir_b).unwrap();
}
