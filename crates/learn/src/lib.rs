//! Continuous-learning supervisor for workload models.
//!
//! Drives the full **stream → retrain → shadow → promote** loop on top
//! of the rest of the workspace:
//!
//! 1. **Stream** — [`wlc_sim::stream_window`] materialises live samples
//!    under a configurable [`wlc_sim::DriftProfile`] (service-demand
//!    ramp, routing-mix rotation, regime switch) and an optional
//!    [`wlc_sim::FaultProfile`] into a bounded rolling sample buffer.
//! 2. **Retrain** — an incremental trainer consumes the buffer through
//!    the existing divergence guards and seeded retry/LR-backoff, with
//!    periodic crash-safe checkpoints so a killed supervisor resumes
//!    **byte-identically**.
//! 3. **Shadow** — the candidate is scored side-by-side against the
//!    live model on the most recent held-out window *and* on a pinned
//!    reference window; promotion requires beating live on recent data
//!    without regressing beyond tolerance on the reference.
//! 4. **Promote** — the candidate is swapped in via the serving tier's
//!    validated rolling hot-reload. A post-promotion **probation**
//!    window probes the fleet; if the degraded/error rate breaches the
//!    watchdog threshold the supervisor **rolls back** to the last-good
//!    model and **quarantines** the bad candidate with a diagnosis
//!    record.
//!
//! Every transition is logged as a structured `key=value` event line
//! carrying the supervisor generation number. Event lines never embed
//! wall-clock values, so the entire loop — including the event log and
//! the bytes of every model artifact — is bit-identical across reruns
//! with the same seed, across worker counts, and across a
//! kill-and-resume at any commit boundary.
//!
//! # State directory
//!
//! All durable state lives under [`LearnConfig::state_dir`]:
//!
//! | file | contents |
//! |------|----------|
//! | `state.txt` | committed round/generation counters + live/last-good model names |
//! | `reference.csv` | pinned bootstrap window used for regression scoring |
//! | `buffer-{round}.csv` | rolling sample buffer snapshot after each round |
//! | `model-g{gen}.model` | immutable promoted model artifacts |
//! | `retrain-{round}.ckpt` | mid-round training checkpoint (removed at commit) |
//! | `events.log` | append-only structured event log |
//! | `quarantine/round-{round}.model` + `.diagnosis` | quarantined candidates |
//!
//! Every write is crash-safe (`tmp` + `fsync` + `rename`), and
//! `state.txt` is always written last so it is the single commit
//! point: a crash anywhere leaves the previous round fully intact.

#![forbid(unsafe_code)]

mod error;
mod state;
mod supervisor;

pub use error::LearnError;
pub use state::SupervisorState;
pub use supervisor::{LearnConfig, Outcome, Supervisor};
