//! The continuous-learning supervisor state machine.

use std::path::{Path, PathBuf};
use std::thread;

use wlc_data::Dataset;
use wlc_fault::FsHandle;
use wlc_math::rng::{Seed, Xoshiro256};
use wlc_model::baseline::{LinearFeatures, LinearModel};
use wlc_model::fallback::FallbackModel;
use wlc_model::{ModelError, PerformanceModel, TrainedModel, WorkloadModel, WorkloadModelBuilder};
use wlc_nn::{Checkpoint, NnError};
use wlc_serve::{ClientConfig, ServeClient, ServeConfig, ServeError, Server};
use wlc_sim::{stream_window, DriftProfile, FaultProfile, StreamConfig};

use crate::state::{buffer_path, commit_events, durable_err, write_atomic, SupervisorState};
use crate::LearnError;

/// Seed stream for per-round retraining.
const RETRAIN_STREAM: u64 = 0x7e7a;
/// Seed stream for probation probe configurations.
const PROBE_STREAM: u64 = 0x9b0b;

/// Probe sampling ranges, mirroring the `wlc collect` defaults used by
/// the stream's own configuration sampler.
const RATE_RANGE: (f64, f64) = (350.0, 620.0);
const DEFAULT_RANGE: (f64, f64) = (5.0, 20.0);
const MFG_RANGE: (f64, f64) = (10.0, 24.0);
const WEB_RANGE: (f64, f64) = (5.0, 20.0);

/// Configuration for [`Supervisor`].
#[derive(Debug, Clone)]
pub struct LearnConfig {
    /// Directory holding all durable supervisor state.
    pub state_dir: PathBuf,
    /// Root seed; every stream, retrain and probe draw derives from it.
    pub seed: u64,
    /// Rounds to run (the bootstrap round 0 is extra).
    pub rounds: u64,
    /// Stream ticks ingested per round.
    pub window: usize,
    /// Maximum samples retained in the rolling buffer (oldest evicted).
    pub buffer_cap: usize,
    /// Most-recent samples held out of training for shadow scoring.
    pub holdout: usize,
    /// Ticks in the bootstrap window (also the pinned reference set).
    pub bootstrap_ticks: usize,
    /// Workload drift applied to the stream.
    pub drift: DriftProfile,
    /// Measurement faults injected into the stream.
    pub faults: FaultProfile,
    /// Simulated seconds per stream tick.
    pub duration_secs: f64,
    /// Warmup seconds discarded per stream tick.
    pub warmup_secs: f64,
    /// Retries before a dropped/stalled tick is quarantined.
    pub stream_retries: usize,
    /// Stream worker threads (never affects output).
    pub jobs: usize,
    /// Retraining epochs per round.
    pub epochs: usize,
    /// Checkpoint interval in epochs (0 = `epochs / 4`).
    pub checkpoint_every: usize,
    /// Hidden-layer widths for retrained candidates.
    pub hidden: Vec<usize>,
    /// Training learning rate.
    pub learning_rate: f64,
    /// Training mini-batch size.
    pub batch_size: usize,
    /// Promotion margin: the candidate must score at or below
    /// `live * (1 - margin)` on the recent holdout.
    pub margin: f64,
    /// Regression tolerance: the candidate must score at or below
    /// `live * (1 + tolerance)` on the reference window.
    pub tolerance: f64,
    /// Probation probes issued after each promotion.
    pub probes: usize,
    /// Watchdog threshold: roll back when the probe degraded/error
    /// rate exceeds this fraction.
    pub watchdog: f64,
    /// Serving replicas for the in-process fleet.
    pub replicas: usize,
    /// Worker threads per replica.
    pub workers: usize,
    /// Per-replica queue capacity.
    pub queue_capacity: usize,
    /// Chaos hook: force every probation probe in this round to fail,
    /// driving a watchdog breach and rollback.
    pub force_bad_round: Option<u64>,
    /// Chaos hook: die mid-retrain in this round, right after the first
    /// checkpoint is written and before anything is committed.
    pub chaos_kill_round: Option<u64>,
    /// Chaos hook: corrupt the candidate artifact of this round before
    /// asking the fleet to load it (the reload must reject it).
    pub chaos_corrupt_candidate_round: Option<u64>,
    /// Filesystem every durable transition goes through. The default
    /// [`wlc_fault::real_fs`] is a passthrough; the crash-consistency
    /// sweep swaps in a [`wlc_fault::SimFs`] to inject storage faults
    /// and replay power cuts. The handle is also passed to the
    /// in-process serving fleet, so promoted artifacts written here are
    /// read back through the same (possibly simulated) filesystem.
    pub fs: FsHandle,
    /// Suppress live event printing (the event log is still written).
    pub quiet: bool,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            state_dir: PathBuf::from("learn-state"),
            seed: 0,
            rounds: 3,
            window: 6,
            buffer_cap: 48,
            holdout: 4,
            bootstrap_ticks: 10,
            drift: DriftProfile::steady(),
            faults: FaultProfile::none(),
            duration_secs: 3.0,
            warmup_secs: 0.5,
            stream_retries: 2,
            jobs: 1,
            epochs: 400,
            checkpoint_every: 0,
            hidden: vec![8],
            learning_rate: 0.05,
            batch_size: 16,
            margin: 0.0,
            tolerance: 0.25,
            probes: 6,
            watchdog: 0.5,
            replicas: 2,
            workers: 2,
            queue_capacity: 16,
            force_bad_round: None,
            chaos_kill_round: None,
            chaos_corrupt_candidate_round: None,
            fs: wlc_fault::real_fs(),
            quiet: false,
        }
    }
}

impl LearnConfig {
    /// Validates every field, mirroring the trainer/server guards.
    pub fn validate(&self) -> Result<(), LearnError> {
        fn bad(name: &'static str, reason: impl Into<String>) -> LearnError {
            LearnError::InvalidParameter {
                name,
                reason: reason.into(),
            }
        }
        if self.rounds == 0 {
            return Err(bad("rounds", "must be at least 1"));
        }
        if self.window == 0 {
            return Err(bad("window", "must be at least 1"));
        }
        if self.holdout == 0 {
            return Err(bad("holdout", "must be at least 1"));
        }
        if self.buffer_cap < self.holdout + 2 {
            return Err(bad(
                "buffer_cap",
                format!("must be at least holdout + 2 = {}", self.holdout + 2),
            ));
        }
        if self.bootstrap_ticks < 2 {
            return Err(bad("bootstrap_ticks", "must be at least 2"));
        }
        if self.epochs == 0 {
            return Err(bad("epochs", "must be at least 1"));
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(bad("learning_rate", "must be finite and positive"));
        }
        if self.batch_size == 0 {
            return Err(bad("batch_size", "must be at least 1"));
        }
        if self.hidden.contains(&0) {
            return Err(bad("hidden", "layer widths must be at least 1"));
        }
        if !self.margin.is_finite() || !(0.0..1.0).contains(&self.margin) {
            return Err(bad("margin", "must be in [0, 1)"));
        }
        if !self.tolerance.is_finite() || self.tolerance < 0.0 {
            return Err(bad("tolerance", "must be finite and non-negative"));
        }
        if self.probes == 0 {
            return Err(bad("probes", "must be at least 1"));
        }
        if !self.watchdog.is_finite()
            || !(0.0..=1.0).contains(&self.watchdog)
            || self.watchdog == 0.0
        {
            return Err(bad("watchdog", "must be in (0, 1]"));
        }
        if !self.duration_secs.is_finite() || !self.warmup_secs.is_finite() {
            return Err(bad("duration_secs", "durations must be finite"));
        }
        if self.warmup_secs < 0.0 || self.duration_secs <= self.warmup_secs {
            return Err(bad("duration_secs", "need duration > warmup >= 0"));
        }
        if self.replicas == 0 {
            return Err(bad("replicas", "must be at least 1"));
        }
        if self.workers == 0 {
            return Err(bad("workers", "must be at least 1"));
        }
        if self.queue_capacity == 0 {
            return Err(bad("queue_capacity", "must be at least 1"));
        }
        self.drift.validate()?;
        self.faults.validate()?;
        Ok(())
    }

    fn stream(&self) -> StreamConfig {
        StreamConfig {
            base_seed: self.seed,
            drift: self.drift,
            faults: self.faults,
            duration_secs: self.duration_secs,
            warmup_secs: self.warmup_secs,
            max_retries: self.stream_retries,
            jobs: self.jobs,
        }
    }

    fn checkpoint_interval(&self) -> usize {
        if self.checkpoint_every == 0 {
            (self.epochs / 4).max(1)
        } else {
            self.checkpoint_every
        }
    }
}

/// Summary of a completed (or resumed-and-completed) supervisor run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Rounds committed in total.
    pub rounds: u64,
    /// Promotions across the whole state directory's history.
    pub promotions: u64,
    /// Rollbacks across the whole history.
    pub rollbacks: u64,
    /// Quarantined candidates across the whole history.
    pub quarantined: u64,
    /// Final supervisor generation (one per fleet swap).
    pub generation: u64,
    /// File name of the model serving when the run finished.
    pub live: String,
}

/// Runs the stream → retrain → shadow → promote loop against an
/// in-process serving fleet. See the crate docs for the state-machine
/// and crash-safety contract.
#[derive(Debug)]
pub struct Supervisor {
    config: LearnConfig,
}

struct ServerHandle {
    client: ServeClient,
    thread: Option<thread::JoinHandle<Result<wlc_serve::ServeStats, ServeError>>>,
}

impl ServerHandle {
    fn shutdown(mut self) {
        let _ = self.client.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Supervisor {
    /// Validates `config` and prepares the state directory.
    pub fn new(config: LearnConfig) -> Result<Supervisor, LearnError> {
        config.validate()?;
        config
            .fs
            .create_dir_all("learn.state.dir", &config.state_dir.join("quarantine"))
            .map_err(|e| LearnError::State {
                path: config.state_dir.clone(),
                reason: e.to_string(),
            })?;
        Ok(Supervisor { config })
    }

    /// Runs (or resumes) the loop until `rounds` rounds are committed.
    ///
    /// # Errors
    ///
    /// Any stream, training, state or serving failure aborts the run;
    /// durable state is only ever advanced at round commit points, so
    /// rerunning after an error resumes from the last good round.
    pub fn run(&self) -> Result<Outcome, LearnError> {
        let dir = &self.config.state_dir;
        let fs = &*self.config.fs;
        let mut state = match SupervisorState::load(fs, dir)? {
            Some(state) => state,
            None => self.bootstrap()?,
        };
        // Post-commit scratch cleanup is not part of any commit: a
        // crash between a round's state commit and its scratch removal
        // leaves strays behind, so finish the sweep here before doing
        // new work (idempotent — missing files are fine).
        for round in 0..state.round {
            let _ = fs.remove_file("learn.scratch.remove", &buffer_path(dir, round));
        }
        for round in 1..=state.round {
            let _ = fs.remove_file("learn.scratch.remove", &self.ckpt_path(round));
        }
        let ref_path = dir.join("reference.csv");
        let reference = Dataset::from_csv_string(
            &fs.read_to_string("learn.reference.read", &ref_path)
                .map_err(durable_err("learn.reference.read", &ref_path))?,
        )?;
        let live = self.load_model(&dir.join(&state.live))?;
        let handle = self.start_server(live, &reference)?;
        // Per-invocation fleet swap counter; cross-checked against the
        // fleet generation the serving tier reports after each reload.
        let mut fleet_swaps = 0u64;
        let mut result = Ok(());
        for round in state.round + 1..=self.config.rounds {
            result = self.run_round(
                &mut state,
                &handle.client,
                &reference,
                &mut fleet_swaps,
                round,
            );
            if result.is_err() {
                break;
            }
        }
        handle.shutdown();
        result?;
        Ok(Outcome {
            rounds: state.round,
            promotions: state.promotions,
            rollbacks: state.rollbacks,
            quarantined: state.quarantined,
            generation: state.generation,
            live: state.live,
        })
    }

    /// Streams the pinned reference window, trains generation 0 and
    /// commits the initial state.
    fn bootstrap(&self) -> Result<SupervisorState, LearnError> {
        let cfg = &self.config;
        let dir = &cfg.state_dir;
        let (ds, summary) = stream_window(&cfg.stream(), 0, cfg.bootstrap_ticks)?;
        if ds.len() < 2 {
            return Err(LearnError::InvalidParameter {
                name: "bootstrap_ticks",
                reason: format!(
                    "bootstrap produced only {} usable samples (need at least 2); widen the window or relax the fault profile",
                    ds.len()
                ),
            });
        }
        let fs = &*cfg.fs;
        let csv = ds.to_csv_string();
        write_atomic(
            fs,
            "learn.reference.write",
            &dir.join("reference.csv"),
            csv.as_bytes(),
        )?;
        write_atomic(
            fs,
            "learn.buffer.write",
            &buffer_path(dir, 0),
            csv.as_bytes(),
        )?;
        let trained = self.builder(0).train(&ds)?;
        self.save_model(&trained.model, &dir.join("model-g0.model"))?;
        let state = SupervisorState {
            round: 0,
            generation: 0,
            promotions: 0,
            rollbacks: 0,
            quarantined: 0,
            live: "model-g0.model".to_string(),
            last_good: "model-g0.model".to_string(),
        };
        let mut events = Vec::new();
        self.emit(
            &mut events,
            format!(
                "event=bootstrap round=0 generation=0 samples={} quarantined={} live=model-g0.model",
                ds.len(),
                summary.quarantined.len()
            ),
        );
        commit_events(fs, dir, 0, &events)?;
        state.save(fs, dir)?;
        Ok(state)
    }

    /// One full round: stream → retrain → shadow → (promote →
    /// probation → maybe rollback) → commit.
    fn run_round(
        &self,
        state: &mut SupervisorState,
        client: &ServeClient,
        reference: &Dataset,
        fleet_swaps: &mut u64,
        round: u64,
    ) -> Result<(), LearnError> {
        let cfg = &self.config;
        let dir = &cfg.state_dir;
        let fs = &*cfg.fs;
        let mut events = Vec::new();

        // 1. Stream the round's window of absolute ticks.
        let start_tick = (cfg.bootstrap_ticks as u64) + (round - 1) * cfg.window as u64;
        let (fresh, summary) = stream_window(&cfg.stream(), start_tick, cfg.window)?;

        // 2. Roll the bounded buffer forward (versioned snapshot so a
        //    replayed round re-reads the untouched previous snapshot).
        let prev_buffer = buffer_path(dir, round - 1);
        let mut buffer = Dataset::from_csv_string(
            &fs.read_to_string("learn.buffer.read", &prev_buffer)
                .map_err(durable_err("learn.buffer.read", &prev_buffer))?,
        )?;
        if !fresh.is_empty() {
            buffer.merge(&fresh)?;
        }
        if buffer.len() > cfg.buffer_cap {
            let start = buffer.len() - cfg.buffer_cap;
            let keep: Vec<usize> = (start..buffer.len()).collect();
            buffer = buffer.subset(&keep)?;
        }
        write_atomic(
            fs,
            "learn.buffer.write",
            &buffer_path(dir, round),
            buffer.to_csv_string().as_bytes(),
        )?;
        self.emit(
            &mut events,
            format!(
                "event=stream round={round} ticks={} accepted={} quarantined={} buffer={}",
                cfg.window,
                fresh.len(),
                summary.quarantined.len(),
                buffer.len()
            ),
        );

        // 3. Hold the most recent samples out of training for shadow
        //    scoring; train on the rest.
        if buffer.len() < 2 {
            return Err(LearnError::State {
                path: buffer_path(dir, round),
                reason: "buffer has fewer than 2 samples; cannot retrain".to_string(),
            });
        }
        let holdout_n = cfg.holdout.min(buffer.len() - 1);
        let split = buffer.len() - holdout_n;
        let train_ds = buffer.subset(&(0..split).collect::<Vec<_>>())?;
        let recent = buffer.subset(&(split..buffer.len()).collect::<Vec<_>>())?;

        // 4. Retrain, resuming from a live checkpoint when one exists.
        let trained = self.retrain(&train_ds, round)?;
        self.emit(
            &mut events,
            format!(
                "event=retrain round={round} epochs={} samples={}",
                trained.report.loss_history.len(),
                train_ds.len()
            ),
        );

        // 5. Shadow-score candidate vs live on recent + reference.
        let live = self.load_model(&dir.join(&state.live))?;
        let candidate = trained.model;
        let cand_recent = score(&candidate, &recent)?;
        let live_recent = score(&live, &recent)?;
        let cand_ref = score(&candidate, reference)?;
        let live_ref = score(&live, reference)?;
        let promote = cand_recent <= live_recent * (1.0 - cfg.margin)
            && cand_ref <= live_ref * (1.0 + cfg.tolerance);
        self.emit(
            &mut events,
            format!(
                "event=shadow round={round} candidate_recent={cand_recent:.6} live_recent={live_recent:.6} candidate_ref={cand_ref:.6} live_ref={live_ref:.6} verdict={}",
                if promote { "promote" } else { "hold" }
            ),
        );

        // 6. Promote through the fleet's validated rolling reload.
        if promote {
            self.promote(state, client, fleet_swaps, round, &candidate, &mut events)?;
        }

        // 7. Commit: flush events, then the state record last (the
        //    commit point). Scratch is dropped only *after* the commit
        //    lands — removing it first would strand a crash that falls
        //    between the removal and the commit with a committed round
        //    number whose input buffer no longer exists.
        state.round = round;
        commit_events(fs, dir, round, &events)?;
        state.save(fs, dir)?;
        let _ = fs.remove_file("learn.scratch.remove", &self.ckpt_path(round));
        let _ = fs.remove_file("learn.scratch.remove", &buffer_path(dir, round - 1));
        Ok(())
    }

    /// Reads a committed model artifact through the configured
    /// filesystem (failpoint site `learn.model.load` — fatal: a
    /// committed model that cannot be read back needs an operator).
    fn load_model(&self, path: &Path) -> Result<WorkloadModel, LearnError> {
        const SITE: &str = "learn.model.load";
        let text = self
            .config
            .fs
            .read_to_string(SITE, path)
            .map_err(durable_err(SITE, path))?;
        WorkloadModel::from_text(&text).map_err(|e| {
            LearnError::Model(ModelError::LoadFailed {
                path: path.to_path_buf(),
                source: Box::new(e),
            })
        })
    }

    /// Trains the round's candidate with periodic checkpoints, resuming
    /// byte-identically from an existing checkpoint (a corrupt one is
    /// discarded and training restarts — same bytes either way).
    fn retrain(&self, train_ds: &Dataset, round: u64) -> Result<TrainedModel, LearnError> {
        let cfg = &self.config;
        let fs = &*cfg.fs;
        let ckpt = self.ckpt_path(round);
        let every = cfg.checkpoint_interval();
        // A failed checkpoint write mid-training surfaces as a typed
        // durable error at its site — the checkpoint is staged and
        // renamed, so rerunning resumes (or restarts) cleanly.
        let ckpt_err = |e: ModelError| match e {
            ModelError::Nn(NnError::Io { path, reason }) => LearnError::Durable {
                site: "nn.checkpoint.write".to_string(),
                path: PathBuf::from(path),
                reason,
                retriable: wlc_fault::site_retriable("nn.checkpoint.write"),
            },
            other => LearnError::Model(other),
        };
        let builder = self.builder(round).checkpoint(&ckpt, every);
        if cfg.chaos_kill_round == Some(round) {
            // Simulate a hard kill: run exactly up to the first
            // checkpoint (the checkpoint bytes do not depend on
            // max_epochs), then die without committing anything.
            self.builder(round)
                .checkpoint(&ckpt, every)
                .max_epochs(every.min(cfg.epochs))
                .train(train_ds)
                .map_err(ckpt_err)?;
            return Err(LearnError::ChaosKill { round });
        }
        let resume = match Checkpoint::load_with(fs, &ckpt) {
            Ok(ck) => Some(ck),
            Err(_) => {
                // Missing or corrupt: retrain from scratch. Remove a
                // corrupt file so the trainer can rewrite it.
                let _ = fs.remove_file("learn.scratch.remove", &ckpt);
                None
            }
        };
        let trained = match resume {
            Some(ck) => builder.train_resuming(train_ds, &ck).map_err(ckpt_err)?,
            None => builder.train(train_ds).map_err(ckpt_err)?,
        };
        Ok(trained)
    }

    /// Saves the candidate, swaps it in via rolling reload, and runs
    /// probation with watchdog-guarded rollback. A candidate the fleet
    /// rejects is quarantined without touching serving.
    fn promote(
        &self,
        state: &mut SupervisorState,
        client: &ServeClient,
        fleet_swaps: &mut u64,
        round: u64,
        candidate: &WorkloadModel,
        events: &mut Vec<String>,
    ) -> Result<(), LearnError> {
        let cfg = &self.config;
        let dir = &cfg.state_dir;
        let next_gen = state.generation + 1;
        let name = format!("model-g{next_gen}.model");
        let path = dir.join(&name);
        self.save_model(candidate, &path)?;
        if cfg.chaos_corrupt_candidate_round == Some(round) {
            // Chaos hook: tear the artifact so the fleet's validated
            // reload must reject it.
            cfg.fs
                .write("learn.model.write", &path, b"wlc-model v1\ntruncated")
                .map_err(|e| LearnError::State {
                    path: path.clone(),
                    reason: e.to_string(),
                })?;
        }
        match client.reload_detailed(&path.to_string_lossy()) {
            Ok(outcome) => {
                *fleet_swaps += 1;
                self.check_fleet(outcome.generation, *fleet_swaps, dir)?;
                state.generation = next_gen;
                state.promotions += 1;
                state.last_good = state.live.clone();
                state.live = name.clone();
                client.notify_supervisor("promotion")?;
                self.emit(
                    events,
                    format!("event=promote round={round} generation={next_gen} model={name}"),
                );
                self.probation(state, client, fleet_swaps, round, events)
            }
            Err(ServeError::Rejected {
                retriable: false, ..
            }) => {
                // The fleet refused the candidate (failed validation);
                // serving is untouched. Quarantine it with a diagnosis.
                self.quarantine(state, round, &name, "reload_rejected", None)?;
                client.notify_supervisor("quarantine")?;
                self.emit(
                    events,
                    format!("event=quarantine round={round} reason=reload_rejected model={name}"),
                );
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Probes the freshly promoted model; a watchdog breach rolls the
    /// fleet back to last-good and quarantines the candidate.
    fn probation(
        &self,
        state: &mut SupervisorState,
        client: &ServeClient,
        fleet_swaps: &mut u64,
        round: u64,
        events: &mut Vec<String>,
    ) -> Result<(), LearnError> {
        let cfg = &self.config;
        let dir = &cfg.state_dir;
        client.notify_supervisor("probation_start")?;
        self.emit(
            events,
            format!(
                "event=probation_start round={round} generation={} probes={}",
                state.generation, cfg.probes
            ),
        );
        if cfg.force_bad_round == Some(round) {
            // Chaos hook: arm forced primary failures so every probe
            // degrades to the baseline, breaching the watchdog.
            client.force_fail(cfg.probes as u64)?;
        }
        let probe_seed = Seed::new(cfg.seed).derive(PROBE_STREAM).derive(round);
        let mut rng = Xoshiro256::seed_from(probe_seed.value());
        let mut breaches = 0usize;
        for _ in 0..cfg.probes {
            let inputs = probe_inputs(&mut rng);
            match client.predict(&inputs) {
                Ok(prediction) if !prediction.degraded => {}
                _ => breaches += 1,
            }
        }
        let rate = breaches as f64 / cfg.probes as f64;
        let breach = rate > cfg.watchdog;
        self.emit(
            events,
            format!(
                "event=probation round={round} probes={} breaches={breaches} verdict={}",
                cfg.probes,
                if breach { "breach" } else { "pass" }
            ),
        );
        if breach {
            // Disarm any leftover forced failures before re-probing the
            // restored model.
            client.force_fail(0)?;
            let bad = state.live.clone();
            let restore = state.last_good.clone();
            let outcome = client.reload_detailed(&dir.join(&restore).to_string_lossy())?;
            *fleet_swaps += 1;
            self.check_fleet(outcome.generation, *fleet_swaps, dir)?;
            state.generation += 1;
            state.rollbacks += 1;
            state.live = restore.clone();
            self.quarantine(
                state,
                round,
                &bad,
                &format!("watchdog breach: {breaches}/{} probes degraded or failed (rate {rate:.3} > {:.3})", cfg.probes, cfg.watchdog),
                Some(&restore),
            )?;
            client.notify_supervisor("rollback")?;
            client.notify_supervisor("quarantine")?;
            self.emit(
                events,
                format!(
                    "event=rollback round={round} generation={} restored={restore} quarantined={bad}",
                    state.generation
                ),
            );
            self.emit(
                events,
                format!("event=quarantine round={round} reason=watchdog model={bad}"),
            );
        }
        client.notify_supervisor("probation_end")?;
        self.emit(events, format!("event=probation_end round={round}"));
        Ok(())
    }

    /// Moves a bad candidate into `quarantine/` with a diagnosis record.
    fn quarantine(
        &self,
        state: &mut SupervisorState,
        round: u64,
        name: &str,
        reason: &str,
        restored: Option<&str>,
    ) -> Result<(), LearnError> {
        const SITE: &str = "learn.quarantine.write";
        let dir = &self.config.state_dir;
        let fs = &*self.config.fs;
        let src = dir.join(name);
        let dst = dir.join("quarantine").join(format!("round-{round}.model"));
        let bytes = fs.read(SITE, &src).map_err(durable_err(SITE, &src))?;
        write_atomic(fs, SITE, &dst, &bytes)?;
        let _ = fs.remove_file("learn.scratch.remove", &src);
        let mut diagnosis =
            format!("wlc-learn-diagnosis v1\nround {round}\nmodel {name}\nreason {reason}\n");
        if let Some(restored) = restored {
            diagnosis.push_str(&format!("restored {restored}\n"));
        }
        write_atomic(
            fs,
            SITE,
            &dir.join("quarantine")
                .join(format!("round-{round}.diagnosis")),
            diagnosis.as_bytes(),
        )?;
        state.quarantined += 1;
        Ok(())
    }

    /// Asserts the fleet's committed generation matches the number of
    /// swaps this invocation performed — i.e. serving only ever moved
    /// when the supervisor asked it to.
    fn check_fleet(&self, fleet: u64, swaps: u64, dir: &Path) -> Result<(), LearnError> {
        if fleet != swaps {
            return Err(LearnError::State {
                path: dir.to_path_buf(),
                reason: format!(
                    "fleet generation {fleet} diverged from supervisor swap count {swaps}"
                ),
            });
        }
        Ok(())
    }

    fn builder(&self, round: u64) -> WorkloadModelBuilder {
        let cfg = &self.config;
        let mut builder = WorkloadModelBuilder::new().no_hidden_layers();
        for &width in &cfg.hidden {
            builder = builder.hidden_layer(width);
        }
        builder
            .max_epochs(cfg.epochs)
            .learning_rate(cfg.learning_rate)
            .no_termination_threshold()
            .batch_size(cfg.batch_size)
            .seed(
                Seed::new(cfg.seed)
                    .derive(RETRAIN_STREAM)
                    .derive(round)
                    .value(),
            )
            .recover(2)
            .halt_on_divergence(true)
            .checkpoint_fs(cfg.fs.clone())
    }

    /// Saves a model artifact crash-safely (write + fsync + rename;
    /// failpoint site `learn.model.write`).
    fn save_model(&self, model: &WorkloadModel, path: &Path) -> Result<(), LearnError> {
        write_atomic(
            &*self.config.fs,
            "learn.model.write",
            path,
            model.to_text().as_bytes(),
        )
    }

    fn ckpt_path(&self, round: u64) -> PathBuf {
        self.config.state_dir.join(format!("retrain-{round}.ckpt"))
    }

    /// Boots the in-process serving fleet on an ephemeral port with the
    /// committed live model and a linear baseline fit on the reference
    /// window.
    fn start_server(
        &self,
        live: WorkloadModel,
        reference: &Dataset,
    ) -> Result<ServerHandle, LearnError> {
        let cfg = &self.config;
        let baseline = LinearModel::fit(reference, LinearFeatures::FirstOrder)?;
        let bundle = FallbackModel::new(Some(live), Some(baseline), Vec::new(), Vec::new())?;
        let serve_config = ServeConfig {
            replicas: cfg.replicas,
            workers: cfg.workers,
            queue_capacity: cfg.queue_capacity,
            // Keep the breaker closed across a fully forced-bad
            // probation window so post-rollback probes reach the
            // primary immediately (the breaker's own behaviour is
            // covered by the serving tier's tests).
            breaker_threshold: cfg.probes as u32 + 1,
            // Reload candidates through the supervisor's filesystem so
            // fault schedules and the simulated crash model cover the
            // fleet's reads too.
            fs: cfg.fs.clone(),
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", bundle, serve_config)?;
        let addr = server.local_addr().to_string();
        let thread = thread::spawn(move || server.run());
        let client = ServeClient::new(addr, ClientConfig::default());
        Ok(ServerHandle {
            client,
            thread: Some(thread),
        })
    }

    fn emit(&self, events: &mut Vec<String>, line: String) {
        if !self.config.quiet {
            println!("{line}");
        }
        events.push(line);
    }
}

/// Shadow score: mean relative error across outputs and samples.
///
/// Unlike the paper's harmonic-mean metric (which rejects an output
/// column whose actuals are all zero), this stays defined on the tiny
/// recent-holdout windows the supervisor compares on: samples with a
/// zero actual are skipped, and an output with no usable samples
/// simply contributes nothing. Lower is better; both models are scored
/// with the same rule, so the comparison is fair.
fn score(model: &WorkloadModel, dataset: &Dataset) -> Result<f64, LearnError> {
    let (xs, ys) = dataset.to_matrices();
    let predicted = model.predict_batch(&xs)?;
    let mut total = 0.0;
    let mut columns = 0usize;
    for j in 0..ys.cols() {
        let mut sum = 0.0;
        let mut used = 0usize;
        for r in 0..ys.rows() {
            let actual = ys.get(r, j);
            if actual != 0.0 {
                sum += (predicted.get(r, j) - actual).abs() / actual.abs();
                used += 1;
            }
        }
        if used > 0 {
            total += sum / used as f64;
            columns += 1;
        }
    }
    Ok(if columns == 0 {
        0.0
    } else {
        total / columns as f64
    })
}

/// Draws one probe configuration from the `wlc collect` default
/// ranges, matching the stream's own sampler (rate, default threads,
/// manufacturing threads, web threads — thread counts rounded).
fn probe_inputs(rng: &mut Xoshiro256) -> Vec<f64> {
    vec![
        rng.next_range(RATE_RANGE.0, RATE_RANGE.1),
        rng.next_range(DEFAULT_RANGE.0, DEFAULT_RANGE.1).round(),
        rng.next_range(MFG_RANGE.0, MFG_RANGE.1).round(),
        rng.next_range(WEB_RANGE.0, WEB_RANGE.1).round(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_bad_values() {
        let ok = LearnConfig::default();
        assert!(ok.validate().is_ok());
        type Mutation = Box<dyn Fn(&mut LearnConfig)>;
        let cases: Vec<(&str, Mutation)> = vec![
            ("rounds", Box::new(|c| c.rounds = 0)),
            ("window", Box::new(|c| c.window = 0)),
            ("holdout", Box::new(|c| c.holdout = 0)),
            ("buffer_cap", Box::new(|c| c.buffer_cap = 3)),
            ("bootstrap_ticks", Box::new(|c| c.bootstrap_ticks = 1)),
            ("epochs", Box::new(|c| c.epochs = 0)),
            ("learning_rate", Box::new(|c| c.learning_rate = 0.0)),
            ("batch_size", Box::new(|c| c.batch_size = 0)),
            ("hidden", Box::new(|c| c.hidden = vec![4, 0])),
            ("margin", Box::new(|c| c.margin = 1.0)),
            ("tolerance", Box::new(|c| c.tolerance = -0.1)),
            ("probes", Box::new(|c| c.probes = 0)),
            ("watchdog", Box::new(|c| c.watchdog = 0.0)),
            ("duration_secs", Box::new(|c| c.duration_secs = 0.2)),
            ("replicas", Box::new(|c| c.replicas = 0)),
            ("workers", Box::new(|c| c.workers = 0)),
            ("queue_capacity", Box::new(|c| c.queue_capacity = 0)),
        ];
        for (name, mutate) in cases {
            let mut cfg = LearnConfig::default();
            mutate(&mut cfg);
            match cfg.validate() {
                Err(LearnError::InvalidParameter { name: got, .. }) => {
                    assert_eq!(got, name, "wrong parameter blamed");
                }
                other => panic!("`{name}` should be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn probe_inputs_stay_in_collect_ranges_and_are_seeded() {
        let mut a = Xoshiro256::seed_from(7);
        let mut b = Xoshiro256::seed_from(7);
        for _ in 0..32 {
            let inputs = probe_inputs(&mut a);
            assert_eq!(inputs, probe_inputs(&mut b));
            assert!(inputs[0] >= RATE_RANGE.0 && inputs[0] <= RATE_RANGE.1);
            assert!(inputs[1] >= DEFAULT_RANGE.0 && inputs[1] <= DEFAULT_RANGE.1);
            assert!(inputs[2] >= MFG_RANGE.0 && inputs[2] <= MFG_RANGE.1);
            assert!(inputs[3] >= WEB_RANGE.0 && inputs[3] <= WEB_RANGE.1);
        }
    }

    #[test]
    fn checkpoint_interval_defaults_to_quarter_epochs() {
        let mut cfg = LearnConfig {
            epochs: 400,
            checkpoint_every: 0,
            ..LearnConfig::default()
        };
        assert_eq!(cfg.checkpoint_interval(), 100);
        cfg.epochs = 2;
        assert_eq!(cfg.checkpoint_interval(), 1);
        cfg.checkpoint_every = 7;
        assert_eq!(cfg.checkpoint_interval(), 7);
    }
}
