//! Durable supervisor state: crash-safe writes, the committed
//! `state.txt` record, and the idempotent event log.
//!
//! Every durable transition goes through a [`wlc_fault::Fs`] handle, so
//! the crash-consistency sweep can run the whole supervisor against a
//! [`wlc_fault::SimFs`] and replay simulated power cuts at every
//! recorded filesystem op. Failures surface as
//! [`LearnError::Durable`] carrying the per-site retriability pinned in
//! `wlc_fault::SITE_POLICY`.

use std::io;
use std::path::{Path, PathBuf};

use wlc_fault::Fs;

use crate::LearnError;

/// Name of the committed state record inside the state directory.
pub(crate) const STATE_FILE: &str = "state.txt";
/// Name of the append-only event log inside the state directory.
pub(crate) const EVENTS_FILE: &str = "events.log";

const STATE_HEADER: &str = "wlc-learn-state v1";

/// Maps an I/O failure at `site` on `path` to [`LearnError::Durable`].
pub(crate) fn durable_err<'a>(
    site: &'a str,
    path: &'a Path,
) -> impl FnOnce(io::Error) -> LearnError + 'a {
    move |e| LearnError::Durable {
        site: site.to_string(),
        path: path.to_path_buf(),
        reason: e.to_string(),
        retriable: wlc_fault::site_retriable(site),
    }
}

/// Writes `bytes` to `path` crash-safely through `fs`: the payload goes
/// to a `.tmp` sibling first, is `fsync`ed, and only then renamed over
/// the target. A crash at any point leaves either the old complete file
/// or a stray `.tmp` that readers never look at. `site` names the
/// failpoint (three hits per call: write, sync, rename).
pub(crate) fn write_atomic(
    fs: &dyn Fs,
    site: &str,
    path: &Path,
    bytes: &[u8],
) -> Result<(), LearnError> {
    wlc_fault::write_atomic(fs, site, path, bytes).map_err(durable_err(site, path))
}

/// The committed supervisor record. `state.txt` is always the *last*
/// file written in a round, making it the single commit point: every
/// other artifact a round produces is recomputed byte-identically when
/// the round replays after a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorState {
    /// Last fully committed round (0 = bootstrap only).
    pub round: u64,
    /// Fleet swap counter: +1 per promotion *and* per rollback.
    pub generation: u64,
    /// Successful promotions so far.
    pub promotions: u64,
    /// Watchdog-triggered rollbacks so far.
    pub rollbacks: u64,
    /// Candidates quarantined so far (rejected reloads + rollbacks).
    pub quarantined: u64,
    /// File name (inside the state dir) of the model now serving.
    pub live: String,
    /// File name of the newest model known good before `live`.
    pub last_good: String,
}

impl SupervisorState {
    /// Loads the committed state, or `None` when no `state.txt` exists
    /// yet (fresh directory, or a crash before the bootstrap commit).
    /// Failpoint site `learn.state.load`; an unreadable *existing*
    /// state file is fatal — rerunning cannot recompute the commit
    /// point.
    pub fn load(fs: &dyn Fs, dir: &Path) -> Result<Option<SupervisorState>, LearnError> {
        const SITE: &str = "learn.state.load";
        let path = dir.join(STATE_FILE);
        let text = match fs.read_to_string(SITE, &path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(durable_err(SITE, &path)(e)),
        };
        Self::parse(&text)
            .map(Some)
            .map_err(|reason| LearnError::State { path, reason })
    }

    /// Commits this record to `state.txt` crash-safely (failpoint site
    /// `learn.state.commit`).
    pub fn save(&self, fs: &dyn Fs, dir: &Path) -> Result<(), LearnError> {
        let text = format!(
            "{STATE_HEADER}\nround {}\ngeneration {}\npromotions {}\nrollbacks {}\nquarantined {}\nlive {}\nlast_good {}\n",
            self.round,
            self.generation,
            self.promotions,
            self.rollbacks,
            self.quarantined,
            self.live,
            self.last_good,
        );
        write_atomic(
            fs,
            "learn.state.commit",
            &dir.join(STATE_FILE),
            text.as_bytes(),
        )
    }

    fn parse(text: &str) -> Result<SupervisorState, String> {
        // The record is written atomically and always newline-
        // terminated; a missing terminator means the bytes were torn
        // (and a torn final field would otherwise still parse).
        if !text.ends_with('\n') {
            return Err("truncated record (missing trailing newline)".to_string());
        }
        let mut lines = text.lines();
        match lines.next() {
            Some(STATE_HEADER) => {}
            other => return Err(format!("bad header {other:?}")),
        }
        let mut field = |name: &str| -> Result<String, String> {
            let line = lines.next().ok_or_else(|| format!("missing `{name}`"))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| format!("expected `{name} <value>`, got {line:?}"))
        };
        let number = |name: &str, value: String| -> Result<u64, String> {
            value
                .parse::<u64>()
                .map_err(|_| format!("`{name}` is not a count: {value:?}"))
        };
        let round = number("round", field("round")?)?;
        let generation = number("generation", field("generation")?)?;
        let promotions = number("promotions", field("promotions")?)?;
        let rollbacks = number("rollbacks", field("rollbacks")?)?;
        let quarantined = number("quarantined", field("quarantined")?)?;
        let live = field("live")?;
        let last_good = field("last_good")?;
        if live.is_empty() || last_good.is_empty() {
            return Err("empty model name".to_string());
        }
        Ok(SupervisorState {
            round,
            generation,
            promotions,
            rollbacks,
            quarantined,
            live,
            last_good,
        })
    }
}

/// Commits `lines` (all tagged `round={round}`) to the event log
/// (failpoint site `learn.events.commit`).
///
/// The log is rewritten atomically as *earlier rounds + these lines*:
/// any line from `round` or later already present (left behind by a
/// crash between the event commit and the `state.txt` commit) is
/// dropped first, so replaying a round never duplicates its events and
/// the log stays byte-identical to an uninterrupted run.
pub(crate) fn commit_events(
    fs: &dyn Fs,
    dir: &Path,
    round: u64,
    lines: &[String],
) -> Result<(), LearnError> {
    const SITE: &str = "learn.events.commit";
    let path = dir.join(EVENTS_FILE);
    let existing = match fs.read_to_string(SITE, &path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(durable_err(SITE, &path)(e)),
    };
    let mut out = String::new();
    for line in existing.lines() {
        if event_round(line).is_some_and(|r| r < round) {
            out.push_str(line);
            out.push('\n');
        }
    }
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    write_atomic(fs, SITE, &path, out.as_bytes())
}

/// Extracts the `round=N` tag from an event line.
fn event_round(line: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|token| token.strip_prefix("round="))
        .and_then(|value| value.parse().ok())
}

/// Returns `path` for a buffer snapshot committed at `round`.
pub(crate) fn buffer_path(dir: &Path, round: u64) -> PathBuf {
    dir.join(format!("buffer-{round}.csv"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use wlc_fault::RealFs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wlc-learn-state-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn state_round_trips() {
        let dir = temp_dir("roundtrip");
        let state = SupervisorState {
            round: 3,
            generation: 4,
            promotions: 3,
            rollbacks: 1,
            quarantined: 2,
            live: "model-g3.model".to_string(),
            last_good: "model-g2.model".to_string(),
        };
        state.save(&RealFs, &dir).unwrap();
        assert_eq!(SupervisorState::load(&RealFs, &dir).unwrap(), Some(state));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_state_is_none_and_garbage_is_an_error() {
        let dir = temp_dir("garbage");
        assert_eq!(SupervisorState::load(&RealFs, &dir).unwrap(), None);
        fs::write(dir.join(STATE_FILE), "not a state file\n").unwrap();
        assert!(matches!(
            SupervisorState::load(&RealFs, &dir),
            Err(LearnError::State { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn event_commit_drops_replayed_rounds() {
        let dir = temp_dir("events");
        commit_events(&RealFs, &dir, 0, &["event=bootstrap round=0".to_string()]).unwrap();
        commit_events(&RealFs, &dir, 1, &["event=stream round=1".to_string()]).unwrap();
        // A crash after the round-2 event commit but before the state
        // commit leaves round-2 lines behind; replaying round 2 must
        // not duplicate them.
        commit_events(
            &RealFs,
            &dir,
            2,
            &["event=stream round=2 attempt=first".to_string()],
        )
        .unwrap();
        commit_events(
            &RealFs,
            &dir,
            2,
            &["event=stream round=2 attempt=replay".to_string()],
        )
        .unwrap();
        let log = fs::read_to_string(dir.join(EVENTS_FILE)).unwrap();
        assert_eq!(
            log,
            "event=bootstrap round=0\nevent=stream round=1\nevent=stream round=2 attempt=replay\n"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let dir = temp_dir("atomic");
        let path = dir.join("state.txt");
        write_atomic(&RealFs, "learn.state.commit", &path, b"hello\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "hello\n");
        assert!(!wlc_fault::tmp_sibling(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_byte_prefix_of_a_state_record_is_rejected() {
        let dir = PathBuf::from("state");
        let sim = wlc_fault::SimFs::new();
        sim.create_dir_all("test.setup", &dir).unwrap();
        let state = SupervisorState {
            round: 2,
            generation: 3,
            promotions: 2,
            rollbacks: 1,
            quarantined: 1,
            live: "model-g3.model".to_string(),
            last_good: "model-g2.model".to_string(),
        };
        state.save(&sim, &dir).unwrap();
        let full = sim.read("test.read", &dir.join(STATE_FILE)).unwrap();
        // A torn prefix must never load as a (different) valid record —
        // e.g. `last_good model-g2.mod` still parses field-wise.
        for cut in 0..full.len() {
            sim.write("test.setup", &dir.join(STATE_FILE), &full[..cut])
                .unwrap();
            match SupervisorState::load(&sim, &dir) {
                Err(LearnError::State { .. }) => {}
                other => panic!("prefix of {cut} bytes must be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn injected_failures_become_typed_durable_errors() {
        let dir = PathBuf::from("state");
        for (hit, kind) in [
            (0, wlc_fault::FaultKind::ShortWrite),
            (1, wlc_fault::FaultKind::SyncFail),
            (2, wlc_fault::FaultKind::RenameFail),
        ] {
            let sim = wlc_fault::SimFs::with_plan(wlc_fault::FailPlan::single(
                "learn.state.commit",
                hit,
                kind,
            ));
            sim.create_dir_all("test.setup", &dir).unwrap();
            let state = SupervisorState {
                round: 1,
                generation: 1,
                promotions: 1,
                rollbacks: 0,
                quarantined: 0,
                live: "model-g1.model".to_string(),
                last_good: "model-g0.model".to_string(),
            };
            let err = state.save(&sim, &dir).unwrap_err();
            match err {
                LearnError::Durable {
                    site,
                    retriable,
                    reason,
                    ..
                } => {
                    assert_eq!(site, "learn.state.commit");
                    assert!(retriable, "commit writes are retriable by rerun");
                    assert!(reason.contains("injected"), "{reason}");
                }
                other => panic!("expected Durable, got {other:?}"),
            }
            // The real name was never produced: the fault hit the
            // staging path, so a reader still sees no state at all.
            assert_eq!(SupervisorState::load(&sim, &dir).unwrap(), None);
            // The schedule is consumed: the retry succeeds.
            state.save(&sim, &dir).unwrap();
            assert_eq!(SupervisorState::load(&sim, &dir).unwrap(), Some(state));
        }
    }
}
