//! Durable supervisor state: crash-safe writes, the committed
//! `state.txt` record, and the idempotent event log.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::LearnError;

/// Name of the committed state record inside the state directory.
pub(crate) const STATE_FILE: &str = "state.txt";
/// Name of the append-only event log inside the state directory.
pub(crate) const EVENTS_FILE: &str = "events.log";

const STATE_HEADER: &str = "wlc-learn-state v1";

/// Writes `bytes` to `path` crash-safely: the payload goes to a `.tmp`
/// sibling first, is `fsync`ed, and only then renamed over the target.
/// A crash at any point leaves either the old complete file or a stray
/// `.tmp` that readers never look at.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), LearnError> {
    let tmp = path.with_extension("tmp");
    let io_err = |e: io::Error| LearnError::State {
        path: path.to_path_buf(),
        reason: e.to_string(),
    };
    let mut file = File::create(&tmp).map_err(io_err)?;
    file.write_all(bytes).map_err(io_err)?;
    // Flush to stable storage before the rename makes the bytes visible
    // under the real name.
    file.sync_all().map_err(io_err)?;
    drop(file);
    fs::rename(&tmp, path).map_err(io_err)
}

/// The committed supervisor record. `state.txt` is always the *last*
/// file written in a round, making it the single commit point: every
/// other artifact a round produces is recomputed byte-identically when
/// the round replays after a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorState {
    /// Last fully committed round (0 = bootstrap only).
    pub round: u64,
    /// Fleet swap counter: +1 per promotion *and* per rollback.
    pub generation: u64,
    /// Successful promotions so far.
    pub promotions: u64,
    /// Watchdog-triggered rollbacks so far.
    pub rollbacks: u64,
    /// Candidates quarantined so far (rejected reloads + rollbacks).
    pub quarantined: u64,
    /// File name (inside the state dir) of the model now serving.
    pub live: String,
    /// File name of the newest model known good before `live`.
    pub last_good: String,
}

impl SupervisorState {
    /// Loads the committed state, or `None` when no `state.txt` exists
    /// yet (fresh directory, or a crash before the bootstrap commit).
    pub fn load(dir: &Path) -> Result<Option<SupervisorState>, LearnError> {
        let path = dir.join(STATE_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(LearnError::State {
                    path,
                    reason: e.to_string(),
                })
            }
        };
        Self::parse(&text)
            .map(Some)
            .map_err(|reason| LearnError::State { path, reason })
    }

    /// Commits this record to `state.txt` crash-safely.
    pub fn save(&self, dir: &Path) -> Result<(), LearnError> {
        let text = format!(
            "{STATE_HEADER}\nround {}\ngeneration {}\npromotions {}\nrollbacks {}\nquarantined {}\nlive {}\nlast_good {}\n",
            self.round,
            self.generation,
            self.promotions,
            self.rollbacks,
            self.quarantined,
            self.live,
            self.last_good,
        );
        write_atomic(&dir.join(STATE_FILE), text.as_bytes())
    }

    fn parse(text: &str) -> Result<SupervisorState, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(STATE_HEADER) => {}
            other => return Err(format!("bad header {other:?}")),
        }
        let mut field = |name: &str| -> Result<String, String> {
            let line = lines.next().ok_or_else(|| format!("missing `{name}`"))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| format!("expected `{name} <value>`, got {line:?}"))
        };
        let number = |name: &str, value: String| -> Result<u64, String> {
            value
                .parse::<u64>()
                .map_err(|_| format!("`{name}` is not a count: {value:?}"))
        };
        let round = number("round", field("round")?)?;
        let generation = number("generation", field("generation")?)?;
        let promotions = number("promotions", field("promotions")?)?;
        let rollbacks = number("rollbacks", field("rollbacks")?)?;
        let quarantined = number("quarantined", field("quarantined")?)?;
        let live = field("live")?;
        let last_good = field("last_good")?;
        if live.is_empty() || last_good.is_empty() {
            return Err("empty model name".to_string());
        }
        Ok(SupervisorState {
            round,
            generation,
            promotions,
            rollbacks,
            quarantined,
            live,
            last_good,
        })
    }
}

/// Commits `lines` (all tagged `round={round}`) to the event log.
///
/// The log is rewritten atomically as *earlier rounds + these lines*:
/// any line from `round` or later already present (left behind by a
/// crash between the event commit and the `state.txt` commit) is
/// dropped first, so replaying a round never duplicates its events and
/// the log stays byte-identical to an uninterrupted run.
pub(crate) fn commit_events(dir: &Path, round: u64, lines: &[String]) -> Result<(), LearnError> {
    let path = dir.join(EVENTS_FILE);
    let existing = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            return Err(LearnError::State {
                path,
                reason: e.to_string(),
            })
        }
    };
    let mut out = String::new();
    for line in existing.lines() {
        if event_round(line).is_some_and(|r| r < round) {
            out.push_str(line);
            out.push('\n');
        }
    }
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    write_atomic(&path, out.as_bytes())
}

/// Extracts the `round=N` tag from an event line.
fn event_round(line: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|token| token.strip_prefix("round="))
        .and_then(|value| value.parse().ok())
}

/// Returns `path` for a buffer snapshot committed at `round`.
pub(crate) fn buffer_path(dir: &Path, round: u64) -> PathBuf {
    dir.join(format!("buffer-{round}.csv"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wlc-learn-state-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn state_round_trips() {
        let dir = temp_dir("roundtrip");
        let state = SupervisorState {
            round: 3,
            generation: 4,
            promotions: 3,
            rollbacks: 1,
            quarantined: 2,
            live: "model-g3.model".to_string(),
            last_good: "model-g2.model".to_string(),
        };
        state.save(&dir).unwrap();
        assert_eq!(SupervisorState::load(&dir).unwrap(), Some(state));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_state_is_none_and_garbage_is_an_error() {
        let dir = temp_dir("garbage");
        assert_eq!(SupervisorState::load(&dir).unwrap(), None);
        fs::write(dir.join(STATE_FILE), "not a state file\n").unwrap();
        assert!(matches!(
            SupervisorState::load(&dir),
            Err(LearnError::State { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn event_commit_drops_replayed_rounds() {
        let dir = temp_dir("events");
        commit_events(&dir, 0, &["event=bootstrap round=0".to_string()]).unwrap();
        commit_events(&dir, 1, &["event=stream round=1".to_string()]).unwrap();
        // A crash after the round-2 event commit but before the state
        // commit leaves round-2 lines behind; replaying round 2 must
        // not duplicate them.
        commit_events(&dir, 2, &["event=stream round=2 attempt=first".to_string()]).unwrap();
        commit_events(
            &dir,
            2,
            &["event=stream round=2 attempt=replay".to_string()],
        )
        .unwrap();
        let log = fs::read_to_string(dir.join(EVENTS_FILE)).unwrap();
        assert_eq!(
            log,
            "event=bootstrap round=0\nevent=stream round=1\nevent=stream round=2 attempt=replay\n"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let dir = temp_dir("atomic");
        let path = dir.join("state.txt");
        write_atomic(&path, b"hello\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "hello\n");
        assert!(!path.with_extension("tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
