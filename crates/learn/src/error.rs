//! Error type for the continuous-learning supervisor.

use std::fmt;
use std::path::PathBuf;

use wlc_data::DataError;
use wlc_model::ModelError;
use wlc_serve::ServeError;
use wlc_sim::SimError;

/// Everything that can go wrong while supervising the learning loop.
#[derive(Debug)]
#[non_exhaustive]
pub enum LearnError {
    /// A configuration value was out of range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// Durable supervisor state could not be read or written.
    State {
        /// The file involved.
        path: PathBuf,
        /// What went wrong.
        reason: String,
    },
    /// The `chaos_kill_round` hook fired: the supervisor wrote its
    /// mid-retrain checkpoint and then died without committing,
    /// simulating a hard kill. Re-running the same config resumes.
    ChaosKill {
        /// The round that was killed.
        round: u64,
    },
    /// The simulator rejected a stream request.
    Sim(SimError),
    /// A dataset operation failed.
    Data(DataError),
    /// Training, scoring or model persistence failed.
    Model(ModelError),
    /// The serving tier rejected a request.
    Serve(ServeError),
    /// Durable storage failed at a fault-injection site (write, fsync
    /// or rename of a committed artifact, or an unreadable committed
    /// file). `retriable` carries the per-site policy pinned by
    /// `wlc_fault::SITE_POLICY`: retriable failures resolve by simply
    /// rerunning the supervisor (it resumes from the last committed
    /// round); fatal ones need operator attention first. Exit code 6.
    Durable {
        /// The failpoint site (`learn.state.commit`, ...).
        site: String,
        /// The file involved.
        path: PathBuf,
        /// The underlying failure.
        reason: String,
        /// Whether rerunning can reasonably succeed.
        retriable: bool,
    },
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            LearnError::State { path, reason } => {
                write!(f, "supervisor state {}: {reason}", path.display())
            }
            LearnError::ChaosKill { round } => {
                write!(f, "chaos: supervisor killed mid-retrain in round {round}")
            }
            LearnError::Sim(e) => write!(f, "stream: {e}"),
            LearnError::Data(e) => write!(f, "dataset: {e}"),
            LearnError::Model(e) => write!(f, "model: {e}"),
            LearnError::Serve(e) => write!(f, "serving: {e}"),
            LearnError::Durable {
                site,
                path,
                reason,
                retriable,
            } => {
                let kind = if *retriable { "retriable" } else { "fatal" };
                write!(
                    f,
                    "durable storage failure at {site} ({kind}) on `{}`: {reason}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for LearnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LearnError::Sim(e) => Some(e),
            LearnError::Data(e) => Some(e),
            LearnError::Model(e) => Some(e),
            LearnError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for LearnError {
    fn from(e: SimError) -> Self {
        LearnError::Sim(e)
    }
}

impl From<DataError> for LearnError {
    fn from(e: DataError) -> Self {
        LearnError::Data(e)
    }
}

impl From<ModelError> for LearnError {
    fn from(e: ModelError) -> Self {
        LearnError::Model(e)
    }
}

impl From<ServeError> for LearnError {
    fn from(e: ServeError) -> Self {
        LearnError::Serve(e)
    }
}
