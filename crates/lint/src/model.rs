//! A shallow structural model of one Rust source file, built from the
//! token stream: functions (with impl-type context and body ranges),
//! `#[cfg(test)]` / `#[test]` regions, struct fields holding locks,
//! lock statics, enum variants, and `// wlc-lint:` annotations.

use crate::lexer::{Comment, TokKind, Token};

/// Type names treated as lock primitives.
pub const LOCK_TYPES: [&str; 6] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "TrackedMutex",
    "TrackedRwLock",
    "TrackedCondvar",
];

/// Condvar-like types: recognized so their `wait` calls are not
/// mistaken for ordinary method calls, but they are not order nodes.
pub const CONDVAR_TYPES: [&str; 2] = ["Condvar", "TrackedCondvar"];

/// Any struct field, with its declared type rendered as joined tokens.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Owning struct name.
    pub owner: String,
    /// Field name.
    pub field: String,
    /// Type tokens joined with spaces (`Mutex < Vec < T > >`).
    pub ty: String,
    /// Declaration line.
    pub line: u32,
}

/// A struct field whose type mentions a lock primitive.
#[derive(Debug, Clone)]
pub struct LockField {
    /// Owning struct name.
    pub owner: String,
    /// Field name.
    pub field: String,
    /// The lock type mentioned (first match from [`LOCK_TYPES`]).
    pub kind: String,
    /// Declaration line.
    pub line: u32,
}

impl LockField {
    /// The lock-class identity used by the order graph.
    pub fn id(&self) -> String {
        format!("{}.{}", self.owner, self.field)
    }

    /// Whether this field is a condition variable (not an order node).
    pub fn is_condvar(&self) -> bool {
        CONDVAR_TYPES.contains(&self.kind.as_str())
    }
}

/// A function (or method) definition.
#[derive(Debug, Clone)]
pub struct FuncDef {
    /// Qualified name: `Type::name` for methods, `name` for free fns.
    pub qual: String,
    /// Bare name.
    pub name: String,
    /// Enclosing `impl` type, if any.
    pub self_type: Option<String>,
    /// Token index of the `fn` keyword (signature runs to `body.0`).
    pub sig_start: usize,
    /// Token index range of the body, `[open_brace, close_brace]`.
    pub body: (usize, usize),
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Whether the function is test code (`#[test]`, or inside a
    /// `#[cfg(test)]` item).
    pub is_test: bool,
}

/// An enum definition with its variant names.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variant names with declaration lines.
    pub variants: Vec<(String, u32)>,
}

/// A parsed `// wlc-lint: allow(rule, reason = "...")` or
/// `// wlc-lint: sanitize(rule, reason = "...")` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule name inside `allow(...)` / `sanitize(...)`.
    pub rule: String,
    /// Line the annotation comment is on.
    pub line: u32,
    /// True for `sanitize(...)`: the line is declared clean at the
    /// dataflow level (taint stops here) rather than merely suppressed.
    pub sanitize: bool,
    /// Grammar error, if the annotation is malformed (e.g. no reason).
    pub error: Option<String>,
}

/// The structural model of one file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Every struct field, with its declared type.
    pub fields: Vec<FieldDef>,
    /// Struct fields holding lock primitives.
    pub lock_fields: Vec<LockField>,
    /// `static NAME: ...Mutex...` declarations (lock statics).
    pub lock_statics: Vec<(String, u32)>,
    /// All functions, in source order.
    pub functions: Vec<FuncDef>,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
    /// Token index ranges `[start, end]` that are test code.
    pub test_ranges: Vec<(usize, usize)>,
    /// Parsed `wlc-lint:` annotations.
    pub allows: Vec<Allow>,
}

impl FileModel {
    /// Whether token index `i` falls inside test code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| i >= s && i <= e)
    }

    /// Whether a finding of `rule` on `line` is suppressed by an allow
    /// annotation on the same line or the line above.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.error.is_none()
                && !a.sanitize
                && a.rule == rule
                && (a.line == line || a.line + 1 == line)
        })
    }

    /// Whether `line` carries a valid `sanitize(rule, ...)` annotation
    /// (same line or the line above).
    pub fn sanitized(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.error.is_none()
                && a.sanitize
                && a.rule == rule
                && (a.line == line || a.line + 1 == line)
        })
    }
}

/// Finds the matching close brace for the open brace at `open`.
/// Returns the index of the close brace (or the last token).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Scans forward from `i` for the body `{` of an item header (fn, impl,
/// mod, struct, enum), at zero paren/bracket depth. Returns `Ok(index)`
/// of the brace, or `Err(index)` of a terminating `;` (no body).
fn find_body_brace(tokens: &[Token], mut i: usize) -> Result<usize, usize> {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_punct('{') {
                return Ok(i);
            }
            if t.is_punct(';') {
                return Err(i);
            }
        }
        i += 1;
    }
    Err(tokens.len().saturating_sub(1))
}

/// Extracts the self type from the tokens of an `impl` header
/// (`impl<T> Foo<T>`, `impl Trait for Foo`, ...).
fn impl_self_type(tokens: &[Token], impl_idx: usize, brace: usize) -> Option<String> {
    let header = &tokens[impl_idx + 1..brace];
    // If a `for` is present (trait impl), the self type follows it.
    let start = header
        .iter()
        .position(|t| t.is_ident("for"))
        .map(|p| p + 1)
        .unwrap_or_else(|| {
            // Skip leading generics `<...>`.
            if header.first().is_some_and(|t| t.is_punct('<')) {
                let mut depth = 0i64;
                for (k, t) in header.iter().enumerate() {
                    if t.is_punct('<') {
                        depth += 1;
                    } else if t.is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            return k + 1;
                        }
                    }
                }
            }
            0
        });
    // Self type = last identifier of the leading path (skip `&`, `dyn`,
    // `mut`), before any generic arguments.
    let mut name = None;
    for t in header[start.min(header.len())..].iter() {
        match t.kind {
            TokKind::Ident if t.text == "dyn" || t.text == "mut" => {}
            TokKind::Ident => name = Some(t.text.clone()),
            TokKind::Punct if t.is_punct(':') || t.is_punct('&') => {}
            TokKind::Lifetime => {}
            _ => break, // `<` of generic args, `where`, etc.
        }
    }
    name
}

/// Collected attribute information preceding an item.
#[derive(Debug, Default, Clone, Copy)]
struct Attrs {
    is_test_fn: bool,
    is_cfg_test: bool,
}

/// Parses one `#[...]` attribute starting at the `#`; returns the index
/// just past the closing `]` and whether it was `#[test]`/`#[cfg(test)]`.
fn parse_attr(tokens: &[Token], i: usize) -> (usize, Attrs) {
    let mut attrs = Attrs::default();
    let mut j = i + 1;
    if j < tokens.len() && tokens[j].is_punct('!') {
        j += 1; // inner attribute `#![...]`
    }
    if j >= tokens.len() || !tokens[j].is_punct('[') {
        return (i + 1, attrs);
    }
    let mut depth = 0i64;
    let start = j;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    let body = &tokens[start..=j.min(tokens.len() - 1)];
    let has = |s: &str| body.iter().any(|t| t.is_ident(s));
    if has("cfg") && has("test") {
        attrs.is_cfg_test = true;
    } else if body.len() == 3 && body[1].is_ident("test") {
        attrs.is_test_fn = true; // exactly `#[test]`
    } else if has("test") && (has("tokio") || has("rstest")) {
        attrs.is_test_fn = true;
    }
    (j + 1, attrs)
}

/// Builds the [`FileModel`] for one token stream.
pub fn build(tokens: &[Token], comments: &[Comment]) -> FileModel {
    let mut model = FileModel {
        allows: parse_allows(comments),
        ..FileModel::default()
    };

    // Block-context stack: for each open `{`, the impl type (if the
    // block is an impl body) and whether the region is test code.
    #[derive(Clone)]
    struct Ctx {
        impl_type: Option<String>,
        is_test: bool,
    }
    let mut stack: Vec<Ctx> = Vec::new();
    let mut pending_impl: Option<String> = None;
    let mut pending_test_block = false;
    let mut pending = Attrs::default();

    let current_impl =
        |stack: &[Ctx]| -> Option<String> { stack.iter().rev().find_map(|c| c.impl_type.clone()) };
    let in_test_region =
        |stack: &[Ctx], pending: &Attrs| stack.iter().any(|c| c.is_test) || pending.is_cfg_test;

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokKind::Punct if t.is_punct('#') => {
                let (next, attrs) = parse_attr(tokens, i);
                pending.is_test_fn |= attrs.is_test_fn;
                pending.is_cfg_test |= attrs.is_cfg_test;
                i = next;
                continue;
            }
            TokKind::Punct if t.is_punct('{') => {
                stack.push(Ctx {
                    impl_type: pending_impl.take(),
                    is_test: pending_test_block || stack.last().is_some_and(|c| c.is_test),
                });
                pending_test_block = false;
                i += 1;
                continue;
            }
            TokKind::Punct if t.is_punct('}') => {
                stack.pop();
                i += 1;
                continue;
            }
            TokKind::Ident if t.is_keyword("impl") => {
                if let Ok(brace) = find_body_brace(tokens, i + 1) {
                    pending_impl = impl_self_type(tokens, i, brace);
                }
                if pending.is_cfg_test {
                    pending_test_block = true;
                    if let Ok(brace) = find_body_brace(tokens, i + 1) {
                        model.test_ranges.push((i, matching_brace(tokens, brace)));
                    }
                }
                pending = Attrs::default();
                i += 1;
                continue;
            }
            TokKind::Ident if t.is_keyword("mod") => {
                if pending.is_cfg_test {
                    pending_test_block = true;
                    if let Ok(brace) = find_body_brace(tokens, i + 1) {
                        model.test_ranges.push((i, matching_brace(tokens, brace)));
                    }
                }
                pending = Attrs::default();
                i += 1;
                continue;
            }
            TokKind::Ident if t.is_keyword("struct") => {
                if let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    if let Ok(brace) = find_body_brace(tokens, i + 2) {
                        collect_fields(
                            tokens,
                            &name.text,
                            brace,
                            &mut model.fields,
                            &mut model.lock_fields,
                        );
                    }
                }
                pending = Attrs::default();
                i += 1;
                continue;
            }
            TokKind::Ident if t.is_keyword("enum") => {
                if let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    if let Ok(brace) = find_body_brace(tokens, i + 2) {
                        let def = collect_enum(tokens, &name.text, brace);
                        model.enums.push(def);
                    }
                }
                pending = Attrs::default();
                i += 1;
                continue;
            }
            TokKind::Ident if t.is_keyword("static") => {
                collect_lock_static(tokens, i, &mut model.lock_statics);
                pending = Attrs::default();
                i += 1;
                continue;
            }
            TokKind::Ident if t.is_keyword("fn") => {
                let name = match tokens.get(i + 1) {
                    Some(nt) if nt.kind == TokKind::Ident => nt.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let is_test = pending.is_test_fn || in_test_region(&stack, &pending);
                // A trait method declaration without a body has no brace;
                // skip it.
                if let Ok(open) = find_body_brace(tokens, i + 2) {
                    let close = matching_brace(tokens, open);
                    let self_type = current_impl(&stack);
                    let qual = match &self_type {
                        Some(ty) => format!("{ty}::{name}"),
                        None => name.clone(),
                    };
                    if is_test {
                        model.test_ranges.push((i, close));
                    }
                    model.functions.push(FuncDef {
                        qual,
                        name,
                        self_type,
                        sig_start: i,
                        body: (open, close),
                        line: t.line,
                        is_test,
                    });
                }
                pending = Attrs::default();
                i += 1;
                continue;
            }
            _ => {
                // Any other item-ish token clears pending attrs only at
                // item keywords handled above; expression tokens keep
                // flowing. Clear pending test-fn flags on `;` so an
                // attribute never leaks past its item.
                if t.is_punct(';') {
                    pending = Attrs::default();
                }
                i += 1;
            }
        }
    }

    model
}

fn collect_fields(
    tokens: &[Token],
    owner: &str,
    brace: usize,
    fields: &mut Vec<FieldDef>,
    locks: &mut Vec<LockField>,
) {
    let close = matching_brace(tokens, brace);
    let mut i = brace + 1;
    let mut depth = 0i64; // depth relative to the struct body
    while i < close {
        let t = &tokens[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('<') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct('>') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0
            && t.kind == TokKind::Ident
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            // `field: Type` — scan the type tokens to the field's end
            // (a `,` at depth 0 relative to the field).
            let field = t.text.clone();
            let line = t.line;
            let mut j = i + 2;
            let mut td = 0i64;
            let mut kind: Option<String> = None;
            let mut ty = String::new();
            while j < close {
                let tt = &tokens[j];
                if tt.is_punct('<') || tt.is_punct('(') || tt.is_punct('[') {
                    td += 1;
                } else if tt.is_punct('>') || tt.is_punct(')') || tt.is_punct(']') {
                    td -= 1;
                } else if tt.is_punct(',') && td <= 0 {
                    break;
                } else if tt.kind == TokKind::Ident
                    && kind.is_none()
                    && LOCK_TYPES.contains(&tt.text.as_str())
                {
                    kind = Some(tt.text.clone());
                }
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(&tt.text);
                j += 1;
            }
            fields.push(FieldDef {
                owner: owner.to_string(),
                field: field.clone(),
                ty,
                line,
            });
            if let Some(kind) = kind {
                locks.push(LockField {
                    owner: owner.to_string(),
                    field,
                    kind,
                    line,
                });
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

fn collect_enum(tokens: &[Token], name: &str, brace: usize) -> EnumDef {
    let close = matching_brace(tokens, brace);
    let mut variants = Vec::new();
    let mut i = brace + 1;
    let mut depth = 0i64;
    while i < close {
        let t = &tokens[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('#') {
            let (next, _) = parse_attr(tokens, i);
            i = next;
            continue;
        } else if depth == 0
            && t.kind == TokKind::Ident
            && tokens.get(i + 1).is_some_and(|n| {
                n.is_punct(',') || n.is_punct('{') || n.is_punct('(') || n.is_punct('=')
            })
        {
            variants.push((t.text.clone(), t.line));
        }
        i += 1;
    }
    EnumDef {
        name: name.to_string(),
        variants,
    }
}

fn collect_lock_static(tokens: &[Token], i: usize, out: &mut Vec<(String, u32)>) {
    // `static [mut] NAME: Type = ...;`
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let Some(name) = tokens.get(j).filter(|t| t.kind == TokKind::Ident) else {
        return;
    };
    if !tokens.get(j + 1).is_some_and(|t| t.is_punct(':')) {
        return;
    }
    // Scan the type up to `=` or `;` at depth 0.
    let mut k = j + 2;
    let mut depth = 0i64;
    let mut is_lock = false;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && (t.is_punct('=') || t.is_punct(';')) {
            break;
        } else if t.kind == TokKind::Ident
            && LOCK_TYPES.contains(&t.text.as_str())
            && !CONDVAR_TYPES.contains(&t.text.as_str())
        {
            is_lock = true;
        }
        k += 1;
    }
    if is_lock {
        out.push((name.text.clone(), name.line));
    }
}

fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        // Only a line comment *dedicated* to the directive counts; prose
        // that mentions `wlc-lint:` mid-sentence (or doc comments, whose
        // text starts with `!` or `/`) is ignored, and block comments
        // carry no text at all.
        if c.block {
            continue;
        }
        let Some(rest) = c.text.trim_start().strip_prefix("wlc-lint:") else {
            continue;
        };
        let directive = rest.trim();
        if directive.starts_with("hot-path") {
            continue; // reserved marker, not an allow
        }
        let (rest, sanitize) = match (
            directive.strip_prefix("allow"),
            directive.strip_prefix("sanitize"),
        ) {
            (Some(r), _) => (r, false),
            (None, Some(r)) => (r, true),
            (None, None) => {
                out.push(Allow {
                    rule: String::new(),
                    line: c.line,
                    sanitize: false,
                    error: Some(format!(
                        "unknown wlc-lint directive `{}`; expected `allow(rule, reason = \
                         \"...\")` or `sanitize(rule, reason = \"...\")`",
                        directive
                    )),
                });
                continue;
            }
        };
        let rest = rest.trim();
        let inner = rest
            .strip_prefix('(')
            .and_then(|r| r.rfind(')').map(|e| &r[..e]));
        let Some(inner) = inner else {
            out.push(Allow {
                rule: String::new(),
                line: c.line,
                sanitize,
                error: Some("malformed allow: missing parentheses".into()),
            });
            continue;
        };
        let mut parts = inner.splitn(2, ',');
        let rule = parts.next().unwrap_or("").trim().to_string();
        let reason_part = parts.next().map(str::trim).unwrap_or("");
        let has_reason = reason_part
            .strip_prefix("reason")
            .map(|r| r.trim_start().starts_with('='))
            .unwrap_or(false)
            && reason_part.contains('"');
        let reason_text_ok = has_reason
            && reason_part
                .split('"')
                .nth(1)
                .is_some_and(|s| !s.trim().is_empty());
        let kw = if sanitize { "sanitize" } else { "allow" };
        let error = if rule.is_empty() {
            Some(format!("malformed {kw}: missing rule name"))
        } else if !reason_text_ok {
            Some(format!(
                "{kw}({rule}) requires a non-empty reason: {kw}({rule}, reason = \"...\")"
            ))
        } else {
            None
        };
        out.push(Allow {
            rule,
            line: c.line,
            sanitize,
            error,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model_of(src: &str) -> FileModel {
        let (tokens, comments) = lex(src);
        build(&tokens, &comments)
    }

    #[test]
    fn finds_lock_fields_and_impl_methods() {
        let src = r#"
pub struct Q<T> {
    state: Mutex<Vec<T>>,
    cv: Condvar,
    cap: usize,
}
impl<T> Q<T> {
    pub fn push(&self) {}
    fn pop(&self) {}
}
impl<T> fmt::Display for Q<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
}
"#;
        let m = model_of(src);
        assert_eq!(m.lock_fields.len(), 2);
        assert_eq!(m.lock_fields[0].id(), "Q.state");
        assert!(!m.lock_fields[0].is_condvar());
        assert!(m.lock_fields[1].is_condvar());
        let quals: Vec<_> = m.functions.iter().map(|f| f.qual.clone()).collect();
        assert_eq!(quals, vec!["Q::push", "Q::pop", "Q::fmt"]);
    }

    #[test]
    fn test_regions_are_marked() {
        let src = r#"
fn live() { a(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { b(); }
}
#[test]
fn top_level_test() { c(); }
"#;
        let (tokens, comments) = lex(src);
        let m = build(&tokens, &comments);
        let idx = |name: &str| {
            tokens
                .iter()
                .position(|t| t.is_ident(name))
                .expect("token present")
        };
        assert!(!m.in_test(idx("a")));
        assert!(m.in_test(idx("b")));
        assert!(m.in_test(idx("c")));
        let t = m.functions.iter().find(|f| f.name == "t").expect("t");
        assert!(t.is_test);
        let live = m.functions.iter().find(|f| f.name == "live").expect("live");
        assert!(!live.is_test);
    }

    #[test]
    fn enums_and_statics() {
        let src = r#"
pub enum E {
    A,
    B { x: u32 },
    C(u8),
}
static REGISTRY: OnceLock<Mutex<u32>> = OnceLock::new();
static PLAIN: u32 = 3;
"#;
        let m = model_of(src);
        assert_eq!(m.enums.len(), 1);
        let names: Vec<_> = m.enums[0].variants.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
        assert_eq!(m.lock_statics.len(), 1);
        assert_eq!(m.lock_statics[0].0, "REGISTRY");
    }

    #[test]
    fn allow_annotations_parse_and_require_reasons() {
        let src = r#"
// wlc-lint: allow(panic, reason = "checked by caller")
x.unwrap();
// wlc-lint: allow(panic)
y.unwrap();
// wlc-lint: frobnicate(panic)
"#;
        let m = model_of(src);
        assert_eq!(m.allows.len(), 3);
        assert!(m.allows[0].error.is_none());
        assert!(m.allows[1].error.is_some());
        assert!(m.allows[2].error.is_some());
        assert!(m.allowed("panic", 3));
        assert!(!m.allowed("panic", 5)); // reason missing -> invalid
        assert!(!m.allowed("determinism", 3));
    }

    #[test]
    fn sanitize_annotations_parse_and_are_distinct_from_allows() {
        let src = r#"
// wlc-lint: sanitize(determinism-taint, reason = "keys sorted before iteration")
for k in keys {}
// wlc-lint: sanitize(determinism-taint)
bad();
"#;
        let m = model_of(src);
        assert_eq!(m.allows.len(), 2);
        assert!(m.allows[0].sanitize && m.allows[0].error.is_none());
        assert!(m.allows[1].error.is_some(), "reason is mandatory");
        assert!(m.sanitized("determinism-taint", 3));
        assert!(!m.allowed("determinism-taint", 3), "sanitize is not allow");
        assert!(!m.sanitized("determinism-taint", 5));
    }

    #[test]
    fn all_fields_are_collected_with_types() {
        let src = r#"
pub struct Replica<T> {
    slot: ModelSlot,
    breaker: CircuitBreaker,
    queue: Mutex<Vec<T>>,
    hits: u64,
}
"#;
        let m = model_of(src);
        assert_eq!(m.fields.len(), 4, "{:?}", m.fields);
        assert_eq!(m.fields[2].field, "queue");
        assert!(m.fields[2].ty.starts_with("Mutex"));
        assert_eq!(m.fields[3].ty, "u64");
        assert_eq!(m.lock_fields.len(), 1);
    }

    #[test]
    fn raw_identifier_items_are_not_keywords() {
        // `r#fn` and `r#struct` are names; only the real keywords below
        // should produce a function / struct.
        let src = r#"
let r#fn = 1;
let r#struct = 2;
fn real() {}
"#;
        let m = model_of(src);
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].name, "real");
    }
}
