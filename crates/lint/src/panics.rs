//! Panic-freedom analysis.
//!
//! Non-test code in the fault-tolerant layers (`wlc-serve`, `wlc-exec`,
//! and the `wlc-core` fallback path) must not contain `unwrap()`,
//! `expect()`, `panic!`, `todo!`, `unimplemented!`, or `unreachable!`.
//! Hot-path files additionally forbid slice/array indexing (`x[i]`),
//! which panics on out-of-bounds. Both rules can be suppressed per
//! occurrence with `// wlc-lint: allow(panic, reason = "...")` or
//! `// wlc-lint: allow(index, reason = "...")` on the same line or the
//! line above.

use crate::lexer::TokKind;
use crate::{Finding, Rule, SourceFile};

/// File prefixes the panic rule applies to (non-test code).
pub const PANIC_SCOPES: [&str; 3] = [
    "crates/serve/src/",
    "crates/exec/src/",
    "crates/core/src/fallback.rs",
];

/// Hot-path files where indexing is also forbidden.
pub const HOT_PATHS: [&str; 6] = [
    "crates/serve/src/server.rs",
    "crates/serve/src/replica.rs",
    "crates/serve/src/router.rs",
    "crates/exec/src/service.rs",
    "crates/exec/src/pool.rs",
    "crates/core/src/fallback.rs",
];

/// Panicking macros (the `!` sigil is matched separately).
const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];

/// Keywords that can legally precede `[` without it being an index
/// expression (`&mut [f64]`, `return [a, b]`, `in [..]`, ...).
const NONINDEX_KEYWORDS: [&str; 11] = [
    "mut", "dyn", "as", "return", "in", "else", "match", "if", "while", "let", "const",
];

/// Whether the panic rule covers `rel`.
pub fn in_panic_scope(rel: &str) -> bool {
    PANIC_SCOPES
        .iter()
        .any(|p| rel == *p || (p.ends_with('/') && rel.starts_with(p)))
}

/// Whether the index rule covers `rel`.
pub fn is_hot_path(rel: &str) -> bool {
    HOT_PATHS.contains(&rel)
}

/// Scans one in-scope file for panic sites.
pub fn analyze(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.tokens;
    let hot = is_hot_path(&file.rel);
    for (i, t) in toks.iter().enumerate() {
        if file.model.in_test(i) {
            continue;
        }
        match t.kind {
            TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let is_call = i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if is_call && !file.model.allowed("panic", t.line) {
                    findings.push(Finding {
                        chain: Vec::new(),
                        rule: Rule::Panic,
                        path: file.rel.clone(),
                        line: t.line,
                        message: format!(
                            "`.{}()` in fault-tolerant non-test code can panic; handle the \
                             error or annotate `// wlc-lint: allow(panic, reason = \"...\")`",
                            t.text
                        ),
                    });
                }
            }
            TokKind::Ident if PANIC_MACROS.contains(&t.text.as_str()) => {
                let is_macro = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
                if is_macro && !file.model.allowed("panic", t.line) {
                    findings.push(Finding {
                        chain: Vec::new(),
                        rule: Rule::Panic,
                        path: file.rel.clone(),
                        line: t.line,
                        message: format!(
                            "`{}!` in fault-tolerant non-test code; return an error instead \
                             or annotate `// wlc-lint: allow(panic, reason = \"...\")`",
                            t.text
                        ),
                    });
                }
            }
            TokKind::Punct if hot && t.is_punct('[') && i > 0 => {
                let prev = &toks[i - 1];
                let indexing = match prev.kind {
                    TokKind::Ident => !NONINDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                    _ => false,
                };
                if indexing && !file.model.allowed("index", t.line) {
                    findings.push(Finding {
                        chain: Vec::new(),
                        rule: Rule::Index,
                        path: file.rel.clone(),
                        line: t.line,
                        message: "slice/array indexing in a hot path can panic on \
                                  out-of-bounds; use `.get(..)` or annotate \
                                  `// wlc-lint: allow(index, reason = \"...\")`"
                            .into(),
                    });
                }
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;

    #[test]
    fn unwrap_and_macros_are_flagged_outside_tests() {
        let src = r#"
fn live() {
    let x = compute().unwrap();
    let y = compute().expect("y");
    panic!("boom");
    todo!();
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        compute().unwrap();
        panic!("fine in tests");
    }
}
"#;
        let file = source_from_str("crates/serve/src/state.rs", src);
        let findings = analyze(&file);
        assert_eq!(findings.len(), 4, "{findings:?}");
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = r#"
fn live() {
    // wlc-lint: allow(panic, reason = "invariant: always Some here")
    let x = compute().unwrap();
}
"#;
        let file = source_from_str("crates/exec/src/pool.rs", src);
        assert!(analyze(&file).is_empty());
    }

    #[test]
    fn std_panic_path_is_not_a_macro() {
        let src = "fn f() { let loc = std::panic::Location::caller(); }";
        let file = source_from_str("crates/exec/src/tracked.rs", src);
        assert!(analyze(&file).is_empty());
    }

    #[test]
    fn indexing_flagged_only_in_hot_paths() {
        let hot = source_from_str(
            "crates/exec/src/pool.rs",
            "fn f(v: &[f64]) { let x = v[0]; }",
        );
        assert_eq!(analyze(&hot).len(), 1);
        let cold = source_from_str(
            "crates/exec/src/tracked.rs",
            "fn f(v: &[f64]) { let x = v[0]; }",
        );
        assert!(analyze(&cold).is_empty());
    }

    #[test]
    fn slice_types_are_not_indexing() {
        let src = "fn f(xs: &mut [f64], g: fn(&[u8])) -> [f64; 3] { make() }";
        let file = source_from_str("crates/exec/src/service.rs", src);
        assert!(analyze(&file).is_empty(), "{:?}", analyze(&file));
    }
}
