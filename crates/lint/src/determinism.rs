//! Determinism analysis for the seeded crates.
//!
//! `wlc-math`, `wlc-nn`, `wlc-sim`, and `wlc-data` promise bit-identical
//! results for a fixed seed regardless of thread count. Non-test code in
//! those crates therefore must not read wall/monotonic clocks
//! (`Instant::now`, `SystemTime::now`) or construct hash containers with
//! the randomly-seeded default hasher (`HashMap::new`, `HashSet::new`,
//! `RandomState`), whose iteration order varies across processes.
//! Suppress a justified use with
//! `// wlc-lint: allow(determinism, reason = "...")`.

use crate::lexer::TokKind;
use crate::{Finding, Rule, SourceFile};

/// Crate source prefixes the determinism rule applies to.
pub const SEEDED_SCOPES: [&str; 4] = [
    "crates/math/src/",
    "crates/nn/src/",
    "crates/sim/src/",
    "crates/data/src/",
];

/// Constructors of randomly-seeded hash containers.
const HASH_CTORS: [&str; 5] = ["new", "default", "with_capacity", "from", "from_iter"];

/// Whether the determinism rule covers `rel`.
pub fn in_scope(rel: &str) -> bool {
    SEEDED_SCOPES.iter().any(|p| rel.starts_with(p))
}

/// Scans one in-scope file for nondeterminism sources.
pub fn analyze(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.model.in_test(i) {
            continue;
        }
        let path_call_to = |name: &str| {
            toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
                && toks.get(i + 3).is_some_and(|c| c.is_ident(name))
        };
        match t.text.as_str() {
            "Instant" | "SystemTime"
                if path_call_to("now") && !file.model.allowed("determinism", t.line) =>
            {
                findings.push(Finding {
                    chain: Vec::new(),
                    rule: Rule::Determinism,
                    path: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "`{}::now()` in a seeded crate breaks run-to-run reproducibility; \
                         thread timing through parameters or annotate \
                         `// wlc-lint: allow(determinism, reason = \"...\")`",
                        t.text
                    ),
                });
            }
            "HashMap" | "HashSet" => {
                let ctor = HASH_CTORS.iter().any(|c| path_call_to(c));
                if ctor && !file.model.allowed("determinism", t.line) {
                    findings.push(Finding {
                        chain: Vec::new(),
                        rule: Rule::Determinism,
                        path: file.rel.clone(),
                        line: t.line,
                        message: format!(
                            "`{}` uses the randomly-seeded default hasher; iteration order \
                             is nondeterministic — use `BTreeMap`/`BTreeSet` or annotate \
                             `// wlc-lint: allow(determinism, reason = \"...\")`",
                            t.text
                        ),
                    });
                }
            }
            "RandomState" if !file.model.allowed("determinism", t.line) => {
                findings.push(Finding {
                    chain: Vec::new(),
                    rule: Rule::Determinism,
                    path: file.rel.clone(),
                    line: t.line,
                    message: "`RandomState` is seeded from the OS at process start; \
                              seeded crates must hash deterministically"
                        .into(),
                });
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;

    #[test]
    fn clocks_and_hashers_are_flagged() {
        let src = r#"
fn live() {
    let t0 = Instant::now();
    let walltime = SystemTime::now();
    let mut m: HashMap<u32, u32> = HashMap::new();
}
"#;
        let file = source_from_str("crates/nn/src/train.rs", src);
        assert_eq!(analyze(&file).len(), 3);
    }

    #[test]
    fn tests_and_annotations_are_exempt() {
        let src = r#"
fn live() {
    // wlc-lint: allow(determinism, reason = "membership only; never iterated")
    let mut seen: HashMap<&str, usize> = HashMap::new();
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let t0 = Instant::now();
        let s = std::collections::HashSet::new();
    }
}
"#;
        let file = source_from_str("crates/data/src/validate.rs", src);
        assert!(analyze(&file).is_empty(), "{:?}", analyze(&file));
    }

    #[test]
    fn instant_as_type_annotation_is_fine() {
        let src = "fn f(deadline: Instant) -> Instant { deadline }";
        let file = source_from_str("crates/sim/src/queue.rs", src);
        assert!(analyze(&file).is_empty());
    }
}
