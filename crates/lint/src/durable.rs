//! Durable-write analysis: every mutation of durable state must go
//! through the fault-injection substrate.
//!
//! `wlc-fault` exists so that a crash-consistency sweep can observe and
//! tear *every* write, rename, fsync, and unlink the system performs. A
//! direct `std::fs::write` (or `fs::rename`, `File::create`,
//! `.sync_all()`, `fs::remove_file`) in non-test code is invisible to
//! the simulated filesystem — the sweep cannot crash inside it, so any
//! torn-state bug it harbors ships untested. Such calls are findings
//! everywhere in the workspace; the [`wlc-fault`] passthrough
//! (`RealFs`) carries its own justifying annotations. Suppress a
//! deliberate bypass with
//! `// wlc-lint: allow(durable-write, reason = "...")`.

use crate::lexer::TokKind;
use crate::{Finding, Rule, SourceFile};

/// `std::fs` free functions that mutate durable state.
const FS_MUTATORS: [&str; 4] = ["write", "rename", "remove_file", "create_dir_all"];

/// Scans one file for durable writes that bypass `wlc_fault::Fs`.
pub fn analyze(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.model.in_test(i) {
            continue;
        }
        let path_call_to = |name: &str| {
            toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
                && toks.get(i + 3).is_some_and(|c| c.is_ident(name))
        };
        let flag = |findings: &mut Vec<Finding>, call: &str| {
            if !file.model.allowed("durable-write", t.line) {
                findings.push(Finding {
                    chain: Vec::new(),
                    rule: Rule::DurableWrite,
                    path: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "`{call}` mutates durable state outside the fault-injection \
                         substrate; the crash-consistency sweep cannot tear it — route \
                         it through `wlc_fault::Fs` or annotate \
                         `// wlc-lint: allow(durable-write, reason = \"...\")`"
                    ),
                });
            }
        };
        match t.text.as_str() {
            // `fs::write(..)` / `std::fs::rename(..)`: both spellings put
            // an `fs` path segment right before the mutator name.
            "fs" => {
                for op in FS_MUTATORS {
                    if path_call_to(op) {
                        flag(&mut findings, &format!("fs::{op}"));
                    }
                }
            }
            // `File::create(..)` truncates (or creates) the file on disk.
            "File" if path_call_to("create") => flag(&mut findings, "File::create"),
            // `.sync_all()`: the durability barrier itself.
            "sync_all" if i > 0 && toks[i - 1].is_punct('.') => {
                flag(&mut findings, ".sync_all()");
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;

    #[test]
    fn direct_durable_mutations_are_flagged() {
        let src = r#"
fn persist(path: &Path, staged: &Path) -> io::Result<()> {
    std::fs::write(staged, b"v1")?;
    std::fs::File::open(staged)?.sync_all()?;
    fs::rename(staged, path)?;
    let _ = std::fs::remove_file(staged);
    let _ = fs::create_dir_all(path.parent().unwrap_or(path));
    let _ = File::create(path)?;
    Ok(())
}
"#;
        let file = source_from_str("crates/learn/src/state.rs", src);
        let found = analyze(&file);
        assert_eq!(found.len(), 6, "{found:?}");
        for call in [
            "fs::write",
            ".sync_all()",
            "fs::rename",
            "fs::remove_file",
            "fs::create_dir_all",
            "File::create",
        ] {
            assert!(
                found.iter().any(|f| f.message.contains(call)),
                "missing {call}: {found:?}"
            );
        }
    }

    #[test]
    fn tests_and_annotations_are_exempt() {
        let src = r#"
fn passthrough(path: &Path, bytes: &[u8]) -> io::Result<()> {
    // wlc-lint: allow(durable-write, reason = "RealFs passthrough")
    std::fs::write(path, bytes)
}
#[cfg(test)]
mod tests {
    #[test]
    fn scratch() {
        std::fs::write("/tmp/x", b"y").unwrap();
        std::fs::rename("/tmp/x", "/tmp/z").unwrap();
    }
}
"#;
        let file = source_from_str("crates/fault/src/lib.rs", src);
        assert!(analyze(&file).is_empty(), "{:?}", analyze(&file));
    }

    #[test]
    fn reads_and_unrelated_idents_are_fine() {
        let src = r#"
fn load(path: &Path) -> io::Result<String> {
    let dir = std::fs::read_dir(path.parent().unwrap_or(path))?;
    drop(dir);
    std::fs::read_to_string(path)
}
fn not_fs() {
    let fs = 1;
    let write = fs + 1;
    let _ = write;
}
"#;
        let file = source_from_str("crates/core/src/model.rs", src);
        assert!(analyze(&file).is_empty(), "{:?}", analyze(&file));
    }
}
