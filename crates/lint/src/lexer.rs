//! A hand-rolled Rust lexer, sufficient for token-level static analysis.
//!
//! The goal is *not* to parse Rust — it is to produce a stream of
//! identifiers, literals and punctuation with line numbers, such that
//! string/char/raw-string contents and comments can never be mistaken
//! for code. Line comments are collected separately so `// wlc-lint:`
//! annotations can be read back; everything inside literals is dropped.
//!
//! Every token and comment carries a char-index **span** into the
//! source, and the lexer guarantees *coverage*: every non-whitespace
//! character of the input falls inside exactly one token or comment
//! span. The round-trip test (`crates/lint/tests/roundtrip.rs`) checks
//! this property over every `.rs` file in the workspace, so a lexer
//! change that silently drops characters fails CI.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `self`, `unwrap`, ...).
    Ident,
    /// Numeric literal (`42`, `1e3`, `0xff`, `3_600_000.0`, `7u32`).
    Num,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    /// Contents are dropped.
    Str,
    /// Character or byte-char literal (`'x'`, `'\n'`, `b'x'`).
    /// Contents are dropped.
    Char,
    /// Lifetime (`'a`, `'_`).
    Lifetime,
    /// Single punctuation character (`.`, `:`, `{`, `!`, ...).
    Punct,
}

/// One lexed token with its 1-based source line and char-index span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (empty for `Str`/`Char`; the single char for `Punct`).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Char-index range `[start, end)` into the source's char sequence.
    pub span: (u32, u32),
    /// True for raw identifiers (`r#type`): the text is the bare name,
    /// but it must never be treated as a keyword.
    pub raw: bool,
}

impl Token {
    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is the given identifier (raw or not).
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the given *keyword*: the identifier text
    /// matches and it is not a raw identifier (`r#fn` is a name, not
    /// the `fn` keyword).
    pub fn is_keyword(&self, s: &str) -> bool {
        self.is_ident(s) && !self.raw
    }
}

/// A comment. Line comments (doc comments included) keep their text so
/// `// wlc-lint:` directives can be read back; block comments are
/// recorded span-only (text empty) for round-trip coverage.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text after the leading slashes (empty for block comments).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Char-index range `[start, end)` covering the whole comment,
    /// delimiters included.
    pub span: (u32, u32),
    /// True for `/* ... */` block comments.
    pub block: bool,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into tokens plus comments.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let tok = |kind: TokKind, text: String, line: u32, start: usize, end: usize| Token {
        kind,
        text,
        line,
        span: (start as u32, end as u32),
        raw: false,
    };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            let mut j = i + 2;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            comments.push(Comment {
                text: chars[i + 2..j].iter().collect(),
                line,
                span: (start as u32, j as u32),
                block: false,
            });
            i = j;
            continue;
        }
        // Block comment (nested). Contents dropped; span recorded.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            comments.push(Comment {
                text: String::new(),
                line: start_line,
                span: (start as u32, j as u32),
                block: true,
            });
            i = j;
            continue;
        }
        // Cooked string.
        if c == '"' {
            let start = i;
            let start_line = line;
            i = lex_cooked_string(&chars, i + 1, &mut line);
            tokens.push(tok(TokKind::Str, String::new(), start_line, start, i));
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let start = i;
            let start_line = line;
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal: consume to the closing quote.
                let mut j = i + 2;
                if j < n {
                    j += 1; // the escaped character itself
                }
                // \u{...} escapes
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
                i = j + 1;
                tokens.push(tok(TokKind::Char, String::new(), start_line, start, i));
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                // 'x' — a plain char literal.
                i += 3;
                tokens.push(tok(TokKind::Char, String::new(), start_line, start, i));
                continue;
            }
            // Lifetime: 'ident (not followed by a closing quote).
            let mut j = i + 1;
            let mut text = String::from("'");
            while j < n && is_ident_continue(chars[j]) {
                text.push(chars[j]);
                j += 1;
            }
            i = j;
            tokens.push(tok(TokKind::Lifetime, text, start_line, start, i));
            continue;
        }
        // Identifier, possibly a string prefix (r", br", b", c"), a
        // byte-char prefix (b'x'), or a raw identifier (r#name).
        if is_ident_start(c) {
            let start = i;
            let start_line = line;
            let mut j = i;
            let mut text = String::new();
            while j < n && is_ident_continue(chars[j]) {
                text.push(chars[j]);
                j += 1;
            }
            let prefix_ok = matches!(text.as_str(), "r" | "b" | "br" | "c" | "cr" | "rb");
            if prefix_ok && j < n && chars[j] == '"' {
                // Prefixed cooked string (b"..", c"..").
                if text.contains('r') {
                    i = lex_raw_string(&chars, j + 1, 0, &mut line);
                } else {
                    i = lex_cooked_string(&chars, j + 1, &mut line);
                }
                tokens.push(tok(TokKind::Str, String::new(), start_line, start, i));
                continue;
            }
            if text == "b" && j < n && chars[j] == '\'' {
                // Byte-char literal b'x' / b'\n': one Char token, never a
                // stray `b` identifier followed by a lifetime.
                let mut k = j + 1;
                if k < n && chars[k] == '\\' {
                    k += 2; // skip the escaped character
                    while k < n && chars[k] != '\'' {
                        k += 1;
                    }
                    i = (k + 1).min(n);
                } else if k + 1 < n && chars[k + 1] == '\'' {
                    i = k + 2;
                } else {
                    // Not a byte-char after all (`b'static`? — not valid
                    // Rust, but stay robust): emit the identifier.
                    i = j;
                    tokens.push(tok(TokKind::Ident, text, start_line, start, i));
                    continue;
                }
                tokens.push(tok(TokKind::Char, String::new(), start_line, start, i));
                continue;
            }
            if prefix_ok && text.contains('r') && j < n && chars[j] == '#' {
                // Raw string r#".."# — count hashes; if a quote follows
                // it is a raw string, otherwise r#ident (raw identifier).
                let mut hashes = 0usize;
                let mut k = j;
                while k < n && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && chars[k] == '"' {
                    i = lex_raw_string(&chars, k + 1, hashes, &mut line);
                    tokens.push(tok(TokKind::Str, String::new(), start_line, start, i));
                    continue;
                }
                if text == "r" && hashes == 1 && k < n && is_ident_start(chars[k]) {
                    // Raw identifier: emit the bare name, flagged `raw` so
                    // `r#fn` / `r#type` are never mistaken for keywords.
                    let mut t = String::new();
                    let mut m = k;
                    while m < n && is_ident_continue(chars[m]) {
                        t.push(chars[m]);
                        m += 1;
                    }
                    i = m;
                    tokens.push(Token {
                        kind: TokKind::Ident,
                        text: t,
                        line: start_line,
                        span: (start as u32, i as u32),
                        raw: true,
                    });
                    continue;
                }
            }
            i = j;
            tokens.push(tok(TokKind::Ident, text, start_line, start, i));
            continue;
        }
        // Number, including type suffixes (`7u32`, `2.5f64`, `0xFFu8`).
        if c.is_ascii_digit() {
            let start = i;
            let start_line = line;
            let mut j = i;
            let mut text = String::new();
            let mut seen_dot = false;
            while j < n {
                let d = chars[j];
                if d.is_ascii_alphanumeric() || d == '_' {
                    text.push(d);
                    j += 1;
                } else if d == '.' && !seen_dot && j + 1 < n && chars[j + 1].is_ascii_digit() {
                    seen_dot = true;
                    text.push(d);
                    j += 1;
                } else if (d == '+' || d == '-')
                    && matches!(text.chars().last(), Some('e') | Some('E'))
                    && j + 1 < n
                    && chars[j + 1].is_ascii_digit()
                {
                    text.push(d);
                    j += 1;
                } else {
                    break;
                }
            }
            i = j;
            tokens.push(tok(TokKind::Num, text, start_line, start, i));
            continue;
        }
        // Anything else: single punctuation character.
        tokens.push(tok(TokKind::Punct, c.to_string(), line, i, i + 1));
        i += 1;
    }

    (tokens, comments)
}

/// Consumes a cooked string body starting just after the opening quote;
/// returns the index just past the closing quote.
fn lex_cooked_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    while i < n {
        match chars[i] {
            '\\' => {
                // The escaped char may itself be a newline (the `"\`
                // line-continuation) — it still advances the line count.
                if chars.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a raw string body (already past `r#*"`); returns the index
/// just past the closing `"#*`.
fn lex_raw_string(chars: &[char], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    let n = chars.len();
    while i < n {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if chars[i] == '"' {
            let mut k = 0usize;
            while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r####"
// a comment with unwrap() inside
let s = "unwrap() in a string";
let r = r#"panic! in a raw string"#;
let c = 'x';
real_ident();
"####;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\nthree\";\nmarker();";
        let (tokens, _) = lex(src);
        let marker = tokens
            .iter()
            .find(|t| t.is_ident("marker"))
            .expect("marker");
        assert_eq!(marker.line, 4);
    }

    #[test]
    fn line_numbers_survive_escaped_newline_continuations() {
        // `"\` at end of line is a string continuation: the escaped
        // newline must still count toward line numbers.
        let src = "let a = \"x\\\ny\\\nz\";\nmarker();";
        let (tokens, _) = lex(src);
        let marker = tokens
            .iter()
            .find(|t| t.is_ident("marker"))
            .expect("marker");
        assert_eq!(marker.line, 4);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "fn a() {}\n// wlc-lint: allow(panic, reason = \"x\")\nfn b() {}\n";
        let (_, comments) = lex(src);
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.contains("wlc-lint"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (tokens, _) = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
    }

    #[test]
    fn nested_block_comments_and_raw_idents() {
        let ids = idents("/* outer /* inner */ still comment */ r#fn x");
        assert_eq!(ids, vec!["fn".to_string(), "x".to_string()]);
    }

    #[test]
    fn raw_identifiers_are_flagged_and_never_keywords() {
        let (tokens, _) = lex("let r#type = 1; let r#fn = 2; plain();");
        let raws: Vec<&Token> = tokens.iter().filter(|t| t.raw).collect();
        assert_eq!(raws.len(), 2, "{raws:?}");
        assert_eq!(raws[0].text, "type");
        assert_eq!(raws[1].text, "fn");
        assert!(!raws[1].is_keyword("fn"), "r#fn is a name, not a keyword");
        let plain = tokens.iter().find(|t| t.is_ident("plain")).expect("plain");
        assert!(!plain.raw);
        assert!(tokens.iter().any(|t| t.is_keyword("let")));
    }

    #[test]
    fn byte_char_literals_are_single_tokens() {
        let (tokens, _) = lex(r#"let a = b'x'; let b = b'\n'; let c = b"bytes"; done();"#);
        // No stray `b` identifier escapes a byte-char or byte-string.
        let chars: Vec<&Token> = tokens.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 2, "{tokens:?}");
        assert!(tokens.iter().any(|t| t.kind == TokKind::Str));
        assert!(tokens.iter().any(|t| t.is_ident("done")));
        // `b` appears only as the let-bound name, never from the literals.
        let b_idents = tokens.iter().filter(|t| t.is_ident("b")).count();
        assert_eq!(b_idents, 1, "{tokens:?}");
    }

    #[test]
    fn suffixed_numeric_literals_lex_as_single_tokens() {
        let (tokens, _) = lex("7u32 255u8 1_000i64 2.5f64 1e3f32 0xFFu8 3usize");
        let nums: Vec<String> = tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(
            nums,
            vec!["7u32", "255u8", "1_000i64", "2.5f64", "1e3f32", "0xFFu8", "3usize"]
        );
        assert!(
            !tokens.iter().any(|t| t.kind == TokKind::Ident),
            "suffixes must not escape as identifiers: {tokens:?}"
        );
    }

    #[test]
    fn numbers_lex_as_single_tokens() {
        let (tokens, _) = lex("3_600_000.0 1e3 0..10");
        let nums: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["3_600_000.0", "1e3", "0", "10"]);
    }

    #[test]
    fn spans_cover_every_non_whitespace_char() {
        let src = r####"
/* block /* nested */ */
fn f<'a>(r#type: &'a [u8]) -> u8 {
    let x = b'\n'; // trailing comment
    let s = r#"raw "quoted" body"#;
    r#type[0] + 7u8
}
"####;
        let (tokens, comments) = lex(src);
        let chars: Vec<char> = src.chars().collect();
        let mut covered = vec![false; chars.len()];
        for (s, e) in tokens
            .iter()
            .map(|t| t.span)
            .chain(comments.iter().map(|c| c.span))
        {
            for slot in covered[s as usize..e as usize].iter_mut() {
                assert!(!*slot, "overlapping spans");
                *slot = true;
            }
        }
        for (idx, &c) in chars.iter().enumerate() {
            if !covered[idx] {
                assert!(
                    c.is_whitespace(),
                    "uncovered non-whitespace char {c:?} at {idx}"
                );
            }
        }
    }
}
