//! Lightweight item parsing on top of the lexer and file model:
//! function signatures (receiver kind, parameter types), typed local
//! bindings, and the call sites inside each function body.
//!
//! This is the input layer of the interprocedural analyses: the call
//! graph ([`crate::callgraph`]) resolves the call sites collected here
//! against every function in the workspace. Parsing is deliberately
//! shallow — types are reduced to the *base type identifier* (`&'ws mut
//! Workspace` → `Workspace`, `&dyn Fs` → `Fs`), which is exactly the
//! granularity the `Type::method` qual namespace needs. Anything that
//! does not resolve to a base identifier (slices, tuples, closures,
//! `impl Trait`) is simply untyped, and calls through it stay
//! unresolved — the analyses under-approximate rather than guess.

use crate::lexer::{TokKind, Token};
use crate::model::FuncDef;

/// How a method takes `self`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver {
    /// Free function — no `self`.
    None,
    /// `&self`: shared access.
    Ref,
    /// `&mut self`: exclusive access.
    RefMut,
    /// `self` / `mut self` by value: consuming.
    Owned,
}

/// Parsed signature facts for one function.
#[derive(Debug, Clone)]
pub struct Sig {
    /// Receiver kind.
    pub receiver: Receiver,
    /// `(param name, base type ident)` for every resolvable parameter.
    pub params: Vec<(String, String)>,
}

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `self.m(..)` — resolves within the enclosing impl type.
    SelfMethod,
    /// `x.m(..)` with `x` a param/local of known base type.
    Method(String),
    /// `x.m(..)` on an unresolvable receiver (chains, temporaries).
    MethodUnknown,
    /// `Type::m(..)` — an explicit path call on a type.
    Path(String),
    /// `f(..)` — a free (or locally shadowed) function call.
    Free,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub callee: String,
    /// Receiver/path classification.
    pub kind: CallKind,
    /// 1-based line of the callee token.
    pub line: u32,
    /// Token index of the callee.
    pub tok: usize,
}

/// Keywords that look like calls but are not.
const CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "match", "for", "return", "loop", "fn", "move", "in", "impl", "else", "box",
    "unsafe", "await",
];

/// Variant constructors that are data, not workspace calls.
const VARIANT_CTORS: [&str; 4] = ["Some", "Ok", "Err", "None"];

/// Extracts the base type identifier from a type token run: the last
/// identifier of the leading path, skipping `&`, `mut`, `dyn`,
/// lifetimes, and stopping at generic args / punctuation that ends the
/// leading path (`[`, `(`, `<`, `,`, `=`, `;`, `)`).
fn base_type(tokens: &[Token]) -> Option<String> {
    let mut name: Option<String> = None;
    for t in tokens {
        match t.kind {
            TokKind::Ident if matches!(t.text.as_str(), "dyn" | "mut") => {}
            TokKind::Ident if t.text == "impl" => return None, // `impl Trait`
            TokKind::Ident => name = Some(t.text.clone()),
            TokKind::Lifetime => {}
            TokKind::Punct if t.is_punct('&') || t.is_punct(':') => {}
            _ => break, // `<`, `[`, `(`, `,` — end of the leading path
        }
    }
    name
}

/// Parses the signature of `def` (tokens `sig_start..body.0`).
pub fn parse_sig(tokens: &[Token], def: &FuncDef) -> Sig {
    let mut sig = Sig {
        receiver: Receiver::None,
        params: Vec::new(),
    };
    // Find the parameter list: the first `(` after the fn name, skipping
    // the generic parameter list `<...>` if present.
    let mut i = def.sig_start + 1;
    let end = def.body.0;
    let mut angle = 0i64;
    while i < end {
        let t = &tokens[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('(') && angle <= 0 {
            break;
        }
        i += 1;
    }
    if i >= end {
        return sig;
    }
    let open = i;
    // Split the parens' contents at top-level commas.
    let mut depth = 0i64;
    let mut start = open + 1;
    let mut entries: Vec<(usize, usize)> = Vec::new();
    let mut j = open;
    while j < end {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') || t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                if j > start {
                    entries.push((start, j));
                }
                break;
            }
        } else if t.is_punct(',') && depth == 1 {
            entries.push((start, j));
            start = j + 1;
        }
        j += 1;
    }
    for (idx, &(s, e)) in entries.iter().enumerate() {
        let entry = &tokens[s..e];
        if entry.is_empty() {
            continue;
        }
        if idx == 0 && entry.iter().any(|t| t.is_keyword("self")) {
            let has_amp = entry.iter().any(|t| t.is_punct('&'));
            let has_mut = entry.iter().any(|t| t.is_keyword("mut"));
            sig.receiver = match (has_amp, has_mut) {
                (true, true) => Receiver::RefMut,
                (true, false) => Receiver::Ref,
                (false, _) => Receiver::Owned,
            };
            continue;
        }
        // `name: Type` — the pattern must be a simple identifier.
        let Some(colon) = entry.iter().position(|t| t.is_punct(':')) else {
            continue;
        };
        if colon == 0 {
            continue;
        }
        let name_tok = &entry[colon - 1];
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Reject destructuring patterns (`(a, b): (u8, u8)`).
        if entry[..colon.saturating_sub(1)]
            .iter()
            .any(|t| t.is_punct('(') || t.is_punct('['))
        {
            continue;
        }
        if let Some(base) = base_type(&entry[colon + 1..]) {
            sig.params.push((name_tok.text.clone(), base));
        }
    }
    sig
}

/// Collects `let [mut] name: Type = ...` bindings in `def`'s body.
pub fn typed_locals(tokens: &[Token], def: &FuncDef) -> Vec<(String, String)> {
    let (open, close) = def.body;
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        let t = &tokens[i];
        if t.is_keyword("let") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_keyword("mut")) {
                j += 1;
            }
            let Some(name) = tokens.get(j).filter(|t| t.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            if tokens.get(j + 1).is_some_and(|t| t.is_punct(':')) {
                // Type runs to `=` or `;` at angle/paren depth 0.
                let mut k = j + 2;
                let mut depth = 0i64;
                while k < close {
                    let u = &tokens[k];
                    if u.is_punct('<') || u.is_punct('(') || u.is_punct('[') {
                        depth += 1;
                    } else if u.is_punct('>') || u.is_punct(')') || u.is_punct(']') {
                        depth -= 1;
                    } else if depth <= 0 && (u.is_punct('=') || u.is_punct(';')) {
                        break;
                    }
                    k += 1;
                }
                if let Some(base) = base_type(&tokens[j + 2..k]) {
                    out.push((name.text.clone(), base));
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Collects every call site in `def`'s body. `typed` maps in-scope
/// variable names (params + typed locals) to base types.
pub fn call_sites(
    tokens: &[Token],
    def: &FuncDef,
    typed: &std::collections::BTreeMap<String, String>,
) -> Vec<CallSite> {
    let (open, close) = def.body;
    let mut out = Vec::new();
    for i in open + 1..close {
        let t = &tokens[i];
        if t.kind != TokKind::Ident || !tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if (t.is_keyword(&t.text) && CALL_KEYWORDS.contains(&t.text.as_str()))
            || VARIANT_CTORS.contains(&t.text.as_str())
        {
            continue;
        }
        let prev = &tokens[i - 1];
        let kind = if prev.is_punct('.') {
            // Method call: classify the receiver one token further back.
            match tokens.get(i.wrapping_sub(2)) {
                Some(r) if r.is_keyword("self") => {
                    // Plain `self.m(..)` only — `a.self` cannot occur.
                    CallKind::SelfMethod
                }
                Some(r) if r.kind == TokKind::Ident => {
                    // Simple receiver `x.m(..)` (not a chain `a.x.m(..)`).
                    let simple = !tokens
                        .get(i.wrapping_sub(3))
                        .is_some_and(|p| p.is_punct('.') || p.is_punct(':'));
                    match typed.get(&r.text) {
                        Some(ty) if simple => CallKind::Method(ty.clone()),
                        _ => CallKind::MethodUnknown,
                    }
                }
                _ => CallKind::MethodUnknown,
            }
        } else if prev.is_punct(':')
            && tokens
                .get(i.wrapping_sub(2))
                .is_some_and(|p| p.is_punct(':'))
        {
            match tokens.get(i.wrapping_sub(3)) {
                Some(seg) if seg.kind == TokKind::Ident => {
                    let first = seg.text.chars().next().unwrap_or('_');
                    if first.is_uppercase() {
                        CallKind::Path(seg.text.clone())
                    } else {
                        // `module::free_fn(..)` — resolve by bare name.
                        CallKind::Free
                    }
                }
                _ => CallKind::MethodUnknown,
            }
        } else if prev.is_punct('!') {
            continue; // macro invocation
        } else {
            CallKind::Free
        };
        out.push(CallSite {
            callee: t.text.clone(),
            kind,
            line: t.line,
            tok: i,
        });
    }
    out
}

/// Returns the token-index body ranges plus definition indices of every
/// non-test function annotated `#[wlc_hot]` in `file`.
pub fn hot_fn_defs(file: &crate::SourceFile) -> Vec<usize> {
    let toks = &file.tokens;
    let mut defs = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        // The attribute form `#[wlc_hot]`: a `use wlc_hot::wlc_hot;` or a
        // prose mention never has `[` immediately before the identifier.
        let is_attr = t.kind == TokKind::Ident
            && t.text == "wlc_hot"
            && i >= 2
            && toks[i - 1].is_punct('[')
            && toks[i - 2].is_punct('#');
        if !is_attr {
            continue;
        }
        // Functions are recorded in source order; the annotated item is
        // the first one whose body opens after the attribute.
        if let Some((di, f)) = file
            .model
            .functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.body.0 > i)
        {
            if !f.is_test {
                defs.push(di);
            }
        }
    }
    defs.sort_unstable();
    defs.dedup();
    defs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;
    use std::collections::BTreeMap;

    fn first_fn(src: &str) -> (crate::SourceFile, FuncDef) {
        let file = source_from_str("crates/x/src/lib.rs", src);
        let def = file.model.functions[0].clone();
        (file, def)
    }

    #[test]
    fn signatures_parse_receivers_and_param_types() {
        let (file, def) = first_fn(
            "impl Mlp { fn forward_with<'ws>(&self, input: &[f64], ws: &'ws mut Workspace, \
             loss: Loss, fs: &dyn Fs) -> u8 { 0 } }",
        );
        let sig = parse_sig(&file.tokens, &def);
        assert_eq!(sig.receiver, Receiver::Ref);
        assert_eq!(
            sig.params,
            vec![
                ("ws".to_string(), "Workspace".to_string()),
                ("loss".to_string(), "Loss".to_string()),
                ("fs".to_string(), "Fs".to_string()),
            ],
            "slice params are untyped, path params keep their base"
        );
    }

    #[test]
    fn mut_self_and_owned_self_are_classified() {
        let (file, def) = first_fn("impl W { fn ensure(&mut self, rows: usize) {} }");
        assert_eq!(parse_sig(&file.tokens, &def).receiver, Receiver::RefMut);
        let (file, def) = first_fn("impl W { fn into_inner(self) -> u8 { 0 } }");
        assert_eq!(parse_sig(&file.tokens, &def).receiver, Receiver::Owned);
        let (file, def) = first_fn("fn free(x: Config) {}");
        assert_eq!(parse_sig(&file.tokens, &def).receiver, Receiver::None);
    }

    #[test]
    fn typed_locals_and_call_sites_resolve_receiver_types() {
        let src = r#"
fn run(q: &BoundedQueue) {
    let slot: ModelSlot = make();
    slot.reload();
    q.push();
    self_free();
    helper(1).chain();
    gemm::matmul_into(a, b, c);
    Matrix::zeros(3, 3);
    vec![1];
}
"#;
        let (file, def) = first_fn(src);
        let mut typed = BTreeMap::new();
        for (n, t) in parse_sig(&file.tokens, &def).params {
            typed.insert(n, t);
        }
        for (n, t) in typed_locals(&file.tokens, &def) {
            typed.insert(n, t);
        }
        let calls = call_sites(&file.tokens, &def, &typed);
        let find = |name: &str| calls.iter().find(|c| c.callee == name).expect(name);
        assert_eq!(find("reload").kind, CallKind::Method("ModelSlot".into()));
        assert_eq!(find("push").kind, CallKind::Method("BoundedQueue".into()));
        assert_eq!(find("self_free").kind, CallKind::Free);
        assert_eq!(find("chain").kind, CallKind::MethodUnknown);
        assert_eq!(find("matmul_into").kind, CallKind::Free);
        assert_eq!(find("zeros").kind, CallKind::Path("Matrix".into()));
        assert!(
            !calls.iter().any(|c| c.callee == "vec"),
            "macros are not calls"
        );
    }

    #[test]
    fn self_method_calls_are_classified() {
        let src = "impl S { fn a(&self) { self.b(); other.c(); } }";
        let (file, def) = first_fn(src);
        let calls = call_sites(&file.tokens, &def, &BTreeMap::new());
        assert_eq!(calls[0].kind, CallKind::SelfMethod);
        assert_eq!(calls[1].kind, CallKind::MethodUnknown);
    }

    #[test]
    fn hot_markers_attach_to_the_following_fn() {
        let src = r#"
use wlc_hot::wlc_hot;
#[wlc_hot]
pub fn hot_one(xs: &[f64]) -> f64 { helper(xs) }
pub fn cold(xs: &[f64]) -> f64 { 0.0 }
#[wlc_hot]
pub fn hot_two() {}
"#;
        let file = source_from_str("crates/nn/src/x.rs", src);
        let defs = hot_fn_defs(&file);
        let names: Vec<&str> = defs
            .iter()
            .map(|&d| file.model.functions[d].name.as_str())
            .collect();
        assert_eq!(names, vec!["hot_one", "hot_two"]);
    }
}
