//! Workspace-wide call graph with provenance edges.
//!
//! One node per non-test function definition; edges are the call sites
//! from [`crate::items`], resolved conservatively:
//!
//! - `self.m(..)` → `SelfType::m` in the enclosing impl;
//! - `x.m(..)` where `x` is a parameter or `let`-typed local of base
//!   type `T` → `T::m`;
//! - `Type::m(..)` path calls → `T::m` exactly;
//! - `f(..)` / `module::f(..)` free calls → the free function `f`.
//!
//! Anything else (chained receivers, closures, unresolvable types,
//! std-library names) stays unresolved: the graph under-approximates so
//! that every edge it reports is real, which is what call-chain
//! provenance in findings requires. Edges keep the `file:line` of their
//! call site, and [`Reach`] reconstructs a shortest root→node chain for
//! reports.

use std::collections::BTreeMap;

use crate::items::{self, CallKind, CallSite, Sig};
use crate::SourceFile;

/// Std-ish callee names that must never resolve to a workspace function
/// by accident (mirrors the stoplist idea in `locks.rs`, but the graph
/// only resolves *typed* calls, so this guards the free-call namespace).
const FREE_STOPLIST: [&str; 12] = [
    "drop", "min", "max", "from", "new", "default", "into", "print", "println", "write", "read",
    "format",
];

/// One resolved (or unresolved) call edge out of a node.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Callee name as written at the call site.
    pub callee: String,
    /// 1-based line of the call site.
    pub line: u32,
    /// Resolved target node indices (empty when unresolved).
    pub targets: Vec<usize>,
}

/// One function in the graph.
#[derive(Debug)]
pub struct Node {
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    /// Index into `files[file].model.functions`.
    pub def: usize,
    /// Qualified name (`Type::name` or `name`).
    pub qual: String,
    /// Parsed signature (receiver kind, typed params).
    pub sig: Sig,
    /// Raw call sites in body order (kept for per-rule body scans).
    pub sites: Vec<CallSite>,
    /// Outgoing edges, in body order.
    pub edges: Vec<Edge>,
}

/// The workspace call graph.
pub struct Graph {
    /// One node per non-test function, in (file, source) order.
    pub nodes: Vec<Node>,
    /// Qualified name → node indices (duplicates possible across files).
    pub by_qual: BTreeMap<String, Vec<usize>>,
}

impl Graph {
    /// Builds the graph over `files` (non-test functions only).
    pub fn build(files: &[SourceFile]) -> Graph {
        let mut nodes: Vec<Node> = Vec::new();
        let mut by_qual: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (di, def) in file.model.functions.iter().enumerate() {
                if def.is_test {
                    continue;
                }
                let sig = items::parse_sig(&file.tokens, def);
                let mut typed: BTreeMap<String, String> = BTreeMap::new();
                for (n, t) in &sig.params {
                    typed.insert(n.clone(), t.clone());
                }
                for (n, t) in items::typed_locals(&file.tokens, def) {
                    typed.insert(n, t);
                }
                let sites = items::call_sites(&file.tokens, def, &typed);
                let idx = nodes.len();
                by_qual.entry(def.qual.clone()).or_default().push(idx);
                nodes.push(Node {
                    file: fi,
                    def: di,
                    qual: def.qual.clone(),
                    sig,
                    sites,
                    edges: Vec::new(),
                });
            }
        }
        // Resolve edges now that every node is registered.
        for i in 0..nodes.len() {
            let mut edges = Vec::with_capacity(nodes[i].sites.len());
            let self_type = files[nodes[i].file].model.functions[nodes[i].def]
                .self_type
                .clone();
            for site in &nodes[i].sites {
                let targets: Vec<usize> = match &site.kind {
                    CallKind::SelfMethod => self_type
                        .as_ref()
                        .and_then(|t| by_qual.get(&format!("{}::{}", t, site.callee)))
                        .cloned()
                        .unwrap_or_default(),
                    CallKind::Method(ty) | CallKind::Path(ty) => by_qual
                        .get(&format!("{}::{}", ty, site.callee))
                        .cloned()
                        .unwrap_or_default(),
                    CallKind::Free if !FREE_STOPLIST.contains(&site.callee.as_str()) => {
                        // Free calls resolve only to free functions: the
                        // qual of a free fn is its bare name, so a method
                        // can never be hit through this namespace.
                        by_qual.get(&site.callee).cloned().unwrap_or_default()
                    }
                    _ => Vec::new(),
                };
                edges.push(Edge {
                    callee: site.callee.clone(),
                    line: site.line,
                    targets,
                });
            }
            nodes[i].edges = edges;
        }
        Graph { nodes, by_qual }
    }

    /// BFS from `roots`, recording for each reached node the edge it was
    /// first discovered through. Roots are visited in the given order,
    /// edges in body order, so chains are deterministic and shortest.
    pub fn reachable(&self, roots: &[usize]) -> Reach {
        let mut parent: BTreeMap<usize, (usize, u32)> = BTreeMap::new();
        let mut order: Vec<usize> = Vec::new();
        let mut seen: Vec<bool> = vec![false; self.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            order.push(n);
            for edge in &self.nodes[n].edges {
                for &t in &edge.targets {
                    if !seen[t] {
                        seen[t] = true;
                        parent.insert(t, (n, edge.line));
                        queue.push_back(t);
                    }
                }
            }
        }
        Reach { order, parent }
    }
}

/// Result of a reachability sweep: visit order plus discovery parents.
pub struct Reach {
    /// Reached node indices in BFS order (roots first).
    pub order: Vec<usize>,
    /// node → (caller node, call-site line) it was first reached through.
    parent: BTreeMap<usize, (usize, u32)>,
}

impl Reach {
    /// Reconstructs the root→`node` call chain as display strings:
    /// the root as `qual (file:line)`, each step as
    /// `qual (called at file:line)`.
    pub fn chain(&self, graph: &Graph, files: &[SourceFile], node: usize) -> Vec<String> {
        let mut rev: Vec<String> = Vec::new();
        let mut cur = node;
        while let Some(&(caller, line)) = self.parent.get(&cur) {
            let file = &files[graph.nodes[caller].file];
            rev.push(format!(
                "{} (called at {}:{})",
                graph.nodes[cur].qual, file.rel, line
            ));
            cur = caller;
        }
        let root = &graph.nodes[cur];
        let file = &files[root.file];
        let def = &file.model.functions[root.def];
        rev.push(format!("{} ({}:{})", root.qual, file.rel, def.line));
        rev.reverse();
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;

    fn graph_of(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, Graph) {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| source_from_str(p, s)).collect();
        let g = Graph::build(&files);
        (files, g)
    }

    fn node(g: &Graph, qual: &str) -> usize {
        g.by_qual[qual][0]
    }

    #[test]
    fn typed_method_and_free_calls_resolve_across_files() {
        let (_, g) = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "pub struct W; impl W { pub fn step(&self) { helper(); } }\n\
                 pub fn run(w: &W) { w.step(); }",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        let run = node(&g, "run");
        let step = node(&g, "W::step");
        let helper = node(&g, "helper");
        assert_eq!(g.nodes[run].edges[0].targets, vec![step]);
        assert_eq!(g.nodes[step].edges[0].targets, vec![helper]);
    }

    #[test]
    fn unresolvable_and_stoplisted_calls_have_no_targets() {
        let (_, g) = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn new() {} pub fn f(x: u8) { mystery.m(); new(); drop(x); }",
        )]);
        let f = node(&g, "f");
        assert!(g.nodes[f].edges.iter().all(|e| e.targets.is_empty()));
    }

    #[test]
    fn reachability_reports_shortest_chains_with_provenance() {
        let (files, g) = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn root() {\n    mid();\n}\npub fn mid() {\n    leaf();\n}\npub fn leaf() {}",
        )]);
        let root = node(&g, "root");
        let leaf = node(&g, "leaf");
        let reach = g.reachable(&[root]);
        assert_eq!(reach.order.len(), 3);
        let chain = reach.chain(&g, &files, leaf);
        assert_eq!(
            chain,
            vec![
                "root (crates/a/src/lib.rs:1)".to_string(),
                "mid (called at crates/a/src/lib.rs:2)".to_string(),
                "leaf (called at crates/a/src/lib.rs:5)".to_string(),
            ]
        );
    }

    #[test]
    fn test_functions_are_not_nodes() {
        let (_, g) = graph_of(&[(
            "crates/a/src/lib.rs",
            "#[test]\nfn t() {}\npub fn real() {}",
        )]);
        assert!(g.by_qual.contains_key("real"));
        assert!(!g.by_qual.contains_key("t"));
    }
}
