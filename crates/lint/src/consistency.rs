//! Exit-code / HTTP-status / documentation consistency analysis.
//!
//! Four cross-file agreements are checked, each skipped gracefully when
//! a participating file is absent (so the analysis also runs on the
//! reduced fixture trees used by the self-tests):
//!
//! 1. Every `ServeError` variant declared in `crates/serve/src/error.rs`
//!    is named in the CLI's exit-code mapping (`crates/cli/src/main.rs`).
//! 2. Every `EXIT_*` constant in the CLI appears, by value, in the
//!    CLI's `EXIT CODES` usage section and in the README exit-code
//!    table (`| <code> |` row).
//! 3. Every HTTP status literal the server responds with is documented
//!    in the README status table.
//! 4. Every crate root (`lib.rs` / `main.rs`) carries
//!    `#![forbid(unsafe_code)]`.

use std::path::Path;

use crate::lexer::TokKind;
use crate::{Finding, Rule, SourceFile};

fn find<'a>(files: &'a [SourceFile], rel: &str) -> Option<&'a SourceFile> {
    files.iter().find(|f| f.rel == rel)
}

fn finding(path: &str, line: u32, message: String) -> Finding {
    Finding {
        chain: Vec::new(),
        rule: Rule::Consistency,
        path: path.to_string(),
        line,
        message,
    }
}

/// Runs all consistency checks.
pub fn analyze(root: &Path, files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let readme = std::fs::read_to_string(root.join("README.md")).ok();

    check_serve_error_mapping(files, &mut findings);
    check_exit_codes(files, readme.as_deref(), &mut findings);
    check_http_statuses(files, readme.as_deref(), &mut findings);
    check_unsafe_forbidden(files, &mut findings);
    findings
}

/// Check 1: ServeError variants all appear in the CLI mapping.
fn check_serve_error_mapping(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let (Some(error_rs), Some(cli)) = (
        find(files, "crates/serve/src/error.rs"),
        find(files, "crates/cli/src/main.rs"),
    ) else {
        return;
    };
    let Some(serve_error) = error_rs.model.enums.iter().find(|e| e.name == "ServeError") else {
        return;
    };
    for (variant, line) in &serve_error.variants {
        let mapped = cli
            .tokens
            .iter()
            .enumerate()
            .any(|(i, t)| t.is_ident(variant) && !cli.model.in_test(i));
        if !mapped {
            findings.push(finding(
                &error_rs.rel,
                *line,
                format!(
                    "ServeError::{variant} has no exit-code mapping in \
                     crates/cli/src/main.rs; add an explicit match arm"
                ),
            ));
        }
    }
}

/// Extracts `const EXIT_X: u8 = N;` constants from the CLI tokens.
fn exit_constants(cli: &SourceFile) -> Vec<(String, u32, u32)> {
    let toks = &cli.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("const") {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        if !name.text.starts_with("EXIT_") {
            continue;
        }
        // const EXIT_X : u8 = N ;
        let value = toks
            .get(i + 5)
            .filter(|v| v.kind == TokKind::Num)
            .and_then(|v| v.text.parse::<u32>().ok());
        if let Some(value) = value {
            out.push((name.text.clone(), name.line, value));
        }
    }
    out
}

/// Check 2: EXIT_* constants vs the usage text and the README table.
fn check_exit_codes(files: &[SourceFile], readme: Option<&str>, findings: &mut Vec<Finding>) {
    let Some(cli) = find(files, "crates/cli/src/main.rs") else {
        return;
    };
    let consts = exit_constants(cli);
    if consts.is_empty() {
        return;
    }

    // The usage text is a string literal, so read the raw source: the
    // section runs from `EXIT CODES` to the next blank line.
    let section = cli.text.find("EXIT CODES").map(|start| {
        let rest = &cli.text[start..];
        match rest.find("\n\n") {
            Some(end) => &rest[..end],
            None => rest,
        }
    });
    match section {
        None => findings.push(finding(
            &cli.rel,
            1,
            "the CLI usage text has no `EXIT CODES` section documenting exit codes".into(),
        )),
        Some(section) => {
            let numbers: Vec<u32> = section
                .split(|c: char| !c.is_ascii_digit())
                .filter(|s| !s.is_empty())
                .filter_map(|s| s.parse().ok())
                .collect();
            for (name, line, value) in &consts {
                if !numbers.contains(value) {
                    findings.push(finding(
                        &cli.rel,
                        *line,
                        format!(
                            "{name} = {value} is not documented in the usage `EXIT CODES` section"
                        ),
                    ));
                }
            }
        }
    }

    if let Some(readme) = readme {
        for (name, line, value) in &consts {
            if !readme.contains(&format!("| {value} |")) {
                findings.push(finding(
                    &cli.rel,
                    *line,
                    format!(
                        "{name} = {value} has no `| {value} |` row in the README exit-code table"
                    ),
                ));
            }
        }
    }
}

/// Check 3: HTTP statuses emitted by the server are documented.
fn check_http_statuses(files: &[SourceFile], readme: Option<&str>, findings: &mut Vec<Finding>) {
    let (Some(server), Some(readme)) = (find(files, "crates/serve/src/server.rs"), readme) else {
        return;
    };
    let mut statuses: Vec<(u32, u32)> = Vec::new();
    for (i, t) in server.tokens.iter().enumerate() {
        if t.kind != TokKind::Num || server.model.in_test(i) {
            continue;
        }
        let digits: String = t.text.chars().filter(|c| c.is_ascii_digit()).collect();
        if digits.len() != t.text.len() {
            continue; // underscores / suffixes: not a status literal
        }
        if let Ok(v) = digits.parse::<u32>() {
            if (100..=599).contains(&v) && !statuses.iter().any(|&(s, _)| s == v) {
                statuses.push((v, t.line));
            }
        }
    }
    for (status, line) in statuses {
        if !readme.contains(&format!("| {status} |")) {
            findings.push(finding(
                &server.rel,
                line,
                format!(
                    "the server answers HTTP {status} but the README has no `| {status} |` \
                     row documenting it"
                ),
            ));
        }
    }
}

/// Check 4: every crate root forbids `unsafe`.
fn check_unsafe_forbidden(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for file in files {
        let is_crate_root = match file.rel.strip_prefix("crates/") {
            Some(rest) => {
                let mut parts = rest.split('/');
                let (_, src, leaf) = (parts.next(), parts.next(), parts.next());
                src == Some("src")
                    && matches!(leaf, Some("lib.rs") | Some("main.rs"))
                    && parts.next().is_none()
            }
            None => file.rel == "src/lib.rs" || file.rel == "src/main.rs",
        };
        if !is_crate_root {
            continue;
        }
        let has_forbid = file
            .tokens
            .windows(3)
            .any(|w| w[0].is_ident("forbid") && w[1].is_punct('(') && w[2].is_ident("unsafe_code"));
        if !has_forbid {
            findings.push(finding(
                &file.rel,
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".into(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;
    use std::path::PathBuf;

    fn run(files: Vec<SourceFile>) -> Vec<Finding> {
        // A root with no README: README-dependent checks are skipped.
        analyze(&PathBuf::from("/nonexistent-for-test"), &files)
    }

    #[test]
    fn unmapped_variant_is_reported() {
        let error_rs = source_from_str(
            "crates/serve/src/error.rs",
            "pub enum ServeError { Bind, Protocol, }",
        );
        let cli = source_from_str(
            "crates/cli/src/main.rs",
            "#![forbid(unsafe_code)]\nfn code(e: &ServeError) -> u8 { match e { ServeError::Bind => 5, _ => 5 } }",
        );
        let findings = run(vec![error_rs, cli]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("ServeError::Protocol"));
    }

    #[test]
    fn undocumented_exit_const_is_reported() {
        let cli = source_from_str(
            "crates/cli/src/main.rs",
            r#"#![forbid(unsafe_code)]
const USAGE: &str = "EXIT CODES:\n    0 success 2 usage";

const EXIT_USAGE: u8 = 2;
const EXIT_WEIRD: u8 = 7;
"#,
        );
        let findings = run(vec![cli]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("EXIT_WEIRD = 7"));
    }

    #[test]
    fn missing_forbid_unsafe_is_reported() {
        let lib = source_from_str("crates/demo/src/lib.rs", "pub fn f() {}");
        let findings = run(vec![lib]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("forbid(unsafe_code)"));
    }

    #[test]
    fn non_root_files_do_not_need_the_attribute() {
        let module = source_from_str("crates/demo/src/inner/util.rs", "pub fn f() {}");
        assert!(run(vec![module]).is_empty());
    }
}
