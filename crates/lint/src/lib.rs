//! `wlc-lint` — workspace static analysis for the wlc repository.
//!
//! Runs the repo-specific analyses over the workspace's Rust sources,
//! using a hand-rolled lexer (no external parser dependencies):
//!
//! - **lock-order** ([`locks`]): builds an inter-procedural lock
//!   acquisition graph over `wlc-exec` + `wlc-serve` and fails on any
//!   cycle (potential ABBA deadlock), with `file:line` provenance.
//! - **panic** / **index** ([`panics`]): forbids `unwrap`/`expect`/
//!   `panic!`-family macros in fault-tolerant non-test code, and slice
//!   indexing in hot-path files.
//! - **determinism** ([`determinism`]): forbids wall clocks and
//!   randomly-seeded hash containers in the seeded crates.
//! - **consistency** ([`consistency`]): exit codes, HTTP statuses, and
//!   `#![forbid(unsafe_code)]` stay in sync with the documentation.
//! - **alloc-in-hot-path** / **blocking-in-hot-path** ([`hotpath`]):
//!   forbids heap allocation and blocking (locks, sleeps, channel waits,
//!   filesystem/network I/O) in any function *reachable* from a
//!   `#[wlc_hot]` root, with full call-chain provenance.
//! - **determinism-taint** ([`taint`]): nondeterminism sources
//!   (`Instant::now`, hash iteration, env vars, ...) flowing through the
//!   call graph into durable sinks (`Fs` writes, `write_atomic`,
//!   `commit_events`, shadow scoring), with `sanitize(...)` annotations
//!   for the seeded-RNG / sorted-iteration idioms.
//! - **guard-coverage** ([`guards`]): fields accessed under a struct's
//!   lock in one method but bare in another.
//! - **durable-write** ([`durable`]): forbids direct `std::fs` mutations
//!   (write/rename/sync_all/remove/create) outside the `wlc-fault`
//!   substrate, so the crash-consistency sweep sees every durable
//!   transition.
//!
//! The interprocedural rules share one infrastructure: [`items`] parses
//! signatures, typed locals and call sites on top of the token model,
//! and [`callgraph`] resolves them into a workspace-wide call graph
//! whose edges carry `file:line` provenance.
//!
//! Findings are suppressed per occurrence with
//! `// wlc-lint: allow(<rule>, reason = "...")` on the same line or the
//! line above; a reason is mandatory and malformed annotations are
//! themselves findings.

#![forbid(unsafe_code)]

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

pub mod callgraph;
pub mod consistency;
pub mod determinism;
pub mod durable;
pub mod guards;
pub mod hotpath;
pub mod items;
pub mod lexer;
pub mod locks;
pub mod model;
pub mod panics;
pub mod taint;

/// Which analysis produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Lock-acquisition-order cycle or self-deadlock.
    LockOrder,
    /// Panicking construct in fault-tolerant code.
    Panic,
    /// Slice/array indexing in a hot path.
    Index,
    /// Nondeterminism source in a seeded crate.
    Determinism,
    /// Exit-code / status / doc inconsistency.
    Consistency,
    /// Heap allocation on the transitive `#[wlc_hot]` call path.
    HotAlloc,
    /// Blocking call / IO on the transitive `#[wlc_hot]` call path.
    HotBlocking,
    /// Nondeterminism source reaching a durable sink via the call graph.
    DeterminismTaint,
    /// Lock-protected field accessed without its guard.
    GuardCoverage,
    /// Durable-state mutation bypassing the `wlc-fault` substrate.
    DurableWrite,
    /// Malformed or unknown `wlc-lint:` annotation.
    Annotation,
}

impl Rule {
    /// Stable rule name, as used by `--only` and annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::LockOrder => "lock-order",
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::Determinism => "determinism",
            Rule::Consistency => "consistency",
            Rule::HotAlloc => "alloc-in-hot-path",
            Rule::HotBlocking => "blocking-in-hot-path",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::GuardCoverage => "guard-coverage",
            Rule::DurableWrite => "durable-write",
            Rule::Annotation => "annotation",
        }
    }

    /// Parses a rule name (the inverse of [`Rule::name`]).
    pub fn from_name(s: &str) -> Option<Rule> {
        match s {
            "lock-order" => Some(Rule::LockOrder),
            "panic" => Some(Rule::Panic),
            "index" => Some(Rule::Index),
            "determinism" => Some(Rule::Determinism),
            "consistency" => Some(Rule::Consistency),
            "alloc-in-hot-path" => Some(Rule::HotAlloc),
            "blocking-in-hot-path" => Some(Rule::HotBlocking),
            "determinism-taint" => Some(Rule::DeterminismTaint),
            "guard-coverage" => Some(Rule::GuardCoverage),
            "durable-write" => Some(Rule::DurableWrite),
            "annotation" => Some(Rule::Annotation),
            _ => None,
        }
    }
}

/// Rules that may be suppressed with an `allow(...)` annotation.
pub const SUPPRESSIBLE: [&str; 8] = [
    "panic",
    "index",
    "determinism",
    "alloc-in-hot-path",
    "blocking-in-hot-path",
    "determinism-taint",
    "guard-coverage",
    "durable-write",
];

/// Rules whose taint may be declared clean with a `sanitize(...)`
/// annotation (a dataflow-level claim, stronger than `allow`).
pub const SANITIZABLE: [&str; 1] = ["determinism-taint"];

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Analysis that produced it.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Call-chain provenance for interprocedural findings (empty for
    /// token-local ones): display strings from the entry point down to
    /// the flagged site / source.
    pub chain: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )?;
        for step in &self.chain {
            write!(f, "\n    via {step}")?;
        }
        Ok(())
    }
}

/// One lexed + modeled source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Raw file contents.
    pub text: String,
    /// Token stream.
    pub tokens: Vec<lexer::Token>,
    /// Structural model.
    pub model: model::FileModel,
}

/// Builds a [`SourceFile`] from an in-memory string (used by tests).
pub fn source_from_str(rel: &str, src: &str) -> SourceFile {
    let (tokens, comments) = lexer::lex(src);
    let model = model::build(&tokens, &comments);
    SourceFile {
        rel: rel.to_string(),
        text: src.to_string(),
        tokens,
        model,
    }
}

/// Recursively collects `.rs` files under `dir` into `out`, sorted.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads every workspace source file: `crates/*/src/**/*.rs` plus the
/// facade crate's `src/**/*.rs`. Test directories (`crates/*/tests`,
/// including this crate's self-test fixtures) are intentionally not
/// visited.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for krate in crates {
            collect_rs(&krate.join("src"), &mut paths)?;
        }
    }
    collect_rs(&root.join("src"), &mut paths)?;

    let mut files = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let (tokens, comments) = lexer::lex(&text);
        let model = model::build(&tokens, &comments);
        files.push(SourceFile {
            rel,
            text,
            tokens,
            model,
        });
    }
    Ok(files)
}

/// Runs every analysis (or just `only`, when given) over the workspace
/// rooted at `root`. Findings come back sorted by path, line, rule.
pub fn analyze(root: &Path, only: Option<Rule>) -> io::Result<Vec<Finding>> {
    let files = load_workspace(root)?;
    let mut findings: Vec<Finding> = Vec::new();
    let run = |rule: Rule| only.is_none() || only == Some(rule);

    if run(Rule::Annotation) {
        for file in &files {
            for allow in &file.model.allows {
                if let Some(err) = &allow.error {
                    findings.push(Finding {
                        rule: Rule::Annotation,
                        path: file.rel.clone(),
                        line: allow.line,
                        message: err.clone(),
                        chain: Vec::new(),
                    });
                } else if allow.sanitize && !SANITIZABLE.contains(&allow.rule.as_str()) {
                    findings.push(Finding {
                        rule: Rule::Annotation,
                        path: file.rel.clone(),
                        line: allow.line,
                        message: format!(
                            "sanitize({}) names a rule without dataflow semantics; \
                             sanitizable rules are {}",
                            allow.rule,
                            SANITIZABLE.join(", ")
                        ),
                        chain: Vec::new(),
                    });
                } else if !allow.sanitize && !SUPPRESSIBLE.contains(&allow.rule.as_str()) {
                    findings.push(Finding {
                        rule: Rule::Annotation,
                        path: file.rel.clone(),
                        line: allow.line,
                        message: format!(
                            "allow({}) names an unknown rule; suppressible rules are {}",
                            allow.rule,
                            SUPPRESSIBLE.join(", ")
                        ),
                        chain: Vec::new(),
                    });
                }
            }
        }
    }

    if run(Rule::LockOrder) {
        let lock_files: Vec<&SourceFile> = files
            .iter()
            .filter(|f| {
                f.rel.starts_with("crates/exec/src/") || f.rel.starts_with("crates/serve/src/")
            })
            .collect();
        findings.extend(locks::analyze(&lock_files));
    }

    if run(Rule::Panic) || run(Rule::Index) {
        for file in &files {
            if panics::in_panic_scope(&file.rel) {
                findings.extend(panics::analyze(file));
            }
        }
    }

    if run(Rule::Determinism) {
        for file in &files {
            if determinism::in_scope(&file.rel) {
                findings.extend(determinism::analyze(file));
            }
        }
    }

    if run(Rule::Consistency) {
        findings.extend(consistency::analyze(root, &files));
    }

    // The interprocedural rules share one call graph over the workspace.
    let need_graph = run(Rule::HotAlloc)
        || run(Rule::HotBlocking)
        || run(Rule::DeterminismTaint)
        || run(Rule::GuardCoverage);
    if need_graph {
        let graph = callgraph::Graph::build(&files);
        if run(Rule::HotAlloc) || run(Rule::HotBlocking) {
            // Workspace-wide: any crate may mark functions `#[wlc_hot]`.
            findings.extend(hotpath::analyze(&files, &graph));
        }
        if run(Rule::DeterminismTaint) {
            findings.extend(taint::analyze(&files, &graph));
        }
        if run(Rule::GuardCoverage) {
            findings.extend(guards::analyze(&files, &graph));
        }
    }

    if run(Rule::DurableWrite) {
        // Workspace-wide: a stray `std::fs::write` anywhere escapes the
        // crash-consistency sweep. The `RealFs` passthrough suppresses
        // its own sites with annotations like everyone else.
        for file in &files {
            findings.extend(durable::analyze(file));
        }
    }

    if let Some(rule) = only {
        findings.retain(|f| f.rule == rule);
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);
    Ok(findings)
}
