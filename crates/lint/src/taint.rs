//! Determinism taint: nondeterminism sources flowing through the call
//! graph into durable sinks.
//!
//! The reproduction's determinism contract says surfaces, checkpoints,
//! `events.log`, and shadow scores are byte-identical for a fixed seed
//! at any worker count. The token-local `determinism` rule polices the
//! seeded crates' own bodies; this analysis closes the laundering gap —
//! a wall-clock read in one helper flowing through three calls into a
//! checkpoint write.
//!
//! **Sources** (per function body): `Instant::now` / `SystemTime::now`,
//! `RandomState`, iteration over `HashMap`/`HashSet` receivers of known
//! declared type (`.iter()`, `.keys()`, `.values()`, `.drain()`,
//! `.retain()`, ...), `thread::current`, and `env::var*`.
//!
//! **Sinks** (per function body): calls to `write_atomic` /
//! `commit_events`, `Fs`/`FsHandle` write methods (`write`, `rename`,
//! `remove_file`, `create_dir_all`, `sync`), and calls into wlc-learn's
//! shadow-score computation.
//!
//! A function is *tainted* if it contains a live source or calls a
//! tainted function (modeling tainted return values); the relation is
//! propagated caller-ward to fixpoint. A finding fires at every sink
//! call inside a tainted function, with the full sink→…→source chain.
//!
//! **Sanitizers**: `// wlc-lint: sanitize(determinism-taint, reason =
//! "...")` declares a line clean at the dataflow level — on a source
//! line it kills the source (the seeded-RNG idiom: a `SystemTime` read
//! folded into a logged-but-unused field), on a call line it stops
//! propagation through that edge (the sorted-iteration idiom: the
//! callee's nondeterminism provably cannot escape, e.g. results are
//! collected into a `BTreeMap` before use). An ordinary
//! `allow(determinism-taint, ...)` at the sink line suppresses one
//! finding without claiming the data is clean.

use std::collections::BTreeMap;

use crate::callgraph::Graph;
use crate::items::{self, CallKind};
use crate::lexer::TokKind;
use crate::{Finding, Rule, SourceFile};

/// Receiver base types whose iteration order is nondeterministic.
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Iteration-order-sensitive methods on hash containers.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// Receiver base types whose write methods are durable sinks.
const FS_TYPES: [&str; 2] = ["Fs", "FsHandle"];

/// Durable-write methods on [`FS_TYPES`] receivers.
const FS_SINK_METHODS: [&str; 5] = ["write", "rename", "remove_file", "create_dir_all", "sync"];

/// Free functions that serialize durable state.
const FREE_SINKS: [&str; 2] = ["write_atomic", "commit_events"];

/// `env::` reads whose results vary per machine/run.
const ENV_SOURCES: [&str; 4] = ["var", "var_os", "vars", "vars_os"];

/// One nondeterminism source occurrence.
struct Source {
    line: u32,
    desc: String,
}

/// One durable-sink call occurrence.
struct Sink {
    line: u32,
    desc: String,
}

/// Why a function is tainted: its own source, or a call to a tainted
/// callee (edge line + callee node).
#[derive(Clone)]
enum Witness {
    Source { line: u32, desc: String },
    Call { line: u32, callee: usize },
}

/// Scans one function body for live (non-sanitized) sources.
fn sources_in(file: &SourceFile, node: &crate::callgraph::Node) -> Vec<Source> {
    let def = &file.model.functions[node.def];
    let toks = &file.tokens;
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    for (n, t) in &node.sig.params {
        typed.insert(n.clone(), t.clone());
    }
    for (n, t) in items::typed_locals(toks, def) {
        typed.insert(n, t);
    }
    let mut out = Vec::new();
    let (open, close) = def.body;
    for i in open..=close.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let as_path = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'));
        let desc = if matches!(t.text.as_str(), "Instant" | "SystemTime")
            && as_path
            && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            Some(format!("{}::now", t.text))
        } else if t.text == "RandomState" {
            Some("RandomState".to_string())
        } else if t.text == "thread"
            && as_path
            && toks.get(i + 3).is_some_and(|n| n.is_ident("current"))
        {
            Some("thread::current".to_string())
        } else if t.text == "env"
            && as_path
            && toks
                .get(i + 3)
                .is_some_and(|n| ENV_SOURCES.contains(&n.text.as_str()))
        {
            Some(format!("env::{}", toks[i + 3].text))
        } else if ITER_METHODS.contains(&t.text.as_str())
            && i > 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            match toks.get(i.wrapping_sub(2)) {
                Some(r)
                    if r.kind == TokKind::Ident
                        && typed
                            .get(&r.text)
                            .is_some_and(|ty| HASH_TYPES.contains(&ty.as_str())) =>
                {
                    Some(format!("{}.{}() (hash iteration order)", r.text, t.text))
                }
                _ => None,
            }
        } else {
            None
        };
        if let Some(desc) = desc {
            if !file.model.sanitized("determinism-taint", t.line) {
                out.push(Source { line: t.line, desc });
            }
        }
    }
    out
}

/// Scans one function's call sites for durable sinks.
fn sinks_in(files: &[SourceFile], graph: &Graph, n: usize) -> Vec<Sink> {
    let node = &graph.nodes[n];
    let mut out = Vec::new();
    for (site, edge) in node.sites.iter().zip(&node.edges) {
        let desc = match &site.kind {
            CallKind::Free if FREE_SINKS.contains(&site.callee.as_str()) => {
                Some(format!("{}(..)", site.callee))
            }
            CallKind::Method(ty)
                if FS_TYPES.contains(&ty.as_str())
                    && FS_SINK_METHODS.contains(&site.callee.as_str()) =>
            {
                Some(format!("Fs::{}", site.callee))
            }
            _ => edge.targets.iter().find_map(|&t| {
                let callee = &graph.nodes[t];
                let rel = &files[callee.file].rel;
                (rel.starts_with("crates/learn/src/") && callee.qual.ends_with("score"))
                    .then(|| format!("shadow score `{}`", callee.qual))
            }),
        };
        if let Some(desc) = desc {
            out.push(Sink {
                line: site.line,
                desc,
            });
        }
    }
    out
}

/// Runs the taint analysis over the whole workspace graph.
pub fn analyze(files: &[SourceFile], graph: &Graph) -> Vec<Finding> {
    // Seed: functions with their own live sources.
    let mut witness: BTreeMap<usize, Witness> = BTreeMap::new();
    let mut work: Vec<usize> = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        let file = &files[node.file];
        if let Some(src) = sources_in(file, node).into_iter().next() {
            witness.insert(
                i,
                Witness::Source {
                    line: src.line,
                    desc: src.desc,
                },
            );
            work.push(i);
        }
    }
    // Reverse adjacency: callee → (caller, call line), minus sanitized
    // edges (a sanitize annotation on the call line stops propagation).
    let mut rev: BTreeMap<usize, Vec<(usize, u32)>> = BTreeMap::new();
    for (caller, node) in graph.nodes.iter().enumerate() {
        let file = &files[node.file];
        for edge in &node.edges {
            if file.model.sanitized("determinism-taint", edge.line) {
                continue;
            }
            for &callee in &edge.targets {
                rev.entry(callee).or_default().push((caller, edge.line));
            }
        }
    }
    // Propagate caller-ward to fixpoint.
    while let Some(callee) = work.pop() {
        let Some(callers) = rev.get(&callee) else {
            continue;
        };
        for &(caller, line) in callers.clone().iter() {
            if let std::collections::btree_map::Entry::Vacant(e) = witness.entry(caller) {
                e.insert(Witness::Call { line, callee });
                work.push(caller);
            }
        }
    }

    // Findings: every sink call inside a tainted function.
    let mut findings = Vec::new();
    for (&n, _) in witness.iter() {
        let node = &graph.nodes[n];
        let file = &files[node.file];
        let def = &file.model.functions[node.def];
        // Chain: the tainted function, then each step down to the source.
        let mut chain = vec![format!("{} ({}:{})", node.qual, file.rel, def.line)];
        let mut cur = n;
        let source_desc = loop {
            match witness.get(&cur).cloned() {
                Some(Witness::Call { line, callee }) => {
                    let cf = &files[graph.nodes[cur].file];
                    chain.push(format!(
                        "{} (called at {}:{})",
                        graph.nodes[callee].qual, cf.rel, line
                    ));
                    cur = callee;
                }
                Some(Witness::Source { line, desc }) => {
                    let cf = &files[graph.nodes[cur].file];
                    chain.push(format!("source `{}` at {}:{}", desc, cf.rel, line));
                    break desc;
                }
                None => break "?".to_string(),
            }
        };
        for sink in sinks_in(files, graph, n) {
            if file.model.allowed("determinism-taint", sink.line) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::DeterminismTaint,
                path: file.rel.clone(),
                line: sink.line,
                message: format!(
                    "durable sink `{}` reached by nondeterministic data from `{}`; make the \
                     input deterministic, annotate the source/call with \
                     `// wlc-lint: sanitize(determinism-taint, reason = \"...\")`, or suppress \
                     with `allow(determinism-taint, ...)`",
                    sink.desc, source_desc
                ),
                chain: chain.clone(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| source_from_str(p, s)).collect();
        let graph = Graph::build(&files);
        analyze(&files, &graph)
    }

    #[test]
    fn source_flowing_through_a_helper_into_a_sink_is_flagged() {
        let learn = r#"
pub fn stamp() -> u64 {
    SystemTime::now().as_secs()
}
pub fn checkpoint(fs: &FsHandle) {
    let t = stamp();
    write_atomic(fs, t);
}
"#;
        let findings = run(&[("crates/learn/src/state.rs", learn)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, Rule::DeterminismTaint);
        assert_eq!(f.line, 7);
        assert!(f.message.contains("write_atomic"), "{}", f.message);
        assert!(f.message.contains("SystemTime::now"), "{}", f.message);
        assert_eq!(f.chain.len(), 3, "{:?}", f.chain);
        assert!(f.chain[2].contains("source `SystemTime::now`"));
    }

    #[test]
    fn untainted_sinks_are_clean() {
        let src = "pub fn save(fs: &FsHandle, x: u64) { write_atomic(fs, x); }";
        assert!(run(&[("crates/learn/src/state.rs", src)]).is_empty());
    }

    #[test]
    fn hash_iteration_on_typed_receiver_is_a_source() {
        let src = r#"
pub fn emit(fs: &FsHandle, m: &HashMap) {
    for k in m.keys() {
        write_atomic(fs, k);
    }
}
"#;
        let findings = run(&[("crates/learn/src/x.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("hash iteration order"));
    }

    #[test]
    fn sanitize_on_the_source_line_kills_the_source() {
        let src = r#"
pub fn checkpoint(fs: &FsHandle) {
    // wlc-lint: sanitize(determinism-taint, reason = "wall time logged, never serialized")
    let t = SystemTime::now();
    write_atomic(fs, 0);
}
"#;
        assert!(run(&[("crates/learn/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn sanitize_on_the_call_line_stops_propagation() {
        let src = r#"
pub fn stamp() -> u64 { SystemTime::now().as_secs() }
pub fn checkpoint(fs: &FsHandle) {
    // wlc-lint: sanitize(determinism-taint, reason = "stamp feeds the log line only")
    let t = stamp();
    write_atomic(fs, 0);
}
"#;
        assert!(run(&[("crates/learn/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn allow_at_the_sink_suppresses_one_finding() {
        let src = r#"
pub fn checkpoint(fs: &FsHandle) {
    let t = SystemTime::now();
    // wlc-lint: allow(determinism-taint, reason = "bench artifact, excluded from sweeps")
    write_atomic(fs, t);
}
"#;
        assert!(run(&[("crates/learn/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn fs_method_sinks_and_learn_score_sinks_are_recognized() {
        let learn = "pub struct Sup; impl Sup { pub fn score(&self) -> f64 { 0.0 } }";
        let serve = r#"
pub fn persist(fs: &FsHandle, s: &Sup) {
    let t = Instant::now();
    fs.rename(a, b);
    s.score();
}
"#;
        let findings = run(&[
            ("crates/learn/src/supervisor.rs", learn),
            ("crates/serve/src/x.rs", serve),
        ]);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("Fs::rename")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("shadow score `Sup::score`")));
    }
}
