//! Transitive hot-path purity: allocation- and blocking-freedom for
//! everything reachable from a `#[wlc_hot]` root.
//!
//! Functions on the batched training / inference / serving hot path are
//! marked with the inert `#[wlc_hot]` attribute (crate `wlc-hot`). The
//! performance contract (see `docs/performance.md`) is that these
//! functions perform **zero heap allocations** in steady state — buffers
//! come from a pre-sized `wlc_nn::Workspace` — and never block: no lock
//! acquisition, thread parking, channel waits, or filesystem/network
//! I/O. A helper called *from* a hot function is held to the same
//! contract, which the old body-scan (`hotalloc`) could not see.
//!
//! This analysis walks the call graph from every hot root and scans each
//! reachable body:
//!
//! - allocating constructs (`.to_vec()`, `.clone()`, `.collect()`,
//!   `Vec::`/`String::`/... associated fns, `vec!`/`format!`) →
//!   `alloc-in-hot-path`;
//! - blocking constructs (`.lock()`, `.wait()`, `.recv()`, `.join()`,
//!   `thread::sleep`/`park`, and `std::fs` / `File::` / `OpenOptions` /
//!   TCP/UDP socket touches) → `blocking-in-hot-path`.
//!
//! Every finding in a non-root function carries the full root→function
//! call chain. Intentional exceptions are suppressed per occurrence with
//! `// wlc-lint: allow(<rule>, reason = "...")` at the offending line.

use std::collections::BTreeMap;

use crate::callgraph::Graph;
use crate::items;
use crate::lexer::TokKind;
use crate::{Finding, Rule, SourceFile};

/// Methods that allocate when called as `.name(...)`.
const ALLOC_METHODS: [&str; 5] = ["to_vec", "to_owned", "to_string", "clone", "collect"];

/// Owned container / heap types whose associated functions allocate
/// (matched as `Type::`).
const ALLOC_TYPES: [&str; 6] = ["Vec", "VecDeque", "Box", "String", "BTreeMap", "HashMap"];

/// Macros that allocate (the `!` sigil is matched separately).
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Methods that block when called as `.name(...)`.
const BLOCK_METHODS: [&str; 6] = [
    "lock",
    "wait",
    "wait_timeout",
    "recv",
    "recv_timeout",
    "join",
];

/// Types whose associated functions mean filesystem / network I/O
/// (matched as `Type::`).
const IO_TYPES: [&str; 5] = [
    "File",
    "OpenOptions",
    "TcpStream",
    "TcpListener",
    "UdpSocket",
];

/// Scans the whole workspace: every function reachable from a
/// `#[wlc_hot]` root must neither allocate nor block.
pub fn analyze(files: &[SourceFile], graph: &Graph) -> Vec<Finding> {
    // Map (file, def) → node to translate hot markers into roots.
    let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        node_of.insert((n.file, n.def), i);
    }
    let mut roots: Vec<usize> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for di in items::hot_fn_defs(file) {
            if let Some(&n) = node_of.get(&(fi, di)) {
                roots.push(n);
            }
        }
    }
    let reach = graph.reachable(&roots);

    let mut findings = Vec::new();
    for &n in &reach.order {
        let node = &graph.nodes[n];
        let file = &files[node.file];
        let def = &file.model.functions[node.def];
        let chain = reach.chain(graph, files, n);
        // A root's chain is just itself — drop it, the site says enough.
        let chain = if chain.len() > 1 { chain } else { Vec::new() };
        let toks = &file.tokens;
        let (open, close) = def.body;
        for i in open..=close.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let as_method = i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            let as_path = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(':'));
            let hit = if ALLOC_METHODS.contains(&t.text.as_str()) && as_method {
                Some((Rule::HotAlloc, format!(".{}()", t.text), "allocates"))
            } else if ALLOC_TYPES.contains(&t.text.as_str()) && as_path {
                Some((Rule::HotAlloc, format!("{}::", t.text), "allocates"))
            } else if ALLOC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                Some((Rule::HotAlloc, format!("{}!", t.text), "allocates"))
            } else if BLOCK_METHODS.contains(&t.text.as_str()) && as_method {
                Some((Rule::HotBlocking, format!(".{}()", t.text), "blocks"))
            } else if t.text == "thread"
                && as_path
                && toks.get(i + 3).is_some_and(|n| {
                    n.is_ident("sleep") || n.is_ident("park") || n.is_ident("park_timeout")
                })
            {
                let call = toks[i + 3].text.clone();
                Some((Rule::HotBlocking, format!("thread::{call}"), "blocks"))
            } else if (IO_TYPES.contains(&t.text.as_str()) || t.text == "fs") && as_path {
                Some((Rule::HotBlocking, format!("{}::", t.text), "performs I/O"))
            } else {
                None
            };
            let Some((rule, construct, verb)) = hit else {
                continue;
            };
            if file.model.allowed(rule.name(), t.line) {
                continue;
            }
            let where_ = if chain.is_empty() {
                "inside a `#[wlc_hot]` function".to_string()
            } else {
                format!("in `{}`, reachable from a `#[wlc_hot]` root", node.qual)
            };
            findings.push(Finding {
                rule,
                path: file.rel.clone(),
                line: t.line,
                message: format!(
                    "`{construct}` {verb} {where_}; keep the hot path pure or annotate \
                     `// wlc-lint: allow({}, reason = \"...\")`",
                    rule.name()
                ),
                chain: chain.clone(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| source_from_str(p, s)).collect();
        let graph = Graph::build(&files);
        analyze(&files, &graph)
    }

    #[test]
    fn allocations_in_hot_fn_are_flagged() {
        let src = r#"
use wlc_hot::wlc_hot;
#[wlc_hot]
fn hot(xs: &[f64]) -> f64 {
    let v = xs.to_vec();
    let w: Vec<f64> = xs.iter().copied().collect();
    let b = Vec::with_capacity(4);
    let m = vec![0.0; 4];
    v[0] + w[0]
}
"#;
        let findings = run(&[("crates/nn/src/x.rs", src)]);
        assert_eq!(findings.len(), 4, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == Rule::HotAlloc));
        assert!(findings.iter().all(|f| f.chain.is_empty()));
    }

    #[test]
    fn unmarked_fn_may_allocate() {
        let src = "fn cold(xs: &[f64]) -> Vec<f64> { xs.to_vec() }";
        assert!(run(&[("crates/nn/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn use_statement_is_not_a_marker() {
        let src = "use wlc_hot::wlc_hot;\nfn cold(xs: &[f64]) -> Vec<f64> { xs.to_vec() }";
        assert!(run(&[("crates/nn/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = r#"
#[wlc_hot]
fn hot(xs: &[f64]) -> f64 {
    // wlc-lint: allow(alloc-in-hot-path, reason = "one-time workspace growth")
    let v = xs.to_vec();
    v[0]
}
"#;
        assert!(run(&[("crates/nn/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn type_annotations_do_not_trip_the_path_check() {
        let src = r#"
#[wlc_hot]
fn hot(out: &mut Vec<f64>, xs: &[f64]) {
    let first: Vec<f64>;
    out.copy_from_slice(xs);
}
"#;
        let f = run(&[("crates/nn/src/x.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    #[wlc_hot]
    fn hot_in_test(xs: &[f64]) -> Vec<f64> {
        xs.to_vec()
    }
}
"#;
        assert!(run(&[("crates/nn/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn transitive_callee_allocations_are_flagged_with_chain() {
        let a = r#"
use wlc_hot::wlc_hot;
#[wlc_hot]
pub fn hot(xs: &[f64]) -> f64 {
    helper(xs)
}
"#;
        let b = "pub fn helper(xs: &[f64]) -> f64 {\n    let v = xs.to_vec();\n    v[0]\n}";
        let findings = run(&[("crates/nn/src/a.rs", a), ("crates/nn/src/b.rs", b)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, Rule::HotAlloc);
        assert_eq!(f.path, "crates/nn/src/b.rs");
        assert_eq!(
            f.chain,
            vec![
                "hot (crates/nn/src/a.rs:4)".to_string(),
                "helper (called at crates/nn/src/a.rs:5)".to_string(),
            ]
        );
    }

    #[test]
    fn blocking_calls_anywhere_on_the_hot_path_are_flagged() {
        let src = r#"
#[wlc_hot]
pub fn hot(q: &Queue) {
    step(q);
}
pub fn step(q: &Queue) {
    let g = q.state.lock();
    thread::sleep(dur);
    let data = fs::read_to_string(p);
}
"#;
        let findings = run(&[("crates/nn/src/x.rs", src)]);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == Rule::HotBlocking));
        assert!(findings.iter().all(|f| !f.chain.is_empty()));
    }

    #[test]
    fn cold_callees_of_cold_functions_are_ignored() {
        let src = r#"
#[wlc_hot]
pub fn hot(xs: &[f64]) -> f64 { xs[0] }
pub fn cold() { let g = lockish.lock(); helper(); }
pub fn helper() { let v = Vec::new(); }
"#;
        assert!(run(&[("crates/nn/src/x.rs", src)]).is_empty());
    }
}
