//! Guard-coverage: fields accessed under a lock in one method but
//! without it in another.
//!
//! `locks.rs` checks the *order* in which locks are acquired; this rule
//! checks that a lock is acquired *at all*. For every struct in the
//! concurrency crates (`wlc-exec`, `wlc-serve`) that owns a
//! `Mutex`/`TrackedMutex`/`RwLock` field, it records each `self.field`
//! access to the struct's plain data fields in shared-access (`&self`)
//! methods, together with whether one of the struct's lock guards is
//! held at that point. A field that is accessed under a guard somewhere
//! and bare somewhere else is reported at every bare access, with the
//! guarded site as provenance — that mix is how a data race (or a
//! torn-invariant read) slips past review.
//!
//! Conservative choices, mirroring `locks.rs`: `&mut self` and
//! by-value methods are exempt (exclusive access needs no guard);
//! atomics, cells, condvars, `OnceLock`s and the lock fields themselves
//! are not "plain data"; a `let`-bound guard is assumed held to the end
//! of the body unless `drop(guard)` appears, a temporary guard to the
//! end of its statement. Suppress deliberate lock-free reads with
//! `// wlc-lint: allow(guard-coverage, reason = "...")`.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::Graph;
use crate::items::Receiver;
use crate::lexer::TokKind;
use crate::model::LOCK_TYPES;
use crate::{Finding, Rule, SourceFile};

/// Type substrings marking a field as self-synchronizing (not plain
/// data for the purposes of this rule).
const SYNC_TYPES: [&str; 3] = ["Atomic", "OnceLock", "Cell"];

/// Whether `rel` is in the concurrency crates this rule polices.
fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/exec/src/") || rel.starts_with("crates/serve/src/")
}

/// One recorded access to a plain field.
struct Access {
    owner: String,
    field: String,
    guarded: bool,
    qual: String,
    rel: String,
    line: u32,
    file: usize,
}

/// Runs guard-coverage over the workspace graph.
pub fn analyze(files: &[SourceFile], graph: &Graph) -> Vec<Finding> {
    // Structs with at least one non-condvar lock field, and their plain
    // data fields, collected across every in-scope file.
    let mut lock_fields: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut plain_fields: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for file in files {
        if !in_scope(&file.rel) {
            continue;
        }
        for lf in &file.model.lock_fields {
            if lf.is_condvar() {
                continue;
            }
            // A unit-payload lock (`Mutex<()>`) is a region lock: it
            // serializes a procedure, not sibling data, so it does not
            // put the struct's plain fields under guard discipline.
            let unit =
                file.model.fields.iter().any(|fd| {
                    fd.owner == lf.owner && fd.field == lf.field && fd.ty.contains("( )")
                });
            if unit {
                continue;
            }
            lock_fields
                .entry(lf.owner.clone())
                .or_default()
                .insert(lf.field.clone());
        }
    }
    for file in files {
        if !in_scope(&file.rel) {
            continue;
        }
        for fd in &file.model.fields {
            if !lock_fields.contains_key(&fd.owner) {
                continue;
            }
            let is_lockish = LOCK_TYPES.iter().any(|t| fd.ty.contains(t))
                || SYNC_TYPES.iter().any(|t| fd.ty.contains(t));
            if !is_lockish {
                plain_fields
                    .entry(fd.owner.clone())
                    .or_default()
                    .insert(fd.field.clone());
            }
        }
    }

    // Record every plain-field access in `&self` methods of those
    // structs, with held-guard state.
    let mut accesses: Vec<Access> = Vec::new();
    for node in &graph.nodes {
        let file = &files[node.file];
        if !in_scope(&file.rel) || node.sig.receiver != Receiver::Ref {
            continue;
        }
        let def = &file.model.functions[node.def];
        let Some(owner) = def.self_type.clone() else {
            continue;
        };
        let Some(locks) = lock_fields.get(&owner) else {
            continue;
        };
        let Some(plains) = plain_fields.get(&owner) else {
            continue;
        };
        let toks = &file.tokens;
        let (open, close) = def.body;
        let mut named_guards: BTreeSet<String> = BTreeSet::new();
        let mut temp_guard_until: usize = 0; // token index bound
        let mut i = open + 1;
        while i < close {
            let t = &toks[i];
            // `drop(guard)` releases a named guard.
            if t.is_ident("drop")
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks
                    .get(i + 2)
                    .is_some_and(|n| named_guards.contains(&n.text))
            {
                named_guards.remove(&toks[i + 2].text.clone());
                i += 3;
                continue;
            }
            // `self . field ...`
            let is_self_field = t.is_keyword("self")
                && toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident);
            if !is_self_field {
                i += 1;
                continue;
            }
            let fname = toks[i + 2].text.clone();
            if locks.contains(&fname)
                && toks.get(i + 3).is_some_and(|n| n.is_punct('.'))
                && toks.get(i + 4).is_some_and(|n| {
                    n.is_ident("lock") || n.is_ident("read") || n.is_ident("write")
                })
                && toks.get(i + 5).is_some_and(|n| n.is_punct('('))
            {
                // Acquisition. `let g =` / `if let Ok(g) =` within the
                // preceding few tokens means a named binding.
                let mut named = None;
                for back in 1..=4usize {
                    let Some(j) = i.checked_sub(back) else { break };
                    if toks[j].is_punct('=') && j >= 1 && toks[j - 1].kind == TokKind::Ident {
                        named = Some(toks[j - 1].text.clone());
                        break;
                    }
                }
                match named {
                    Some(g) => {
                        named_guards.insert(g);
                    }
                    None => {
                        // Temporary: held to the end of this statement.
                        let mut k = i + 5;
                        while k < close && !toks[k].is_punct(';') {
                            k += 1;
                        }
                        temp_guard_until = temp_guard_until.max(k);
                    }
                }
                i += 5;
                continue;
            }
            if plains.contains(&fname) && !toks.get(i + 3).is_some_and(|n| n.is_punct('(')) {
                accesses.push(Access {
                    owner: owner.clone(),
                    field: fname,
                    guarded: !named_guards.is_empty() || i < temp_guard_until,
                    qual: node.qual.clone(),
                    rel: file.rel.clone(),
                    line: toks[i + 2].line,
                    file: node.file,
                });
            }
            i += 3;
        }
    }

    // A field with both guarded and bare accesses → report every bare
    // access, citing one guarded site.
    let mut findings = Vec::new();
    let mut keys: BTreeSet<(String, String)> = BTreeSet::new();
    for a in &accesses {
        keys.insert((a.owner.clone(), a.field.clone()));
    }
    for (owner, field) in keys {
        let of = |a: &&Access| a.owner == owner && a.field == field;
        let Some(guarded) = accesses.iter().find(|a| of(a) && a.guarded) else {
            continue;
        };
        for bare in accesses.iter().filter(|a| of(a) && !a.guarded) {
            let file = &files[bare.file];
            if file.model.allowed("guard-coverage", bare.line) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::GuardCoverage,
                path: bare.rel.clone(),
                line: bare.line,
                message: format!(
                    "`{owner}.{field}` is read/written here without a lock, but `{}` accesses \
                     it under a guard — take the same lock or annotate \
                     `// wlc-lint: allow(guard-coverage, reason = \"...\")`",
                    guarded.qual
                ),
                chain: vec![format!(
                    "guarded access in {} at {}:{}",
                    guarded.qual, guarded.rel, guarded.line
                )],
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;

    fn run(src: &str) -> Vec<Finding> {
        let files = vec![source_from_str("crates/serve/src/x.rs", src)];
        let graph = Graph::build(&files);
        analyze(&files, &graph)
    }

    #[test]
    fn bare_access_to_a_guarded_field_is_flagged() {
        let src = r#"
pub struct Slot {
    current: TrackedMutex<u64>,
    epoch: u64,
}
impl Slot {
    pub fn bump(&self) {
        let g = self.current.lock();
        let e = self.epoch;
    }
    pub fn peek(&self) -> u64 {
        self.epoch
    }
}
"#;
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, Rule::GuardCoverage);
        assert_eq!(f.line, 12);
        assert!(f.message.contains("Slot.epoch"), "{}", f.message);
        assert!(f.chain[0].contains("Slot::bump"), "{:?}", f.chain);
    }

    #[test]
    fn consistently_bare_or_consistently_guarded_fields_are_fine() {
        let src = r#"
pub struct Slot {
    current: Mutex<u64>,
    epoch: u64,
    name: u32,
}
impl Slot {
    pub fn a(&self) -> u64 { let g = self.current.lock(); self.epoch }
    pub fn b(&self) -> u64 { let g = self.current.lock(); self.epoch }
    pub fn c(&self) -> u32 { self.name }
    pub fn d(&self) -> u32 { self.name }
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn mut_self_methods_are_exempt() {
        let src = r#"
pub struct Slot {
    current: Mutex<u64>,
    epoch: u64,
}
impl Slot {
    pub fn a(&self) -> u64 { let g = self.current.lock(); self.epoch }
    pub fn reset(&mut self) { self.epoch = 0; }
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn dropping_the_guard_ends_coverage() {
        let src = r#"
pub struct Slot {
    current: Mutex<u64>,
    epoch: u64,
}
impl Slot {
    pub fn a(&self) -> u64 { let g = self.current.lock(); self.epoch }
    pub fn b(&self) -> u64 {
        let g = self.current.lock();
        drop(g);
        self.epoch
    }
}
"#;
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 11);
    }

    #[test]
    fn atomics_and_locks_are_not_plain_data() {
        let src = r#"
pub struct Slot {
    current: Mutex<u64>,
    hits: AtomicU64,
}
impl Slot {
    pub fn a(&self) -> u64 { let g = self.current.lock(); self.hits.load(order) }
    pub fn b(&self) -> u64 { self.hits.load(order) }
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = r#"
pub struct Slot {
    current: Mutex<u64>,
    epoch: u64,
}
impl Slot {
    pub fn a(&self) -> u64 { let g = self.current.lock(); self.epoch }
    pub fn peek(&self) -> u64 {
        // wlc-lint: allow(guard-coverage, reason = "monotonic counter, torn read acceptable")
        self.epoch
    }
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn unit_mutexes_are_region_locks_not_data_guards() {
        let src = r#"
pub struct Router {
    reload: TrackedMutex<()>,
    replicas: u64,
}
impl Router {
    pub fn reload_all(&self) { let g = self.reload.lock(); let r = self.replicas; }
    pub fn peek(&self) -> u64 { self.replicas }
}
"#;
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let src = r#"
pub struct Slot {
    current: Mutex<u64>,
    epoch: u64,
}
impl Slot {
    pub fn a(&self) -> u64 { let g = self.current.lock(); self.epoch }
    pub fn peek(&self) -> u64 { self.epoch }
}
"#;
        let files = vec![source_from_str("crates/nn/src/x.rs", src)];
        let graph = Graph::build(&files);
        assert!(analyze(&files, &graph).is_empty());
    }
}
