//! Inter-procedural lock-order analysis.
//!
//! Builds a lock-acquisition graph over the analyzed files: nodes are
//! lock classes (`Struct.field` for lock-typed struct fields, the
//! static's name for lock statics, `?name` for locks reached through an
//! unresolvable receiver), and there is an edge `A -> B` whenever some
//! code path acquires `B` while holding `A` — either directly or by
//! calling a function that (transitively) acquires `B`. Any cycle in
//! the graph is a potential ABBA deadlock and is reported with the
//! `file:line` provenance of every participating edge.
//!
//! The analysis is token-based and deliberately over-approximates hold
//! durations (a `let`-bound guard is assumed held to the end of its
//! block unless explicitly `drop`ped) while under-approximating
//! receiver aliasing (a `.read()`/`.write()` on an unknown receiver is
//! ignored rather than guessed, so `io::Read`/`io::Write` calls never
//! become phantom locks).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{TokKind, Token};
use crate::model::FuncDef;
use crate::{Finding, Rule, SourceFile};

/// Method names that are never treated as calls into analyzed code:
/// they are either acquisition primitives (handled separately) or std
/// methods whose names collide with workspace functions too easily.
const CALL_STOPLIST: [&str; 38] = [
    "lock",
    "read",
    "write",
    "wait",
    "wait_timeout",
    "notify_all",
    "notify_one",
    "push",
    "pop",
    "len",
    "get",
    "insert",
    "remove",
    "contains",
    "clone",
    "next",
    "iter",
    "collect",
    "map",
    "take",
    "send",
    "recv",
    "join",
    "spawn",
    "new",
    "default",
    "with",
    "drop",
    "min",
    "max",
    "flush",
    "clear",
    "parse",
    "into",
    "from",
    "fmt",
    "is_empty",
    "unwrap_or_else",
];

/// What a `.lock()/.read()/.write()` receiver resolved to.
enum Recv {
    /// A known lock class.
    Node(String),
    /// A condition variable — not an order node.
    Condvar,
    /// Unresolvable receiver.
    Unknown(Option<String>),
}

/// One acquisition or call event observed while scanning a body.
struct CallEv {
    callee: String,
    recv_base: Option<String>,
    line: u32,
    held: Vec<String>,
}

#[derive(Default)]
struct Summary {
    /// Lock classes acquired directly in this function.
    direct: BTreeSet<String>,
    /// Calls made, with the held set at the call site.
    calls: Vec<CallEv>,
    /// Direct edges `(from, to, provenance)`.
    edges: Vec<(String, String, String)>,
    /// Recursive-acquisition findings.
    findings: Vec<Finding>,
}

struct Ctx<'a> {
    /// `(owner, field) -> is_condvar` for all lock fields.
    fields: BTreeMap<(String, String), bool>,
    /// Field name -> owners declaring a lock field with that name.
    field_owners: BTreeMap<String, Vec<String>>,
    /// Names of lock statics.
    statics: BTreeSet<String>,
    /// Function qual -> definitions (file index, def index).
    by_qual: BTreeMap<String, Vec<(usize, usize)>>,
    /// Bare function name -> quals.
    by_name: BTreeMap<String, Vec<String>>,
    files: &'a [&'a SourceFile],
}

/// Runs the lock-order analysis over `files` (wlc-exec + wlc-serve).
pub fn analyze(files: &[&SourceFile]) -> Vec<Finding> {
    let mut ctx = Ctx {
        fields: BTreeMap::new(),
        field_owners: BTreeMap::new(),
        statics: BTreeSet::new(),
        by_qual: BTreeMap::new(),
        by_name: BTreeMap::new(),
        files,
    };
    for (fi, file) in files.iter().enumerate() {
        for lf in &file.model.lock_fields {
            ctx.fields
                .insert((lf.owner.clone(), lf.field.clone()), lf.is_condvar());
            ctx.field_owners
                .entry(lf.field.clone())
                .or_default()
                .push(lf.owner.clone());
        }
        for (name, _) in &file.model.lock_statics {
            ctx.statics.insert(name.clone());
        }
        for (di, def) in file.model.functions.iter().enumerate() {
            if def.is_test {
                continue;
            }
            ctx.by_qual
                .entry(def.qual.clone())
                .or_default()
                .push((fi, di));
            ctx.by_name
                .entry(def.name.clone())
                .or_default()
                .push(def.qual.clone());
        }
    }

    let mut findings = Vec::new();
    let mut summaries: BTreeMap<String, Summary> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for def in &file.model.functions {
            if def.is_test {
                continue;
            }
            let mut s = scan_body(file, def, &ctx);
            findings.append(&mut s.findings);
            let entry = summaries.entry(def.qual.clone()).or_default();
            entry.direct.extend(s.direct);
            entry.calls.extend(s.calls);
            entry.edges.extend(s.edges);
        }
        let _ = fi;
    }

    // Fixpoint: `enters(f)` = locks acquired by f or anything it calls.
    let mut enters: BTreeMap<String, BTreeSet<String>> = summaries
        .iter()
        .map(|(q, s)| (q.clone(), s.direct.clone()))
        .collect();
    loop {
        let mut changed = false;
        let quals: Vec<String> = summaries.keys().cloned().collect();
        for q in &quals {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for call in &summaries[q].calls {
                for callee in resolve_call(call, &ctx) {
                    if let Some(set) = enters.get(&callee) {
                        add.extend(set.iter().cloned());
                    }
                }
            }
            let cur = enters.entry(q.clone()).or_default();
            for n in add {
                changed |= cur.insert(n);
            }
        }
        if !changed {
            break;
        }
    }

    // Edge set: direct edges plus call-mediated edges.
    let mut edges: BTreeMap<(String, String), String> = BTreeMap::new();
    for (q, s) in &summaries {
        for (a, b, prov) in &s.edges {
            edges
                .entry((a.clone(), b.clone()))
                .or_insert_with(|| prov.clone());
        }
        for call in &s.calls {
            if call.held.is_empty() {
                continue;
            }
            for callee in resolve_call(call, &ctx) {
                let Some(inner) = enters.get(&callee) else {
                    continue;
                };
                let file = &ctx.files[file_of(q, &ctx)];
                for b in inner {
                    for a in &call.held {
                        if a != b {
                            edges.entry((a.clone(), b.clone())).or_insert_with(|| {
                                format!("{}:{} (via call to {})", file.rel, call.line, callee)
                            });
                        }
                    }
                }
            }
        }
    }

    findings.extend(report_cycles(&edges));
    findings
}

fn file_of(qual: &str, ctx: &Ctx) -> usize {
    ctx.by_qual
        .get(qual)
        .and_then(|v| v.first())
        .map(|&(fi, _)| fi)
        .unwrap_or(0)
}

/// Resolves a call event to candidate function quals.
fn resolve_call(call: &CallEv, ctx: &Ctx) -> Vec<String> {
    if CALL_STOPLIST.contains(&call.callee.as_str()) {
        return Vec::new();
    }
    // `self.method(..)` resolves within the impl type via the qual the
    // scanner already formed (`Type::method`); plain names resolve to a
    // free function first, then fall back to a unique bare-name match.
    if let Some(base) = &call.recv_base {
        let qual = format!("{base}::{}", call.callee);
        if ctx.by_qual.contains_key(&qual) {
            return vec![qual];
        }
    }
    if ctx.by_qual.contains_key(&call.callee) {
        return vec![call.callee.clone()];
    }
    match ctx.by_name.get(&call.callee) {
        Some(quals) => quals.clone(),
        None => Vec::new(),
    }
}

struct Guard {
    node: String,
    named: Option<String>,
    depth: i64,
    temp: bool,
}

fn scan_body(file: &SourceFile, def: &FuncDef, ctx: &Ctx) -> Summary {
    let toks = &file.tokens;
    let (open, close) = def.body;
    let mut s = Summary::default();
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0i64;
    let mut paren = 0i64;
    let mut pending_let = false;
    let mut stmt_let: Option<String> = None;

    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct => match t.text.as_bytes().first() {
                Some(b'{') => depth += 1,
                Some(b'}') => {
                    depth -= 1;
                    held.retain(|g| g.depth <= depth);
                }
                Some(b'(') => paren += 1,
                Some(b')') => paren = paren.saturating_sub(1).max(0),
                Some(b';') if paren == 0 => {
                    held.retain(|g| !g.temp);
                    stmt_let = None;
                    pending_let = false;
                }
                _ => {}
            },
            TokKind::Ident => {
                if pending_let {
                    if t.text == "mut" {
                        i += 1;
                        continue;
                    }
                    stmt_let = Some(t.text.clone());
                    pending_let = false;
                    i += 1;
                    continue;
                }
                match t.text.as_str() {
                    "let" => {
                        pending_let = true;
                        stmt_let = None;
                    }
                    "drop"
                        if toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                            && toks.get(i + 3).is_some_and(|n| n.is_punct(')')) =>
                    {
                        if let Some(var) = toks.get(i + 2).filter(|v| v.kind == TokKind::Ident) {
                            if let Some(pos) = held
                                .iter()
                                .rposition(|g| g.named.as_deref() == Some(&var.text))
                            {
                                held.remove(pos);
                            }
                        }
                        i += 4;
                        continue;
                    }
                    "lock" | "read" | "write"
                        if toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                            && i > open + 1
                            && toks[i - 1].is_punct('.') =>
                    {
                        let method = t.text.clone();
                        match resolve_receiver(toks, i, def, ctx) {
                            Recv::Condvar => {}
                            Recv::Unknown(base) => {
                                // Only a bare `.lock()` on a simple local
                                // becomes an opaque node; `.read/.write`
                                // on unknown receivers are I/O, not locks.
                                if method == "lock" {
                                    if let Some(b) = base {
                                        acquire(
                                            &mut s,
                                            &mut held,
                                            format!("?{b}"),
                                            file,
                                            t.line,
                                            depth,
                                            &stmt_let,
                                            &method,
                                        );
                                    }
                                }
                            }
                            Recv::Node(id) => {
                                acquire(
                                    &mut s, &mut held, id, file, t.line, depth, &stmt_let, &method,
                                );
                            }
                        }
                        i += 2;
                        continue;
                    }
                    _ if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) => {
                        // A call. Method call if preceded by `.`; free or
                        // path call otherwise. Skip control-flow keywords.
                        let kw = matches!(
                            t.text.as_str(),
                            "if" | "while"
                                | "match"
                                | "for"
                                | "return"
                                | "loop"
                                | "fn"
                                | "move"
                                | "in"
                                | "impl"
                                | "else"
                                | "Some"
                                | "Ok"
                                | "Err"
                                | "None"
                        );
                        if !kw {
                            let is_method = toks[i - 1].is_punct('.');
                            let recv_base = if is_method {
                                chain_base(toks, i).or(def.self_type.clone())
                            } else {
                                None
                            };
                            s.calls.push(CallEv {
                                callee: t.text.clone(),
                                recv_base,
                                line: t.line,
                                held: held.iter().map(|g| g.node.clone()).collect(),
                            });
                        }
                    }
                    _ => {}
                }
            }
            _ => {
                if pending_let {
                    pending_let = false; // pattern binding; treat as temp
                }
            }
        }
        i += 1;
    }
    s
}

#[allow(clippy::too_many_arguments)]
fn acquire(
    s: &mut Summary,
    held: &mut Vec<Guard>,
    node: String,
    file: &SourceFile,
    line: u32,
    depth: i64,
    stmt_let: &Option<String>,
    method: &str,
) {
    if method == "lock" && held.iter().any(|g| g.node == node) {
        s.findings.push(Finding {
            chain: Vec::new(),
            rule: Rule::LockOrder,
            path: file.rel.clone(),
            line,
            message: format!("lock `{node}` re-acquired while already held (self-deadlock)"),
        });
        return;
    }
    for g in held.iter() {
        if g.node != node {
            s.edges
                .push((g.node.clone(), node.clone(), format!("{}:{line}", file.rel)));
        }
    }
    s.direct.insert(node.clone());
    held.push(Guard {
        node,
        named: stmt_let.clone(),
        depth,
        temp: stmt_let.is_none(),
    });
}

/// Walks back from the `lock`/`read`/`write` ident to the start of the
/// receiver chain. Returns the resolved lock class.
fn resolve_receiver(toks: &[Token], method_idx: usize, def: &FuncDef, ctx: &Ctx) -> Recv {
    // Collect the chain segments right-to-left, e.g. for
    // `self.state.lock()` -> ["state", "self"]; for
    // `EDGES.get_or_init(..).lock()` -> ["get_or_init()", "EDGES"].
    let mut segs: Vec<String> = Vec::new();
    let mut j = method_idx as i64 - 2; // skip the `.` at method_idx - 1
    while j >= 0 {
        let t = &toks[j as usize];
        if t.is_punct(')') {
            // Skip the balanced call arguments.
            let mut d = 0i64;
            while j >= 0 {
                let u = &toks[j as usize];
                if u.is_punct(')') {
                    d += 1;
                } else if u.is_punct('(') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            j -= 1;
            if j >= 0 && toks[j as usize].kind == TokKind::Ident {
                segs.push(format!("{}()", toks[j as usize].text));
                j -= 1;
            } else {
                return Recv::Unknown(None);
            }
        } else if t.kind == TokKind::Ident {
            segs.push(t.text.clone());
            j -= 1;
        } else {
            return Recv::Unknown(None);
        }
        // Continue only through `.` or `::`.
        if j >= 0 && toks[j as usize].is_punct('.') {
            j -= 1;
            continue;
        }
        if j >= 1 && toks[j as usize].is_punct(':') && toks[j as usize - 1].is_punct(':') {
            j -= 2;
            continue;
        }
        break;
    }
    segs.reverse();
    let Some(base) = segs.first() else {
        return Recv::Unknown(None);
    };

    // `self.field.lock()` — resolve against the impl type's lock fields.
    if base == "self" && segs.len() >= 2 {
        let field = segs[1].trim_end_matches("()").to_string();
        if let Some(ty) = &def.self_type {
            if let Some(&condvar) = ctx.fields.get(&(ty.clone(), field.clone())) {
                return if condvar {
                    Recv::Condvar
                } else {
                    Recv::Node(format!("{ty}.{field}"))
                };
            }
        }
        // Fall back to a globally-unique field name.
        if let Some(owners) = ctx.field_owners.get(&field) {
            if owners.len() == 1 {
                let owner = &owners[0];
                let condvar = ctx.fields[&(owner.clone(), field.clone())];
                return if condvar {
                    Recv::Condvar
                } else {
                    Recv::Node(format!("{owner}.{field}"))
                };
            }
        }
        return Recv::Unknown(Some(format!("self.{field}")));
    }

    // `STATIC.lock()` or `STATIC.get_or_init(..).lock()`.
    let base_name = base.trim_end_matches("()").to_string();
    if ctx.statics.contains(&base_name) {
        return Recv::Node(base_name);
    }

    // `var.field.lock()` where `field` is a globally-unique lock field.
    if segs.len() >= 2 {
        let field = segs[segs.len() - 1].trim_end_matches("()").to_string();
        if let Some(owners) = ctx.field_owners.get(&field) {
            if owners.len() == 1 {
                let owner = &owners[0];
                let condvar = ctx.fields[&(owner.clone(), field.clone())];
                return if condvar {
                    Recv::Condvar
                } else {
                    Recv::Node(format!("{owner}.{field}"))
                };
            }
        }
    }

    // `local.lock()` — a lock behind a local binding (e.g. Arc<Mutex<..>>).
    if segs.len() == 1 && !base.ends_with("()") {
        return Recv::Unknown(Some(base_name));
    }
    Recv::Unknown(None)
}

/// Extracts the receiver base for an ordinary method call (for `self`
/// dispatch). Only `self.method(..)` matters; everything else is None.
fn chain_base(toks: &[Token], method_idx: usize) -> Option<String> {
    if method_idx >= 2 {
        let recv = &toks[method_idx - 2];
        if recv.is_ident("self") {
            return None; // caller substitutes the impl type
        }
        if recv.kind == TokKind::Ident {
            let first = recv.text.chars().next().unwrap_or('_');
            if first.is_uppercase() {
                // `Type::method(..)` is handled via path calls; receivers
                // that are values don't name a type.
                return Some(recv.text.clone());
            }
        }
    }
    None
}

/// Finds strongly-connected components with more than one node (or a
/// self-loop) and reports each as one finding.
fn report_cycles(edges: &BTreeMap<(String, String), String>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
        nodes.insert(a.as_str());
        nodes.insert(b.as_str());
    }

    // Tarjan's SCC, iterative to keep the lint itself panic-free on deep
    // graphs.
    let idx_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let node_list: Vec<&str> = nodes.iter().copied().collect();
    let n = node_list.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // Explicit DFS stack: (node, neighbor iterator position).
        let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, pos)) = dfs.last() {
            if pos == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let neighbors: Vec<usize> = adj
                .get(node_list[v])
                .map(|s| s.iter().map(|t| idx_of[t]).collect())
                .unwrap_or_default();
            if pos < neighbors.len() {
                if let Some(top) = dfs.last_mut() {
                    top.1 += 1;
                }
                let w = neighbors[pos];
                if index[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                dfs.pop();
                if let Some(&(p, _)) = dfs.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }

    let mut findings = Vec::new();
    for comp in sccs {
        let members: BTreeSet<&str> = comp.iter().map(|&i| node_list[i]).collect();
        let cyclic = members.len() > 1
            || members
                .iter()
                .any(|m| adj.get(m).is_some_and(|s| s.contains(m)));
        if !cyclic {
            continue;
        }
        let mut inner: Vec<String> = Vec::new();
        let mut first_prov: Option<(String, u32)> = None;
        for ((a, b), prov) in edges {
            if members.contains(a.as_str()) && members.contains(b.as_str()) {
                inner.push(format!("`{a}` -> `{b}` at {prov}"));
                if first_prov.is_none() {
                    let (path, line) = split_prov(prov);
                    first_prov = Some((path, line));
                }
            }
        }
        let (path, line) = first_prov.unwrap_or_else(|| (String::from("<workspace>"), 0));
        let names: Vec<&str> = members.iter().copied().collect();
        findings.push(Finding {
            chain: Vec::new(),
            rule: Rule::LockOrder,
            path,
            line,
            message: format!(
                "lock-order cycle among {{{}}}: {}",
                names.join(", "),
                inner.join("; ")
            ),
        });
    }
    findings
}

fn split_prov(prov: &str) -> (String, u32) {
    let head = prov.split(' ').next().unwrap_or(prov);
    match head.rsplit_once(':') {
        Some((path, line)) => (path.to_string(), line.parse().unwrap_or(0)),
        None => (head.to_string(), 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;

    #[test]
    fn abba_cycle_is_reported_with_provenance() {
        let src = r#"
use std::sync::Mutex;
static A: Mutex<u32> = Mutex::new(0);
static B: Mutex<u32> = Mutex::new(0);
fn ab() {
    let a = A.lock();
    let b = B.lock();
}
fn ba() {
    let b = B.lock();
    let a = A.lock();
}
"#;
        let file = source_from_str("crates/exec/src/lib.rs", src);
        let findings = analyze(&[&file]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert!(f.message.contains("lock-order cycle"));
        assert!(f.message.contains("`A` -> `B`"));
        assert!(f.message.contains("`B` -> `A`"));
        assert!(f.message.contains("crates/exec/src/lib.rs:"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = r#"
use std::sync::Mutex;
static A: Mutex<u32> = Mutex::new(0);
static B: Mutex<u32> = Mutex::new(0);
fn ab() {
    let a = A.lock();
    let b = B.lock();
}
fn also_ab() {
    let a = A.lock();
    drop(a);
    let b = B.lock();
}
"#;
        let file = source_from_str("crates/exec/src/lib.rs", src);
        assert!(analyze(&[&file]).is_empty());
    }

    #[test]
    fn cycle_through_a_call_is_found() {
        let src = r#"
use std::sync::Mutex;
static A: Mutex<u32> = Mutex::new(0);
static B: Mutex<u32> = Mutex::new(0);
fn takes_b() {
    let b = B.lock();
    helper();
}
fn helper() {
    let a = A.lock();
}
fn takes_a() {
    let a = A.lock();
    let b = B.lock();
}
"#;
        let file = source_from_str("crates/exec/src/lib.rs", src);
        let findings = analyze(&[&file]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("via call to helper"));
    }

    #[test]
    fn struct_fields_and_self_receivers_resolve() {
        let src = r#"
use std::sync::{Condvar, Mutex};
struct Q {
    state: Mutex<u32>,
    cv: Condvar,
}
impl Q {
    fn pop(&self) {
        let mut state = self.state.lock();
        state = self.cv.wait(state);
    }
    fn push(&self) {
        let state = self.state.lock();
    }
}
"#;
        let file = source_from_str("crates/exec/src/lib.rs", src);
        assert!(analyze(&[&file]).is_empty());
    }

    #[test]
    fn self_deadlock_is_reported() {
        let src = r#"
use std::sync::Mutex;
struct S { inner: Mutex<u32> }
impl S {
    fn bad(&self) {
        let a = self.inner.lock();
        let b = self.inner.lock();
    }
}
"#;
        let file = source_from_str("crates/exec/src/lib.rs", src);
        let findings = analyze(&[&file]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("re-acquired"));
    }

    #[test]
    fn test_code_is_ignored() {
        let src = r#"
use std::sync::Mutex;
static A: Mutex<u32> = Mutex::new(0);
static B: Mutex<u32> = Mutex::new(0);
#[cfg(test)]
mod tests {
    #[test]
    fn inversion_on_purpose() {
        let a = super::A.lock();
        let b = super::B.lock();
        drop(a);
        drop(b);
        let b = super::B.lock();
        let a = super::A.lock();
    }
}
"#;
        let file = source_from_str("crates/exec/src/lib.rs", src);
        assert!(analyze(&[&file]).is_empty());
    }
}
