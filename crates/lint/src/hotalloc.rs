//! Allocation-freedom analysis for `#[wlc_hot]` functions.
//!
//! Functions on the batched training / inference / serving hot path are
//! marked with the inert `#[wlc_hot]` attribute (crate `wlc-hot`). The
//! performance contract (see `docs/performance.md`) is that these
//! functions perform **zero heap allocations** in steady state: buffers
//! come from a pre-sized [`Workspace`], never from the allocator.
//!
//! This rule scans every marked function body for allocating constructs:
//! allocating method calls (`.to_vec()`, `.clone()`, `.collect()`, ...),
//! allocating-type constructor paths (`Vec::new`, `String::from`, ...),
//! and allocating macros (`vec![]`, `format!`). Intentional one-time
//! allocations can be suppressed per occurrence with
//! `// wlc-lint: allow(alloc-in-hot-path, reason = "...")` on the same
//! line or the line above.
//!
//! [`Workspace`]: ../wlc_nn/struct.Workspace.html

use crate::lexer::TokKind;
use crate::{Finding, Rule, SourceFile};

/// Methods that allocate when called as `.name(...)`.
const ALLOC_METHODS: [&str; 5] = ["to_vec", "to_owned", "to_string", "clone", "collect"];

/// Owned container / heap types whose associated functions allocate
/// (matched as `Type::`).
const ALLOC_TYPES: [&str; 6] = ["Vec", "VecDeque", "Box", "String", "BTreeMap", "HashMap"];

/// Macros that allocate (the `!` sigil is matched separately).
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Returns the token-index body ranges of every non-test function
/// annotated `#[wlc_hot]` in `file`.
fn hot_bodies(file: &SourceFile) -> Vec<(usize, usize)> {
    let toks = &file.tokens;
    let mut bodies = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        // The attribute form `#[wlc_hot]`: a `use wlc_hot::wlc_hot;` or a
        // prose mention never has `[` immediately before the identifier.
        let is_attr = t.kind == TokKind::Ident
            && t.text == "wlc_hot"
            && i >= 2
            && toks[i - 1].is_punct('[')
            && toks[i - 2].is_punct('#');
        if !is_attr {
            continue;
        }
        // Functions are recorded in source order; the annotated item is
        // the first one whose body opens after the attribute.
        if let Some(f) = file.model.functions.iter().find(|f| f.body.0 > i) {
            if !f.is_test {
                bodies.push(f.body);
            }
        }
    }
    bodies
}

/// Scans one file for allocations inside `#[wlc_hot]` functions.
pub fn analyze(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.tokens;
    for (open, close) in hot_bodies(file) {
        for i in open..=close.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            if t.kind != TokKind::Ident || file.model.in_test(i) {
                continue;
            }
            let construct = if ALLOC_METHODS.contains(&t.text.as_str())
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                Some(format!(".{}()", t.text))
            } else if ALLOC_TYPES.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            {
                Some(format!("{}::", t.text))
            } else if ALLOC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                Some(format!("{}!", t.text))
            } else {
                None
            };
            if let Some(construct) = construct {
                if !file.model.allowed("alloc-in-hot-path", t.line) {
                    findings.push(Finding {
                        rule: Rule::HotAlloc,
                        path: file.rel.clone(),
                        line: t.line,
                        message: format!(
                            "`{construct}` allocates inside a `#[wlc_hot]` function; reuse a \
                             workspace buffer or annotate \
                             `// wlc-lint: allow(alloc-in-hot-path, reason = \"...\")`"
                        ),
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;

    #[test]
    fn allocations_in_hot_fn_are_flagged() {
        let src = r#"
use wlc_hot::wlc_hot;
#[wlc_hot]
fn hot(xs: &[f64]) -> f64 {
    let v = xs.to_vec();
    let w: Vec<f64> = xs.iter().copied().collect();
    let b = Vec::with_capacity(4);
    let m = vec![0.0; 4];
    v[0] + w[0]
}
"#;
        let file = source_from_str("crates/nn/src/x.rs", src);
        let findings = analyze(&file);
        assert_eq!(findings.len(), 4, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == Rule::HotAlloc));
    }

    #[test]
    fn unmarked_fn_may_allocate() {
        let src = r#"
fn cold(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}
"#;
        let file = source_from_str("crates/nn/src/x.rs", src);
        assert!(analyze(&file).is_empty());
    }

    #[test]
    fn use_statement_is_not_a_marker() {
        let src = r#"
use wlc_hot::wlc_hot;
fn cold(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}
"#;
        let file = source_from_str("crates/nn/src/x.rs", src);
        assert!(analyze(&file).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = r#"
#[wlc_hot]
fn hot(xs: &[f64]) -> f64 {
    // wlc-lint: allow(alloc-in-hot-path, reason = "one-time workspace growth")
    let v = xs.to_vec();
    v[0]
}
"#;
        let file = source_from_str("crates/nn/src/x.rs", src);
        assert!(analyze(&file).is_empty());
    }

    #[test]
    fn type_annotations_do_not_trip_the_path_check() {
        let src = r#"
#[wlc_hot]
fn hot(out: &mut Vec<f64>, xs: &[f64]) {
    let first: Vec<f64>;
    out.copy_from_slice(xs);
}
"#;
        let file = source_from_str("crates/nn/src/x.rs", src);
        assert!(analyze(&file).is_empty(), "{:?}", analyze(&file));
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    #[wlc_hot]
    fn hot_in_test(xs: &[f64]) -> Vec<f64> {
        xs.to_vec()
    }
}
"#;
        let file = source_from_str("crates/nn/src/x.rs", src);
        assert!(analyze(&file).is_empty());
    }
}
