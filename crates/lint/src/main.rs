//! `wlc-lint` command-line driver.
//!
//! ```text
//! wlc-lint --workspace            # lint the enclosing cargo workspace
//! wlc-lint --root path/to/tree    # lint an explicit tree (fixtures)
//! wlc-lint --workspace --only panic
//! ```
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use wlc_lint::{analyze, Rule};

const USAGE: &str = "\
wlc-lint — workspace static analysis (lock order, panic-freedom,
determinism, exit-code consistency, hot-path allocation-freedom,
durable-write discipline)

USAGE:
    wlc-lint [--workspace | --root <PATH>] [--only <RULE>]

OPTIONS:
    --workspace      Locate the enclosing cargo workspace root (default)
    --root <PATH>    Analyze the tree rooted at PATH instead
    --only <RULE>    Run a single rule: lock-order | panic | index |
                     determinism | consistency | alloc-in-hot-path |
                     durable-write | annotation

EXIT CODES:
    0 clean   1 findings reported   2 bad usage";

/// Walks upward from the current directory to the first `Cargo.toml`
/// that declares `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut only: Option<Rule> = None;
    let mut use_workspace = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => use_workspace = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--root requires a path\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--only" => {
                i += 1;
                match args.get(i).and_then(|r| Rule::from_name(r)) {
                    Some(rule) => only = Some(rule),
                    None => {
                        eprintln!("--only requires a known rule name\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" | "help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if use_workspace && root.is_some() {
        eprintln!("--workspace and --root are mutually exclusive\n\n{USAGE}");
        return ExitCode::from(2);
    }
    let root = match root {
        Some(r) => r,
        None => match workspace_root() {
            Some(r) => r,
            None => {
                eprintln!(
                    "no enclosing cargo workspace found (run inside the repo or pass --root)"
                );
                return ExitCode::from(2);
            }
        },
    };

    match analyze(&root, only) {
        Ok(findings) if findings.is_empty() => {
            eprintln!("wlc-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("wlc-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("wlc-lint: io error under {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
