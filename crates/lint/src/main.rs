//! `wlc-lint` command-line driver.
//!
//! ```text
//! wlc-lint --workspace            # lint the enclosing cargo workspace
//! wlc-lint --root path/to/tree    # lint an explicit tree (fixtures)
//! wlc-lint --workspace --only panic
//! wlc-lint --workspace --format json --out target/lint-report.json
//! wlc-lint --workspace --budget BENCH_lint.json
//! ```
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage error,
//! `3` wall-time budget exceeded.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use wlc_lint::{analyze, Finding, Rule, SUPPRESSIBLE};

const USAGE: &str = "\
wlc-lint — workspace static analysis (lock order, panic-freedom,
determinism + interprocedural determinism-taint, exit-code consistency,
transitive hot-path purity, guard coverage, durable-write discipline)

USAGE:
    wlc-lint [--workspace | --root <PATH>] [--only <RULE>]
             [--format text|json] [--out <PATH>] [--budget <PATH>]

OPTIONS:
    --workspace      Locate the enclosing cargo workspace root (default)
    --root <PATH>    Analyze the tree rooted at PATH instead
    --only <RULE>    Run a single rule: lock-order | panic | index |
                     determinism | consistency | alloc-in-hot-path |
                     blocking-in-hot-path | determinism-taint |
                     guard-coverage | durable-write | annotation
    --format <FMT>   Output format: text (default) or json (a stable
                     array of {rule, file, line, message, chain,
                     suppressible} objects on stdout)
    --out <PATH>     Also write the findings in the selected format to
                     PATH (used by CI to upload an artifact)
    --budget <PATH>  Enforce the wall-time budget file PATH (JSON
                     {\"workspace_ms\": N}): fail with exit 3 if the
                     analysis takes longer than 20x the committed
                     baseline

EXIT CODES:
    0 clean   1 findings reported   2 bad usage   3 budget exceeded";

/// Multiple of the committed baseline the analysis may take before the
/// budget step fails. Generous on purpose: the budget exists to catch a
/// fixpoint pass going accidentally quadratic, not scheduler noise.
const BUDGET_MULTIPLIER: u64 = 20;

/// Walks upward from the current directory to the first `Cargo.toml`
/// that declares `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a stable JSON array (sorted upstream by
/// [`analyze`]): one object per finding with `rule`, `file`, `line`,
/// `message`, `chain` (array of strings, possibly empty), and
/// `suppressible`.
fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let chain = f
            .chain
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\
             \"chain\":[{}],\"suppressible\":{}}}",
            f.rule.name(),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            chain,
            SUPPRESSIBLE.contains(&f.rule.name()),
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Reads `workspace_ms` out of a committed budget file (a flat JSON
/// object; parsed with a string scan so the linter stays std-only).
fn read_budget_ms(path: &PathBuf) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"workspace_ms\"";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut only: Option<Rule> = None;
    let mut use_workspace = false;
    let mut json = false;
    let mut out_path: Option<PathBuf> = None;
    let mut budget_path: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => use_workspace = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--root requires a path\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--only" => {
                i += 1;
                match args.get(i).and_then(|r| Rule::from_name(r)) {
                    Some(rule) => only = Some(rule),
                    None => {
                        eprintln!("--only requires a known rule name\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("json") => json = true,
                    Some("text") => json = false,
                    _ => {
                        eprintln!("--format requires `text` or `json`\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--out requires a path\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--budget" => {
                i += 1;
                match args.get(i) {
                    Some(p) => budget_path = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--budget requires a path\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" | "help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if use_workspace && root.is_some() {
        eprintln!("--workspace and --root are mutually exclusive\n\n{USAGE}");
        return ExitCode::from(2);
    }
    let root = match root {
        Some(r) => r,
        None => match workspace_root() {
            Some(r) => r,
            None => {
                eprintln!(
                    "no enclosing cargo workspace found (run inside the repo or pass --root)"
                );
                return ExitCode::from(2);
            }
        },
    };
    if !root.is_dir() {
        eprintln!("wlc-lint: root {} is not a directory", root.display());
        return ExitCode::from(2);
    }
    let budget_ms = match &budget_path {
        Some(p) => match read_budget_ms(p) {
            Some(ms) => Some(ms),
            None => {
                eprintln!(
                    "--budget: could not read `workspace_ms` from {}\n\n{USAGE}",
                    p.display()
                );
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let started = Instant::now();
    let result = analyze(&root, only);
    let elapsed_ms = started.elapsed().as_millis() as u64;

    match result {
        Ok(findings) => {
            let rendered = if json {
                to_json(&findings)
            } else {
                let mut s = String::new();
                for f in &findings {
                    s.push_str(&f.to_string());
                    s.push('\n');
                }
                s
            };
            print!("{rendered}");
            if let Some(out) = &out_path {
                // wlc-lint: allow(durable-write, reason = "CI report artifact, never recovered from")
                if let Err(e) = std::fs::write(out, &rendered) {
                    eprintln!("wlc-lint: cannot write {}: {e}", out.display());
                    return ExitCode::from(2);
                }
            }
            if let Some(ms) = budget_ms {
                let limit = ms.saturating_mul(BUDGET_MULTIPLIER).max(1);
                if elapsed_ms > limit {
                    eprintln!(
                        "wlc-lint: budget exceeded: {elapsed_ms}ms > {limit}ms \
                         ({BUDGET_MULTIPLIER}x the committed {ms}ms baseline)"
                    );
                    return ExitCode::from(3);
                }
                eprintln!("wlc-lint: {elapsed_ms}ms within budget ({limit}ms)");
            }
            if findings.is_empty() {
                eprintln!("wlc-lint: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                eprintln!("wlc-lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("wlc-lint: io error under {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
