//! Self-test fixture: a durable-state write that bypasses `wlc-fault`.
//!
//! wlc-lint must report the raw `std::fs::write` and `fs::rename` in
//! non-test code; the annotated passthrough and the test-module write
//! must pass.

#![forbid(unsafe_code)]

use std::io;
use std::path::Path;

pub fn commit_state(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    let staged = dir.join("state.txt.tmp");
    std::fs::write(&staged, bytes)?;
    std::fs::rename(&staged, dir.join("state.txt"))
}

pub fn justified_passthrough(path: &Path, bytes: &[u8]) -> io::Result<()> {
    // wlc-lint: allow(durable-write, reason = "fixture: demonstrates a justified suppression")
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_files_are_fine_in_tests() {
        let dir = std::env::temp_dir().join("durable-raw-fixture");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("scratch"), b"x").unwrap();
        let _ = std::fs::remove_file(dir.join("scratch"));
    }
}
