//! Fixture: a `#[wlc_hot]` function whose *callee's callee* blocks.
//! Must trip the `blocking-in-hot-path` rule (and only that rule), with
//! the full call chain in the finding — the old body-scan could never
//! see past the root's own body.

#![forbid(unsafe_code)]

use wlc_hot::wlc_hot;

/// Hot root: clean body, but the helper it calls is not.
#[wlc_hot]
pub fn hot_forward(xs: &mut [f64]) {
    scale_in_place(xs);
}

/// Mid-chain helper: still clean.
pub fn scale_in_place(xs: &mut [f64]) {
    throttle();
    for x in xs.iter_mut() {
        *x *= 0.5;
    }
}

/// Leaf: sleeps on the hot path — the seeded bug.
pub fn throttle() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
