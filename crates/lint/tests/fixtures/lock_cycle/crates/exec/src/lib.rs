//! Self-test fixture: a seeded ABBA lock-order cycle.
//!
//! `record_order` acquires ORDERS then METRICS; `flush_metrics` acquires
//! them in the opposite order. wlc-lint must report a lock-order cycle
//! with both provenances. This file only needs to lex, not compile.

#![forbid(unsafe_code)]

use std::sync::Mutex;

pub static ORDERS: Mutex<u64> = Mutex::new(0);
pub static METRICS: Mutex<u64> = Mutex::new(0);

pub fn record_order() {
    let mut orders = ORDERS.lock();
    let mut metrics = METRICS.lock();
    *orders += 1;
    *metrics += 1;
}

pub fn flush_metrics() {
    let mut metrics = METRICS.lock();
    let mut orders = ORDERS.lock();
    *metrics = 0;
    *orders = 0;
}
