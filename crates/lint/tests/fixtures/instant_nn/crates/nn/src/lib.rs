//! Self-test fixture: a wall clock inside a seeded crate.
//!
//! wlc-lint must report the `Instant::now()` call in non-test code of
//! `crates/nn`; the annotated one and the test-module one must pass.

#![forbid(unsafe_code)]

use std::time::Instant;

pub fn train_epoch(weights: &mut [f64]) -> f64 {
    let t0 = Instant::now();
    for w in weights.iter_mut() {
        *w *= 0.99;
    }
    t0.elapsed().as_secs_f64()
}

pub fn justified_timing() -> Instant {
    // wlc-lint: allow(determinism, reason = "fixture: demonstrates a justified suppression")
    Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clocks_are_fine_in_tests() {
        let _t0 = Instant::now();
    }
}
