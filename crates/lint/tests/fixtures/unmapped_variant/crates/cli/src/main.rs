//! Self-test fixture CLI: maps only two of the three ServeError
//! variants, so wlc-lint must flag `ServeError::Protocol` as unmapped.

#![forbid(unsafe_code)]

fn serve_code(e: &ServeError) -> u8 {
    match e {
        ServeError::Bind { .. } => 5,
        ServeError::Rejected { .. } => 3,
        _ => 5,
    }
}

fn main() {}
