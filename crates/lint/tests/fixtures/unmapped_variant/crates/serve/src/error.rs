//! Self-test fixture: a ServeError variant with no CLI exit-code arm.

pub enum ServeError {
    /// Mapped in the fixture CLI.
    Bind { addr: String },
    /// Mapped in the fixture CLI.
    Rejected { status: u16 },
    /// NOT mapped anywhere — wlc-lint must report this variant.
    Protocol(String),
}
