//! Fixture: a `#[wlc_hot]` function that heap-allocates. Must trip the
//! `alloc-in-hot-path` rule (and only that rule).

#![forbid(unsafe_code)]

use wlc_hot::wlc_hot;

/// Copies the input before summing — an allocation the hot path forbids.
#[wlc_hot]
pub fn hot_sum(xs: &[f64]) -> f64 {
    let copy = xs.to_vec();
    copy.iter().sum()
}

/// Cold helper: allocating here is fine.
pub fn cold_copy(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}
