//! Self-test fixture: bare `unwrap`/`expect` in serve non-test code.
//!
//! wlc-lint must report both panic sites with file:line; the test-module
//! unwrap must NOT be reported.

#![forbid(unsafe_code)]

pub fn parse_request_line(line: &str) -> (u32, u32) {
    let status: u32 = line.split(' ').next().unwrap().parse().expect("status");
    (status, line.len() as u32)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
