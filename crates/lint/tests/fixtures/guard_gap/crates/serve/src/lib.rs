//! Fixture: a struct whose `stats` field is read under its mutex in one
//! method but bare in another. Must trip the `guard-coverage` rule (and
//! only that rule), citing the guarded site as provenance.

#![forbid(unsafe_code)]

use wlc_exec::TrackedMutex;

/// Per-replica bookkeeping: `window` holds the rolling latency window,
/// `stats` the derived summary the window updates must stay in sync
/// with.
pub struct LatencyBook {
    window: TrackedMutex<Vec<u64>>,
    stats: u64,
}

impl LatencyBook {
    /// Recomputes the summary with the window pinned — the invariant
    /// is that `stats` agrees with the window contents.
    pub fn summarize(&self) -> u64 {
        let guard = self.window.lock();
        let total = self.stats + guard.len() as u64;
        total
    }

    /// Reads the summary without the window lock: the seeded bug — a
    /// reload can be mid-update, and this observes the torn invariant.
    pub fn peek(&self) -> u64 {
        self.stats
    }
}
