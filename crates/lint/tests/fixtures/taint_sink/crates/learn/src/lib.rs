//! Fixture: a wall-clock read laundered through a helper into a
//! durable write. Must trip the `determinism-taint` rule (and only that
//! rule) — the token-local `determinism` rule does not police
//! `crates/learn`, and the source and sink live in different functions,
//! so only the interprocedural pass can connect them.

#![forbid(unsafe_code)]

use std::time::SystemTime;
use wlc_fault::{write_atomic, FsHandle};

/// Helper that launders the wall clock into an innocent-looking value.
pub fn freshness_stamp() -> u64 {
    stamp_seconds()
}

/// The actual nondeterminism source.
pub fn stamp_seconds() -> u64 {
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Serializes supervisor state — with a wall-clock stamp in the bytes:
/// the seeded bug. Byte-identical replays are impossible.
pub fn commit_state(fs: &FsHandle, dir: &std::path::Path) -> std::io::Result<()> {
    let stamp = freshness_stamp();
    let record = format!("round=0 stamp={stamp}");
    write_atomic(fs, "fixture.state.write", &dir.join("state.v1"), record.as_bytes())
}
