//! Self-tests: every seeded-bug fixture must fire its rule with
//! `file:line` provenance, and the real workspace must be clean.

use std::path::{Path, PathBuf};

use wlc_lint::{analyze, Finding, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(root: &Path) -> Vec<Finding> {
    analyze(root, None).expect("fixture tree must be readable")
}

#[test]
fn lock_cycle_fixture_reports_the_abba_cycle() {
    let findings = run(&fixture("lock_cycle"));
    let cycles: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::LockOrder)
        .collect();
    assert_eq!(cycles.len(), 1, "{findings:?}");
    let f = cycles[0];
    assert!(f.message.contains("lock-order cycle"), "{}", f.message);
    assert!(f.message.contains("`ORDERS` -> `METRICS`"), "{}", f.message);
    assert!(f.message.contains("`METRICS` -> `ORDERS`"), "{}", f.message);
    // Both edges carry file:line provenance into the fixture.
    assert!(
        f.message.matches("crates/exec/src/lib.rs:").count() >= 2,
        "{}",
        f.message
    );
    assert_eq!(f.path, "crates/exec/src/lib.rs");
    assert!(f.line > 0);
}

#[test]
fn panic_serve_fixture_reports_unwrap_and_expect() {
    let findings = run(&fixture("panic_serve"));
    let panics: Vec<&Finding> = findings.iter().filter(|f| f.rule == Rule::Panic).collect();
    assert_eq!(panics.len(), 2, "{findings:?}");
    assert!(panics.iter().any(|f| f.message.contains("`.unwrap()`")));
    assert!(panics.iter().any(|f| f.message.contains("`.expect()`")));
    for f in panics {
        assert_eq!(f.path, "crates/serve/src/lib.rs");
        assert!(f.line > 0, "panic findings carry a line");
    }
}

#[test]
fn instant_nn_fixture_reports_the_clock_but_not_the_annotated_one() {
    let findings = run(&fixture("instant_nn"));
    let det: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::Determinism)
        .collect();
    assert_eq!(det.len(), 1, "{findings:?}");
    assert!(
        det[0].message.contains("Instant::now"),
        "{}",
        det[0].message
    );
    assert_eq!(det[0].path, "crates/nn/src/lib.rs");
    assert!(det[0].line > 0);
}

#[test]
fn unmapped_variant_fixture_reports_the_missing_arm() {
    let findings = run(&fixture("unmapped_variant"));
    let cons: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::Consistency)
        .collect();
    assert_eq!(cons.len(), 1, "{findings:?}");
    assert!(
        cons[0].message.contains("ServeError::Protocol"),
        "{}",
        cons[0].message
    );
    assert_eq!(cons[0].path, "crates/serve/src/error.rs");
    assert!(cons[0].line > 0);
}

#[test]
fn alloc_hot_fixture_reports_the_hot_allocation() {
    let findings = run(&fixture("alloc_hot"));
    let hot: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::HotAlloc)
        .collect();
    assert_eq!(hot.len(), 1, "{findings:?}");
    assert!(hot[0].message.contains("`.to_vec()`"), "{}", hot[0].message);
    assert_eq!(hot[0].path, "crates/nn/src/lib.rs");
    assert!(hot[0].line > 0);
}

#[test]
fn durable_raw_fixture_reports_the_bypassing_writes() {
    let findings = run(&fixture("durable_raw"));
    let durable: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::DurableWrite)
        .collect();
    assert_eq!(durable.len(), 2, "{findings:?}");
    assert!(durable.iter().any(|f| f.message.contains("`fs::write`")));
    assert!(durable.iter().any(|f| f.message.contains("`fs::rename`")));
    for f in durable {
        assert_eq!(f.path, "crates/learn/src/lib.rs");
        assert!(f.line > 0);
    }
}

#[test]
fn hot_chain_fixture_reports_transitive_blocking_with_the_call_chain() {
    let findings = run(&fixture("hot_chain"));
    let blocking: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::HotBlocking)
        .collect();
    assert_eq!(blocking.len(), 1, "{findings:?}");
    let f = blocking[0];
    assert!(f.message.contains("thread::sleep"), "{}", f.message);
    assert_eq!(f.path, "crates/nn/src/lib.rs");
    assert!(f.line > 0);
    // Provenance: root -> mid -> leaf, with call-site lines.
    assert_eq!(f.chain.len(), 3, "{:?}", f.chain);
    assert!(f.chain[0].starts_with("hot_forward ("), "{:?}", f.chain);
    assert!(
        f.chain[1].starts_with("scale_in_place (called at"),
        "{:?}",
        f.chain
    );
    assert!(
        f.chain[2].starts_with("throttle (called at"),
        "{:?}",
        f.chain
    );
}

#[test]
fn taint_sink_fixture_reports_the_laundered_clock_at_the_durable_write() {
    let findings = run(&fixture("taint_sink"));
    let taint: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::DeterminismTaint)
        .collect();
    assert_eq!(taint.len(), 1, "{findings:?}");
    let f = taint[0];
    assert!(f.message.contains("write_atomic"), "{}", f.message);
    assert!(f.message.contains("SystemTime::now"), "{}", f.message);
    assert_eq!(f.path, "crates/learn/src/lib.rs");
    assert!(f.line > 0);
    // Chain walks sink fn -> helper -> helper -> source site.
    assert_eq!(f.chain.len(), 4, "{:?}", f.chain);
    assert!(f.chain[0].starts_with("commit_state ("), "{:?}", f.chain);
    assert!(
        f.chain[1].starts_with("freshness_stamp (called at"),
        "{:?}",
        f.chain
    );
    assert!(
        f.chain[2].starts_with("stamp_seconds (called at"),
        "{:?}",
        f.chain
    );
    assert!(
        f.chain[3].contains("source `SystemTime::now`"),
        "{:?}",
        f.chain
    );
}

#[test]
fn guard_gap_fixture_reports_the_bare_access_with_the_guarded_site() {
    let findings = run(&fixture("guard_gap"));
    let gaps: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::GuardCoverage)
        .collect();
    assert_eq!(gaps.len(), 1, "{findings:?}");
    let f = gaps[0];
    assert!(f.message.contains("LatencyBook.stats"), "{}", f.message);
    assert!(
        f.message.contains("LatencyBook::summarize"),
        "{}",
        f.message
    );
    assert_eq!(f.path, "crates/serve/src/lib.rs");
    assert!(f.line > 0);
    assert_eq!(f.chain.len(), 1, "{:?}", f.chain);
    assert!(
        f.chain[0].contains("guarded access in LatencyBook::summarize"),
        "{:?}",
        f.chain
    );
}

#[test]
fn fixtures_fire_nothing_outside_their_seeded_rule() {
    // Each fixture is constructed to trip exactly one rule; incidental
    // findings from the other analyses would mean the fixture trees (or
    // the analyses) drifted.
    for (name, rule) in [
        ("lock_cycle", Rule::LockOrder),
        ("panic_serve", Rule::Panic),
        ("instant_nn", Rule::Determinism),
        ("unmapped_variant", Rule::Consistency),
        ("alloc_hot", Rule::HotAlloc),
        ("durable_raw", Rule::DurableWrite),
        ("hot_chain", Rule::HotBlocking),
        ("taint_sink", Rule::DeterminismTaint),
        ("guard_gap", Rule::GuardCoverage),
    ] {
        let stray: Vec<Finding> = run(&fixture(name))
            .into_iter()
            .filter(|f| f.rule != rule)
            .collect();
        assert!(stray.is_empty(), "{name}: unexpected findings {stray:?}");
    }
}

#[test]
fn the_real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let findings = analyze(&root, None).expect("workspace must be readable");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn only_filter_restricts_to_one_rule() {
    let findings =
        analyze(&fixture("panic_serve"), Some(Rule::Determinism)).expect("readable tree");
    assert!(findings.is_empty(), "{findings:?}");
    let findings = analyze(&fixture("panic_serve"), Some(Rule::Panic)).expect("readable tree");
    assert_eq!(findings.len(), 2);
}
