//! Lex → re-emit round-trip property test over every `.rs` file in the
//! workspace: token and comment spans must tile the source exactly
//! (every non-whitespace char covered once, nothing overlapping), the
//! text recovered through the spans must reconstruct the source modulo
//! whitespace, and every token's claimed line must agree with a char
//! count of the preceding source. This pins the lexer against
//! regressions from the raw-identifier / byte-literal / suffixed-number
//! support the interprocedural rules depend on.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/lint
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn every_workspace_file_round_trips_through_the_lexer() {
    let root = workspace_root();
    let files = wlc_lint::load_workspace(&root).expect("workspace loads");
    assert!(
        files.len() > 20,
        "workspace walk looks broken: {} files",
        files.len()
    );
    for file in &files {
        let chars: Vec<char> = file.text.chars().collect();
        // line_at[i] = 1-based line number of char offset i.
        let mut line_at = Vec::with_capacity(chars.len() + 1);
        let mut ln = 1u32;
        for &c in &chars {
            line_at.push(ln);
            if c == '\n' {
                ln += 1;
            }
        }
        line_at.push(ln);
        let mut covered = vec![false; chars.len()];
        let mut spans: Vec<(u32, u32, u32)> = Vec::new(); // (start, end, line)
        for t in &file.tokens {
            spans.push((t.span.0, t.span.1, t.line));
        }
        for c in wlc_lint::lexer::lex(&file.text).1 {
            spans.push((c.span.0, c.span.1, c.line));
        }
        for &(s, e, line) in &spans {
            assert!(
                s < e && (e as usize) <= chars.len(),
                "{}: bad span [{s},{e})",
                file.rel
            );
            for slot in covered[s as usize..e as usize].iter_mut() {
                assert!(!*slot, "{}: overlapping span at [{s},{e})", file.rel);
                *slot = true;
            }
            // The claimed 1-based line must equal the newline count
            // before the span start.
            let expect = line_at[s as usize];
            assert_eq!(
                line,
                expect,
                "{}: span [{s},{e}) `{}` claims line {line}, source says {expect}",
                file.rel,
                chars[s as usize..e as usize].iter().collect::<String>()
            );
        }
        // Everything not covered must be whitespace.
        for (i, &done) in covered.iter().enumerate() {
            assert!(
                done || chars[i].is_whitespace(),
                "{}: non-whitespace char `{}` at offset {i} (line {}) escaped the lexer",
                file.rel,
                chars[i],
                line_at[i]
            );
        }
        // Re-emit: concatenating the spans in order reconstructs the
        // source with whitespace squeezed out.
        let mut sorted = spans.clone();
        sorted.sort_unstable();
        let reemitted: String = sorted
            .iter()
            .flat_map(|&(s, e, _)| chars[s as usize..e as usize].iter())
            .collect();
        let squeezed: String = chars.iter().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(
            reemitted.replace(char::is_whitespace, ""),
            squeezed,
            "{}: re-emitted tokens diverge from source",
            file.rel
        );
    }
}
