//! Contention tests for the debug-build lock-order checker and the
//! tracked `BoundedQueue`.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use wlc_exec::{tracked_acquisitions, BoundedQueue, TrackedMutex};

/// The dynamic checker must panic (not deadlock) on the first observed
/// order inversion, naming both locks and both sites.
#[test]
fn lock_order_inversion_panics_with_both_locks_named() {
    if !cfg!(debug_assertions) {
        return; // the checker compiles away in release builds
    }
    static FIRST: TrackedMutex<u32> = TrackedMutex::new("inversion-test.first", 0);
    static SECOND: TrackedMutex<u32> = TrackedMutex::new("inversion-test.second", 0);

    // Establish first -> second as the recorded order.
    {
        let _a = FIRST.lock();
        let _b = SECOND.lock();
    }

    // The inversion runs on its own thread so the panic is observable as
    // a join error instead of killing the test.
    let result = thread::spawn(|| {
        let _b = SECOND.lock();
        let _a = FIRST.lock();
    })
    .join();
    let payload = result.expect_err("the inverted acquisition must panic");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| {
            payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .unwrap_or_default()
        });
    assert!(
        message.contains("lock-order violation"),
        "unexpected panic payload: {message}"
    );
    assert!(message.contains("inversion-test.first"), "{message}");
    assert!(message.contains("inversion-test.second"), "{message}");
}

/// Pushers racing `close()` must neither deadlock nor panic: every push
/// resolves to accepted or rejected, the popper drains what was
/// accepted, and (in debug builds) the tracked checker observed the
/// traffic without firing.
#[test]
fn bounded_queue_survives_close_while_push_race() {
    let before = tracked_acquisitions();
    let queue: Arc<BoundedQueue<usize>> = Arc::new(BoundedQueue::new(4));

    let pushers: Vec<_> = (0..4)
        .map(|t| {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                let mut accepted = 0usize;
                let mut rejected = 0usize;
                for i in 0..200 {
                    match queue.push(t * 1000 + i) {
                        Ok(_) => accepted += 1,
                        Err(_) => rejected += 1,
                    }
                    if i % 16 == 0 {
                        thread::yield_now();
                    }
                }
                (accepted, rejected)
            })
        })
        .collect();

    let popper = {
        let queue = Arc::clone(&queue);
        thread::spawn(move || {
            let mut popped = 0usize;
            while queue.pop().is_some() {
                popped += 1;
            }
            popped
        })
    };

    thread::sleep(Duration::from_millis(5));
    queue.close();

    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for p in pushers {
        let (a, r) = p.join().expect("pusher must not panic");
        accepted += a;
        rejected += r;
    }
    let popped = popper.join().expect("popper must not panic");

    assert_eq!(accepted + rejected, 800, "every push resolves");
    assert!(popped <= accepted, "popped {popped} > accepted {accepted}");
    assert!(queue.is_closed());
    assert!(queue.pop().is_none(), "closed+drained queue pops None");
    if cfg!(debug_assertions) {
        assert!(
            tracked_acquisitions() > before,
            "the tracked checker must observe the queue traffic"
        );
    }
}
