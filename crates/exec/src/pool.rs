//! The indexed worker pool.

use std::convert::Infallible;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The default worker count: the hardware's available parallelism, or 1
/// if it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Wall-clock cost of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskTiming {
    /// The task's index in `0..n`.
    pub index: usize,
    /// Time spent computing that task.
    pub elapsed: Duration,
}

/// Timing summary of one pool run: total wall time plus per-task costs,
/// in task-index order.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Worker threads actually used (clamped to the task count).
    pub jobs: usize,
    /// Wall-clock time of the whole fan-out.
    pub wall: Duration,
    /// Per-task timings, sorted by task index. Tasks skipped after an
    /// error are absent.
    pub tasks: Vec<TaskTiming>,
    /// Retries performed across all tasks (always 0 outside the
    /// [`try_map_indexed_retry`] family).
    pub retries: usize,
}

impl RunReport {
    /// Sum of all per-task times — the sequential cost of the same work.
    pub fn busy(&self) -> Duration {
        self.tasks.iter().map(|t| t.elapsed).sum()
    }

    /// `busy / wall` — how many cores' worth of work ran per wall second.
    /// Close to `jobs` means near-perfect scaling.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.busy().as_secs_f64() / wall
        } else {
            1.0
        }
    }

    /// The single most expensive task, if any ran.
    pub fn slowest(&self) -> Option<TaskTiming> {
        self.tasks.iter().copied().max_by_key(|t| t.elapsed)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks on {} workers: wall {:.3}s, busy {:.3}s ({:.2}x)",
            self.tasks.len(),
            self.jobs,
            self.wall.as_secs_f64(),
            self.busy().as_secs_f64(),
            self.speedup()
        )?;
        if let Some(worst) = self.slowest() {
            write!(
                f,
                ", slowest task #{} at {:.3}s",
                worst.index,
                worst.elapsed.as_secs_f64()
            )?;
        }
        if self.retries > 0 {
            write!(f, ", {} retries", self.retries)?;
        }
        Ok(())
    }
}

/// Runs `f(0..n)` on up to `jobs` worker threads and returns the results
/// in index order.
///
/// `jobs` is clamped to `1..=n`; with one worker (or one task) everything
/// runs on the calling thread. A panicking task is re-raised here once
/// the remaining in-flight tasks have finished.
pub fn map_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_timed(jobs, n, f).0
}

/// Like [`map_indexed`], but also reports wall time and per-task timings.
pub fn map_indexed_timed<T, F>(jobs: usize, n: usize, f: F) -> (Vec<T>, RunReport)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match try_map_indexed_timed(jobs, n, |i| Ok::<T, Infallible>(f(i))) {
        Ok(out) => out,
        Err(e) => match e {},
    }
}

/// Fallible variant of [`map_indexed`]: returns the error of the
/// lowest-index failing task (the same error a sequential run would hit
/// first), skipping tasks not yet claimed once a failure is seen.
///
/// # Errors
///
/// The lowest-index task error, if any task fails.
pub fn try_map_indexed<T, E, F>(jobs: usize, n: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    // wlc-lint: sanitize(determinism-taint, reason = "the wall-clock RunReport is discarded on this edge; only task values flow to callers")
    try_map_indexed_timed(jobs, n, f).map(|(values, _)| values)
}

/// Fallible variant of [`map_indexed_timed`]; see [`try_map_indexed`] for
/// the error contract.
///
/// # Errors
///
/// The lowest-index task error, if any task fails.
pub fn try_map_indexed_timed<T, E, F>(jobs: usize, n: usize, f: F) -> Result<(Vec<T>, RunReport), E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    let started = Instant::now();
    let mut slots: Vec<Option<Result<T, E>>>;
    let mut timings: Vec<TaskTiming>;

    if jobs <= 1 {
        slots = Vec::with_capacity(n);
        timings = Vec::with_capacity(n);
        for index in 0..n {
            let t0 = Instant::now();
            let out = f(index);
            timings.push(TaskTiming {
                index,
                elapsed: t0.elapsed(),
            });
            let failed = out.is_err();
            slots.push(Some(out));
            if failed {
                break;
            }
        }
    } else {
        let mut init: Vec<Option<Result<T, E>>> = Vec::new();
        init.resize_with(n, || None);
        let shared_slots = Mutex::new(init);
        let shared_timings = Mutex::new(Vec::with_capacity(n));
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        return;
                    }
                    let t0 = Instant::now();
                    let out = f(index);
                    let elapsed = t0.elapsed();
                    if out.is_err() {
                        stop.store(true, Ordering::Relaxed);
                    }
                    // Poison recovery: a panicking sibling task is
                    // re-raised by `thread::scope` anyway; the vectors
                    // stay valid after any single push/assignment.
                    shared_timings
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(TaskTiming { index, elapsed });
                    // wlc-lint: allow(index, reason = "index comes from fetch_add bounded by the n-sized slot vector")
                    shared_slots.lock().unwrap_or_else(PoisonError::into_inner)[index] = Some(out);
                });
            }
        });
        slots = shared_slots
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        timings = shared_timings
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        timings.sort_unstable_by_key(|t| t.index);
    }

    let report = RunReport {
        jobs,
        wall: started.elapsed(),
        tasks: timings,
        retries: 0,
    };
    // Tasks are claimed in index order, so the completed prefix is
    // contiguous and the lowest-index error is deterministic — identical
    // to what a sequential run would return first.
    let mut values = Vec::with_capacity(n);
    let mut first_error = None;
    for slot in slots {
        match slot {
            Some(Ok(v)) => values.push(v),
            Some(Err(e)) => {
                first_error = Some(e);
                break;
            }
            None => break,
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok((values, report)),
    }
}

/// [`try_map_indexed`] with bounded per-task retries: task `index` is
/// attempted with `f(index, 0)`, `f(index, 1)`, … up to `max_retries`
/// retries, and the first `Ok` wins.
///
/// Determinism: the attempt number is passed to the closure so callers can
/// derive per-attempt randomness from `(index, attempt)` — results are then
/// bit-identical for any worker count.
///
/// # Errors
///
/// The lowest-index task whose every attempt failed, with the error from
/// its final attempt.
pub fn try_map_indexed_retry<T, E, F>(
    jobs: usize,
    n: usize,
    max_retries: usize,
    f: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize, usize) -> Result<T, E> + Sync,
{
    // wlc-lint: sanitize(determinism-taint, reason = "the wall-clock RunReport is discarded on this edge; only task values flow to callers")
    try_map_indexed_retry_timed(jobs, n, max_retries, f).map(|(values, _)| values)
}

/// [`try_map_indexed_retry`] with a [`RunReport`]; the report's `retries`
/// field counts retries across all tasks, and each task's timing covers
/// all of its attempts.
///
/// # Errors
///
/// As for [`try_map_indexed_retry`].
pub fn try_map_indexed_retry_timed<T, E, F>(
    jobs: usize,
    n: usize,
    max_retries: usize,
    f: F,
) -> Result<(Vec<T>, RunReport), E>
where
    T: Send,
    E: Send,
    F: Fn(usize, usize) -> Result<T, E> + Sync,
{
    let retries = AtomicUsize::new(0);
    let result = try_map_indexed_timed(jobs, n, |index| {
        let mut attempt = 0usize;
        loop {
            match f(index, attempt) {
                Ok(v) => return Ok(v),
                Err(e) if attempt >= max_retries => return Err(e),
                Err(_) => {
                    attempt += 1;
                    retries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    });
    result.map(|(values, mut report)| {
        report.retries = retries.load(Ordering::Relaxed);
        (values, report)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order_any_job_count() {
        for jobs in [1, 2, 3, 8, 64] {
            let got = map_indexed(jobs, 17, |i| i * 3);
            assert_eq!(got, (0..17).map(|i| i * 3).collect::<Vec<_>>(), "{jobs}");
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let got: Vec<usize> = map_indexed(4, 0, |i| i);
        assert!(got.is_empty());
    }

    #[test]
    fn jobs_clamped_to_task_count() {
        let (_, report) = map_indexed_timed(16, 3, |i| i);
        assert_eq!(report.jobs, 3);
        assert_eq!(report.tasks.len(), 3);
    }

    #[test]
    fn lowest_index_error_wins() {
        for jobs in [1, 4] {
            let err = try_map_indexed(jobs, 20, |i| {
                if i == 3 || i == 11 {
                    Err(format!("task {i}"))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert_eq!(err, "task 3", "jobs={jobs}");
        }
    }

    #[test]
    fn error_matches_sequential_run() {
        let run =
            |jobs| try_map_indexed(jobs, 50, |i| if i >= 30 { Err(i) } else { Ok(i) }).unwrap_err();
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn report_accounts_for_all_tasks() {
        let (values, report) = map_indexed_timed(4, 12, |i| {
            std::thread::sleep(Duration::from_millis(1));
            i
        });
        assert_eq!(values.len(), 12);
        assert_eq!(report.tasks.len(), 12);
        for (i, t) in report.tasks.iter().enumerate() {
            assert_eq!(t.index, i);
            assert!(t.elapsed >= Duration::from_millis(1));
        }
        assert!(report.busy() >= Duration::from_millis(12));
        assert!(report.wall > Duration::ZERO);
        let line = report.to_string();
        assert!(line.contains("12 tasks on 4 workers"), "{line}");
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        let outcome = std::panic::catch_unwind(|| {
            map_indexed(4, 8, |i| {
                if i == 5 {
                    panic!("worker exploded");
                }
                i
            })
        });
        assert!(outcome.is_err());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn retry_recovers_transient_failures() {
        // Tasks 2 and 5 fail on their first two attempts, then succeed.
        for jobs in [1, 4] {
            let (values, report) = try_map_indexed_retry_timed(jobs, 8, 3, |i, attempt| {
                if (i == 2 || i == 5) && attempt < 2 {
                    Err(format!("task {i} attempt {attempt}"))
                } else {
                    Ok(i * 10 + attempt)
                }
            })
            .unwrap();
            // Successful attempt number is part of the value: deterministic
            // for any worker count.
            let expected: Vec<usize> = (0..8)
                .map(|i| if i == 2 || i == 5 { i * 10 + 2 } else { i * 10 })
                .collect();
            assert_eq!(values, expected, "jobs={jobs}");
            assert_eq!(report.retries, 4, "jobs={jobs}");
            assert!(report.to_string().contains("4 retries"));
        }
    }

    #[test]
    fn retry_exhaustion_returns_lowest_index_final_error() {
        for jobs in [1, 4] {
            let err = try_map_indexed_retry(jobs, 10, 2, |i, attempt| {
                if i == 3 || i == 7 {
                    Err(format!("task {i} attempt {attempt}"))
                } else {
                    Ok::<usize, String>(i)
                }
            })
            .unwrap_err();
            assert_eq!(err, "task 3 attempt 2", "jobs={jobs}");
        }
    }

    #[test]
    fn zero_retries_matches_plain_try_map() {
        let plain = try_map_indexed(2, 6, |i| {
            if i == 4 {
                Err(i)
            } else {
                Ok::<usize, usize>(i)
            }
        });
        let with_retry = try_map_indexed_retry(2, 6, 0, |i, _| {
            if i == 4 {
                Err(i)
            } else {
                Ok::<usize, usize>(i)
            }
        });
        assert_eq!(plain, with_retry);
    }
}
