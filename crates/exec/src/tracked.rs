//! Debug-build lock-order race detection.
//!
//! [`TrackedMutex`] and [`TrackedRwLock`] are drop-in wrappers around
//! their `std::sync` counterparts that, **in debug builds only**, record
//! the per-thread lock-acquisition order into a global registry and
//! panic the moment two lock *classes* are ever acquired in both orders
//! — the precondition for an ABBA deadlock — with the `file:line` of
//! both conflicting acquisitions. Release builds compile the wrappers
//! down to the plain primitives with no registry, no thread-local state
//! and no extra branches on the lock path.
//!
//! Lock identity is the `&'static str` *class name* passed to the
//! constructor (e.g. `"BoundedQueue.state"`), not the instance address:
//! the ordering discipline this workspace enforces (and that
//! `wlc-lint`'s static lock-order analysis checks) is between lock
//! classes, so two instances of the same class may not be held by one
//! thread at the same time either — that is reported as a recursive
//! acquisition.
//!
//! Because every unit and integration test runs under
//! `debug_assertions`, the existing test suite doubles as a dynamic
//! race/deadlock detector: any test that drives two tracked locks
//! through inverted orders fails loudly instead of deadlocking flakily.
//!
//! Poisoning: the wrappers recover from [`std::sync::PoisonError`] by
//! taking the inner guard. A panic while holding one of these locks is
//! already propagated by [`crate::ServicePool::join`] (or the test
//! harness); refusing to ever hand out the data again would only turn
//! one failure into a cascade, and every guarded structure here is
//! valid after any single mutation.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, RwLock};

#[cfg(debug_assertions)]
mod order {
    //! The global acquisition-order registry (debug builds only).
    //!
    //! The registry's own lock is always a leaf: it is acquired only
    //! inside [`record_acquire`] while no *other* registry state is
    //! held, so it cannot itself participate in a cycle.

    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// First-observation provenance for an ordered pair of lock classes.
    type Edges = HashMap<(&'static str, &'static str), String>;

    static EDGES: OnceLock<Mutex<Edges>> = OnceLock::new();
    static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        /// Lock classes currently held by this thread, oldest first,
        /// each with the `file:line` where it was acquired.
        static HELD: RefCell<Vec<(&'static str, String)>> = const { RefCell::new(Vec::new()) };
    }

    fn edges() -> &'static Mutex<Edges> {
        EDGES.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Total tracked acquisitions across all threads since process
    /// start; lets tests assert the checker is actually live.
    pub fn acquisitions() -> u64 {
        ACQUISITIONS.load(Ordering::Relaxed)
    }

    /// Records that the current thread is about to acquire `name` at
    /// `site`. Panics on a recursive acquisition or an order inversion.
    /// Called *before* the underlying lock call so an inversion is
    /// reported instead of deadlocking.
    pub fn record_acquire(name: &'static str, site: &Location<'_>) {
        ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        let site = format!("{}:{}", site.file(), site.line());
        HELD.with(|cell| {
            let mut held = cell.borrow_mut();
            if let Some((_, earlier)) = held.iter().find(|(h, _)| *h == name) {
                // wlc-lint: allow(panic, reason = "the checker's whole purpose: fail fast in debug builds instead of deadlocking")
                panic!(
                    "lock-order violation: recursive acquisition of `{name}` at {site}; \
                     this thread already holds it since {earlier}"
                );
            }
            if !held.is_empty() {
                let mut edges = edges().lock().unwrap_or_else(PoisonError::into_inner);
                for (h, hsite) in held.iter() {
                    if let Some(reverse) = edges.get(&(name, *h)) {
                        // wlc-lint: allow(panic, reason = "the checker's whole purpose: fail fast in debug builds instead of deadlocking")
                        panic!(
                            "lock-order violation: acquiring `{name}` at {site} while holding \
                             `{h}` (acquired at {hsite}), but the opposite order was observed \
                             earlier: {reverse}"
                        );
                    }
                }
                for (h, hsite) in held.iter() {
                    edges.entry((*h, name)).or_insert_with(|| {
                        format!("`{h}` acquired at {hsite}, then `{name}` at {site}")
                    });
                }
            }
            held.push((name, site));
        });
    }

    /// Records that the current thread released `name` (most recent
    /// acquisition first, matching guard drop order).
    pub fn record_release(name: &'static str) {
        HELD.with(|cell| {
            let mut held = cell.borrow_mut();
            if let Some(i) = held.iter().rposition(|(h, _)| *h == name) {
                held.remove(i);
            }
        });
    }
}

/// Total tracked-lock acquisitions observed so far in this process.
///
/// Always 0 in release builds (the checker compiles away); in debug
/// builds, tests use this to assert the detector was live while they
/// exercised a contended path.
pub fn tracked_acquisitions() -> u64 {
    #[cfg(debug_assertions)]
    {
        order::acquisitions()
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// A [`Mutex`] participating in debug-build lock-order checking.
///
/// # Examples
///
/// ```
/// use wlc_exec::TrackedMutex;
///
/// let m = TrackedMutex::new("Example.counter", 0u32);
/// *m.lock() += 1;
/// assert_eq!(*m.lock(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TrackedMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

/// RAII guard for [`TrackedMutex`]; releasing it pops the lock from the
/// thread's held-order stack.
#[derive(Debug)]
pub struct TrackedMutexGuard<'a, T> {
    name: &'static str,
    // `Some` from construction until consumed by `TrackedCondvar::wait`;
    // `Drop` only releases the order entry while the guard is live.
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> TrackedMutex<T> {
    /// Wraps `value` under the lock class `name` (e.g.
    /// `"BoundedQueue.state"`). The name is the identity used for order
    /// checking, shared by every instance of the class.
    pub const fn new(name: &'static str, value: T) -> Self {
        TrackedMutex {
            name,
            inner: Mutex::new(value),
        }
    }

    /// The lock-class name.
    pub fn name(&self) -> &'static str {
        // wlc-lint: allow(guard-coverage, reason = "name is an immutable &'static str set at construction")
        self.name
    }

    /// Acquires the lock, recovering from poison (see module docs).
    ///
    /// # Panics
    ///
    /// In debug builds, panics on a lock-order inversion or recursive
    /// acquisition instead of risking a deadlock.
    #[track_caller]
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        // wlc-lint: allow(guard-coverage, reason = "order check must read the immutable name before blocking on the lock")
        order::record_acquire(self.name, std::panic::Location::caller());
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        TrackedMutexGuard {
            name: self.name,
            guard: Some(guard),
        }
    }
}

impl<T> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.guard {
            Some(g) => g,
            // wlc-lint: allow(panic, reason = "guard invariant: Some until consumed by wait, which never derefs after take")
            None => unreachable!("tracked guard used after being consumed"),
        }
    }
}

impl<T> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.guard {
            Some(g) => g,
            // wlc-lint: allow(panic, reason = "guard invariant: Some until consumed by wait, which never derefs after take")
            None => unreachable!("tracked guard used after being consumed"),
        }
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        if self.guard.is_some() {
            order::record_release(self.name);
        }
    }
}

/// A [`Condvar`] usable with [`TrackedMutex`] guards.
///
/// While a thread is parked in [`TrackedCondvar::wait`] the mutex is
/// genuinely released, so the wait un-registers the lock from the
/// thread's held stack and re-registers it (re-checking order) on wake.
#[derive(Debug, Default)]
pub struct TrackedCondvar {
    inner: Condvar,
}

impl TrackedCondvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        TrackedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Atomically releases `guard` and parks until notified, then
    /// re-acquires the same lock (re-checked against the order
    /// registry) and returns a fresh guard.
    #[track_caller]
    pub fn wait<'a, T>(&self, mut guard: TrackedMutexGuard<'a, T>) -> TrackedMutexGuard<'a, T> {
        let name = guard.name;
        match guard.guard.take() {
            Some(inner) => {
                #[cfg(debug_assertions)]
                order::record_release(name);
                #[cfg(debug_assertions)]
                let caller = std::panic::Location::caller();
                let inner = self
                    .inner
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
                #[cfg(debug_assertions)]
                order::record_acquire(name, caller);
                TrackedMutexGuard {
                    name,
                    guard: Some(inner),
                }
            }
            // Unreachable by construction (guards hold `Some` until
            // consumed here, and `wait` consumes the guard); returning
            // the empty guard keeps this path panic-free regardless.
            None => guard,
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// An [`RwLock`] participating in debug-build lock-order checking.
///
/// Read and write acquisitions are deliberately not distinguished in
/// the order registry: reader/writer ordering cycles deadlock just as
/// readily once a writer is queued, so the conservative class-level
/// check applies to both.
///
/// # Examples
///
/// ```
/// use wlc_exec::TrackedRwLock;
///
/// let l = TrackedRwLock::new("Example.table", vec![1, 2]);
/// assert_eq!(l.read().len(), 2);
/// l.write().push(3);
/// assert_eq!(l.read().len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct TrackedRwLock<T> {
    name: &'static str,
    inner: RwLock<T>,
}

/// Shared-read guard for [`TrackedRwLock`].
#[derive(Debug)]
pub struct TrackedReadGuard<'a, T> {
    name: &'static str,
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`TrackedRwLock`].
#[derive(Debug)]
pub struct TrackedWriteGuard<'a, T> {
    name: &'static str,
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> TrackedRwLock<T> {
    /// Wraps `value` under the lock class `name`.
    pub const fn new(name: &'static str, value: T) -> Self {
        TrackedRwLock {
            name,
            inner: RwLock::new(value),
        }
    }

    /// The lock-class name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires a shared read guard (order-checked in debug builds,
    /// poison-recovering).
    #[track_caller]
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        order::record_acquire(self.name, std::panic::Location::caller());
        TrackedReadGuard {
            name: self.name,
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires the exclusive write guard (order-checked in debug
    /// builds, poison-recovering).
    #[track_caller]
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        order::record_acquire(self.name, std::panic::Location::caller());
        TrackedWriteGuard {
            name: self.name,
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        order::record_release(self.name);
        #[cfg(not(debug_assertions))]
        let _ = self.name;
    }
}

impl<T> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        order::record_release(self.name);
        #[cfg(not(debug_assertions))]
        let _ = self.name;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips_and_counts() {
        let before = tracked_acquisitions();
        let m = TrackedMutex::new("tests.round_trip", 41u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.name(), "tests.round_trip");
        if cfg!(debug_assertions) {
            assert!(tracked_acquisitions() >= before + 2);
        }
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = TrackedRwLock::new("tests.rw", String::from("a"));
        {
            let r1 = l.read();
            assert_eq!(&*r1, "a");
        }
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        assert_eq!(l.name(), "tests.rw");
    }

    #[test]
    fn condvar_wait_hands_the_guard_back() {
        use std::sync::Arc;

        let m = Arc::new(TrackedMutex::new("tests.cv_state", false));
        let cv = Arc::new(TrackedCondvar::new());
        let waker = {
            let m = Arc::clone(&m);
            let cv = Arc::clone(&cv);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                *m.lock() = true;
                cv.notify_all();
            })
        };
        let mut guard = m.lock();
        while !*guard {
            guard = cv.wait(guard);
        }
        drop(guard);
        waker.join().expect("waker thread");
        // The lock is fully released and re-usable after the wait.
        assert!(*m.lock());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn order_inversion_panics_with_provenance() {
        let a = TrackedMutex::new("tests.inv_a", ());
        let b = TrackedMutex::new("tests.inv_b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // records tests.inv_a -> tests.inv_b
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // inversion: must panic, not deadlock later
        }))
        .expect_err("inverted acquisition order must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("lock-order violation"), "{msg}");
        assert!(msg.contains("tests.inv_a"), "{msg}");
        assert!(msg.contains("tracked.rs:"), "missing provenance: {msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn recursive_acquisition_panics() {
        let m = TrackedMutex::new("tests.recursive", ());
        let _g = m.lock();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _again = m.lock();
        }))
        .expect_err("recursive acquisition must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("recursive acquisition"), "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn consistent_order_never_fires() {
        // Same order from two threads: no inversion, no panic.
        use std::sync::Arc;

        let a = Arc::new(TrackedMutex::new("tests.ok_a", 0u64));
        let b = Arc::new(TrackedMutex::new("tests.ok_b", 0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let mut ga = a.lock();
                        let mut gb = b.lock();
                        *ga += 1;
                        *gb += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(*a.lock(), 800);
        assert_eq!(*b.lock(), 800);
    }
}
