//! Std-only parallel execution layer for the workload-characterization
//! workspace.
//!
//! Every hot path in the paper's pipeline is embarrassingly parallel: one
//! independent DES run per configuration point, one independent MLP per
//! cross-validation fold, one independent model evaluation per response-
//! surface grid row. This crate provides the primitive they all share —
//! fan an indexed task set out over a fixed number of worker threads and
//! collect the results *in index order* — built on `std::thread` +
//! channels only, so the workspace stays dependency-free. For *open*
//! workloads (a long-running server fed by arriving requests) it adds
//! [`BoundedQueue`] + [`ServicePool`]: a strictly bounded request queue
//! with explicit load shedding drained by persistent workers.
//!
//! Determinism: the pool never changes *what* is computed, only *where*.
//! Callers derive any randomness from the task index (e.g.
//! `Seed::derive(index)`), so output is bit-identical for any worker
//! count, including 1.
//!
//! Panics in a worker are re-raised on the calling thread after all
//! in-flight tasks finish — a crashing task surfaces instead of hanging
//! the run.
//!
//! Lock discipline: the crate's own locks (and the serve layer's, which
//! build on them) are [`TrackedMutex`]/[`TrackedRwLock`] wrappers that
//! detect lock-order inversions at runtime in debug builds, backing the
//! static lock-order analysis run by `wlc-lint`.
//!
//! # Examples
//!
//! ```
//! let squares = wlc_exec::map_indexed(4, 10, |i| i * i);
//! assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;
mod service;
mod tracked;

pub use pool::{
    default_jobs, map_indexed, map_indexed_timed, try_map_indexed, try_map_indexed_retry,
    try_map_indexed_retry_timed, try_map_indexed_timed, RunReport, TaskTiming,
};
pub use service::{BoundedQueue, PushError, ServicePool};
pub use tracked::{
    tracked_acquisitions, TrackedCondvar, TrackedMutex, TrackedMutexGuard, TrackedReadGuard,
    TrackedRwLock, TrackedWriteGuard,
};
