//! Long-running service primitives: a bounded request queue with explicit
//! load shedding, and a persistent worker pool that drains it.
//!
//! Unlike the batch fan-out in [`crate::map_indexed`], these primitives
//! serve an *open* workload: producers push jobs as they arrive and a
//! fixed set of workers consumes them until the queue is closed. The
//! queue is strictly bounded — when it is full, [`BoundedQueue::push`]
//! returns the job to the caller instead of blocking or growing, so an
//! overloaded server sheds deterministically rather than OOMing.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::tracked::{TrackedCondvar, TrackedMutex};

/// Why a [`BoundedQueue::push`] did not enqueue; the job is handed back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — shed the job (retriable by the caller).
    Full(T),
    /// The queue has been closed — no further work is accepted.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the job that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(t) | PushError::Closed(t) => t,
        }
    }

    /// Whether the rejection is transient (queue full) rather than
    /// permanent (queue closed).
    pub fn is_retriable(&self) -> bool {
        matches!(self, PushError::Full(_))
    }
}

impl<T> fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full(_) => write!(f, "queue full"),
            PushError::Closed(_) => write!(f, "queue closed"),
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
///
/// - [`BoundedQueue::push`] never blocks: at capacity it returns
///   [`PushError::Full`] so the producer can shed the job explicitly.
/// - [`BoundedQueue::pop`] blocks until a job arrives or the queue is
///   closed *and* drained, making close-then-join a graceful drain.
///
/// # Examples
///
/// ```
/// use wlc_exec::BoundedQueue;
///
/// let q = BoundedQueue::new(2);
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert!(q.push(3).is_err()); // shed, not blocked
/// q.close();
/// assert_eq!(q.pop(), Some(1)); // closing still drains queued work
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
pub struct BoundedQueue<T> {
    state: TrackedMutex<QueueState<T>>,
    available: TrackedCondvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` jobs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: TrackedMutex::new(
                "BoundedQueue.state",
                QueueState {
                    items: VecDeque::new(),
                    closed: false,
                },
            ),
            available: TrackedCondvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        // wlc-lint: allow(guard-coverage, reason = "capacity is immutable after construction; the guard in push protects state, not capacity")
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tries to enqueue a job without blocking, returning the depth after
    /// the push.
    ///
    /// # Errors
    ///
    /// - [`PushError::Full`] at capacity (the caller sheds the job).
    /// - [`PushError::Closed`] after [`BoundedQueue::close`].
    pub fn push(&self, job: T) -> Result<usize, PushError<T>> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(PushError::Closed(job));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        state.items.push_back(job);
        let depth = state.items.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until a job is available and dequeues it. Returns `None`
    /// once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(job) = state.items.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state);
        }
    }

    /// Closes the queue: further pushes fail, waiting consumers finish
    /// draining what is already queued and then observe `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.available.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

/// A fixed set of worker threads draining a [`BoundedQueue`].
///
/// Workers run `handler(worker_index, job)` for every job until the queue
/// is closed and drained. [`ServicePool::join`] then completes — so the
/// graceful-shutdown sequence is: stop producing, `queue.close()`,
/// `pool.join()`.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use wlc_exec::{BoundedQueue, ServicePool};
///
/// let queue = Arc::new(BoundedQueue::new(16));
/// let done = Arc::new(AtomicUsize::new(0));
/// let counter = Arc::clone(&done);
/// let pool = ServicePool::start(3, Arc::clone(&queue), move |_worker, job: usize| {
///     counter.fetch_add(job, Ordering::Relaxed);
/// });
/// for j in 0..10 {
///     queue.push(j).unwrap();
/// }
/// queue.close();
/// pool.join();
/// assert_eq!(done.load(Ordering::Relaxed), 45);
/// ```
pub struct ServicePool {
    handles: Vec<JoinHandle<()>>,
}

impl ServicePool {
    /// Spawns `workers` threads (minimum 1) that drain `queue` through
    /// `handler`.
    pub fn start<T, F>(workers: usize, queue: Arc<BoundedQueue<T>>, handler: F) -> Self
    where
        T: Send + 'static,
        F: Fn(usize, T) + Send + Sync + 'static,
    {
        let handler = Arc::new(handler);
        let handles = (0..workers.max(1))
            .map(|worker| {
                let queue = Arc::clone(&queue);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || {
                    while let Some(job) = queue.pop() {
                        handler(worker, job);
                    }
                })
            })
            .collect();
        ServicePool { handles }
    }

    /// Spawns `workers` threads (minimum 1) that each own a mutable state
    /// value built by `init(worker_index)` and drain `queue` through
    /// `handler(worker_index, &mut state, job)`.
    ///
    /// The state lives for the worker's whole lifetime, so expensive
    /// scratch (buffers, workspaces, connections) is built once per
    /// worker and reused across jobs instead of being reallocated per
    /// request.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::atomic::{AtomicUsize, Ordering};
    /// use std::sync::Arc;
    /// use wlc_exec::{BoundedQueue, ServicePool};
    ///
    /// let queue = Arc::new(BoundedQueue::new(16));
    /// let total = Arc::new(AtomicUsize::new(0));
    /// let sink = Arc::clone(&total);
    /// let pool = ServicePool::start_with_state(
    ///     2,
    ///     Arc::clone(&queue),
    ///     |_worker| Vec::<usize>::new(), // per-worker scratch
    ///     move |_worker, scratch, job: usize| {
    ///         scratch.push(job); // reused buffer, never shared
    ///         sink.fetch_add(job, Ordering::Relaxed);
    ///     },
    /// );
    /// for j in 1..=4 {
    ///     queue.push(j).unwrap();
    /// }
    /// queue.close();
    /// pool.join();
    /// assert_eq!(total.load(Ordering::Relaxed), 10);
    /// ```
    pub fn start_with_state<T, S, I, F>(
        workers: usize,
        queue: Arc<BoundedQueue<T>>,
        init: I,
        handler: F,
    ) -> Self
    where
        T: Send + 'static,
        S: Send + 'static,
        I: Fn(usize) -> S + Send + Sync + 'static,
        F: Fn(usize, &mut S, T) + Send + Sync + 'static,
    {
        let init = Arc::new(init);
        let handler = Arc::new(handler);
        let handles = (0..workers.max(1))
            .map(|worker| {
                let queue = Arc::clone(&queue);
                let init = Arc::clone(&init);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || {
                    let mut state = init(worker);
                    while let Some(job) = queue.pop() {
                        handler(worker, &mut state, job);
                    }
                })
            })
            .collect();
        ServicePool { handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Waits for every worker to finish (the queue must be closed first,
    /// or this blocks until it is). Worker panics are propagated.
    pub fn join(self) {
        for handle in self.handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn push_sheds_at_capacity_instead_of_growing() {
        let q = BoundedQueue::new(3);
        for i in 0..3 {
            assert_eq!(q.push(i).unwrap(), i + 1);
        }
        let err = q.push(99).unwrap_err();
        assert!(err.is_retriable());
        assert_eq!(err.into_inner(), 99);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_err());
    }

    #[test]
    fn close_rejects_new_work_but_drains_queued() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(q.is_closed());
        let err = q.push(3).unwrap_err();
        assert!(!err.is_retriable());
        assert_eq!(format!("{err}"), "queue closed");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.push(7usize).unwrap();
            })
        };
        assert_eq!(q.pop(), Some(7));
        producer.join().unwrap();
    }

    #[test]
    fn pool_processes_all_jobs_then_joins() {
        let queue = Arc::new(BoundedQueue::new(64));
        let sum = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&sum);
        let pool = ServicePool::start(4, Arc::clone(&queue), move |_w, job: usize| {
            seen.fetch_add(job, Ordering::Relaxed);
        });
        assert_eq!(pool.workers(), 4);
        for j in 1..=50 {
            queue.push(j).unwrap();
        }
        queue.close();
        pool.join();
        assert_eq!(sum.load(Ordering::Relaxed), (1..=50).sum());
    }

    #[test]
    fn shutdown_drains_in_flight_and_queued_jobs() {
        // One slow worker, several queued jobs: close + join must complete
        // every queued job, not abandon them.
        let queue = Arc::new(BoundedQueue::new(8));
        let done = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&done);
        let pool = ServicePool::start(1, Arc::clone(&queue), move |_w, _job: usize| {
            std::thread::sleep(Duration::from_millis(5));
            counter.fetch_add(1, Ordering::Relaxed);
        });
        for j in 0..6 {
            queue.push(j).unwrap();
        }
        queue.close();
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn per_worker_state_is_initialized_once_and_reused() {
        let queue = Arc::new(BoundedQueue::new(64));
        let inits = Arc::new(AtomicUsize::new(0));
        let jobs_via_state = Arc::new(AtomicUsize::new(0));
        let init_counter = Arc::clone(&inits);
        let sink = Arc::clone(&jobs_via_state);
        let pool = ServicePool::start_with_state(
            3,
            Arc::clone(&queue),
            move |worker| {
                init_counter.fetch_add(1, Ordering::Relaxed);
                (worker, 0usize) // per-worker mutable scratch
            },
            move |worker, state, _job: usize| {
                assert_eq!(state.0, worker, "state belongs to its worker");
                state.1 += 1;
                sink.fetch_add(1, Ordering::Relaxed);
            },
        );
        for j in 0..30 {
            queue.push(j).unwrap();
        }
        queue.close();
        pool.join();
        assert_eq!(inits.load(Ordering::Relaxed), 3, "one init per worker");
        assert_eq!(jobs_via_state.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn worker_panic_propagates_on_join() {
        let queue = Arc::new(BoundedQueue::new(4));
        let pool = ServicePool::start(1, Arc::clone(&queue), |_w, job: usize| {
            if job == 2 {
                panic!("worker exploded");
            }
        });
        queue.push(2).unwrap();
        queue.close();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.join())).is_err());
    }
}
