//! Property-based tests for datasets, scalers, splits and metrics.

use proptest::prelude::*;
use wlc_data::metrics;
use wlc_data::{train_test_split, Dataset, KFold, Sample, Scaler};
use wlc_math::rng::Seed;
use wlc_math::Matrix;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..5, 1usize..4, 2usize..20).prop_flat_map(|(xw, yw, n)| {
        prop::collection::vec(
            (
                prop::collection::vec(-1e3..1e3_f64, xw),
                prop::collection::vec(-1e3..1e3_f64, yw),
            ),
            n,
        )
        .prop_map(move |rows| {
            let mut ds = Dataset::new(
                (0..xw).map(|i| format!("x{i}")).collect(),
                (0..yw).map(|i| format!("y{i}")).collect(),
            )
            .expect("valid names");
            for (x, y) in rows {
                ds.push(Sample::new(x, y)).expect("widths match");
            }
            ds
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csv_roundtrip_any_dataset(ds in dataset_strategy()) {
        let back = Dataset::from_csv_string(&ds.to_csv_string()).unwrap();
        prop_assert_eq!(back, ds);
    }

    #[test]
    fn matrices_roundtrip(ds in dataset_strategy()) {
        let (xs, ys) = ds.to_matrices();
        let back = Dataset::from_matrices(
            ds.input_names().to_vec(),
            ds.output_names().to_vec(),
            &xs,
            &ys,
        )
        .unwrap();
        prop_assert_eq!(back, ds);
    }

    #[test]
    fn standard_scaler_roundtrips(ds in dataset_strategy()) {
        let (xs, _) = ds.to_matrices();
        let scaler = Scaler::standard_fit(&xs).unwrap();
        let back = scaler.inverse_transform(&scaler.transform(&xs).unwrap()).unwrap();
        for r in 0..xs.rows() {
            for c in 0..xs.cols() {
                let orig = xs.get(r, c);
                prop_assert!((back.get(r, c) - orig).abs() < 1e-6 * (1.0 + orig.abs()));
            }
        }
    }

    #[test]
    fn standard_scaler_zero_mean_unit_std(ds in dataset_strategy()) {
        let (xs, _) = ds.to_matrices();
        let scaler = Scaler::standard_fit(&xs).unwrap();
        let t = scaler.transform(&xs).unwrap();
        for c in 0..t.cols() {
            let col = t.col_to_vec(c);
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-7, "column {c} mean {mean}");
            let var = col.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / col.len() as f64;
            // Constant columns are mapped to variance 0; otherwise 1.
            prop_assert!(var.abs() < 1e-7 || (var - 1.0).abs() < 1e-6, "column {c} var {var}");
        }
    }

    #[test]
    fn min_max_scaler_bounds(ds in dataset_strategy()) {
        let (xs, _) = ds.to_matrices();
        let scaler = Scaler::min_max_fit(&xs).unwrap();
        let t = scaler.transform(&xs).unwrap();
        for &v in t.as_slice() {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn scaler_text_roundtrip(ds in dataset_strategy()) {
        let (xs, _) = ds.to_matrices();
        for scaler in [
            Scaler::standard_fit(&xs).unwrap(),
            Scaler::min_max_fit(&xs).unwrap(),
            Scaler::identity(xs.cols()),
        ] {
            let back = Scaler::from_text(&scaler.to_text()).unwrap();
            prop_assert_eq!(back, scaler);
        }
    }

    #[test]
    fn kfold_is_exact_partition(n in 4usize..60, k in 2usize..6, seed in any::<u64>()) {
        prop_assume!(k <= n);
        let kf = KFold::new(n, k, Seed::new(seed)).unwrap();
        let mut seen = vec![0usize; n];
        for (train, val) in kf.folds() {
            prop_assert_eq!(train.len() + val.len(), n);
            for v in val {
                seen[v] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn split_partitions(n in 1usize..100, frac in 0.0..0.95_f64, seed in any::<u64>()) {
        let (train, test) = train_test_split(n, frac, Seed::new(seed)).unwrap();
        prop_assert_eq!(train.len() + test.len(), n);
        prop_assert!(!train.is_empty());
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn subset_preserves_selected_samples(ds in dataset_strategy(), seed in any::<u64>()) {
        let n = ds.len();
        let idx: Vec<usize> = (0..n).filter(|i| !(i + seed as usize).is_multiple_of(3)).collect();
        prop_assume!(!idx.is_empty());
        let sub = ds.subset(&idx).unwrap();
        prop_assert_eq!(sub.len(), idx.len());
        for (out_i, &src_i) in idx.iter().enumerate() {
            prop_assert_eq!(&sub.samples()[out_i], &ds.samples()[src_i]);
        }
    }

    #[test]
    fn mape_zero_iff_exact(values in prop::collection::vec(0.1..1e3_f64, 1..10)) {
        let exact = metrics::mape(&values, &values).unwrap();
        prop_assert!(exact.abs() < 1e-12);
        let off: Vec<f64> = values.iter().map(|v| v * 1.1).collect();
        let e = metrics::mape(&values, &off).unwrap();
        prop_assert!((e - 0.1).abs() < 1e-9);
    }

    #[test]
    fn harmonic_error_bounded_by_arithmetic(
        actual in prop::collection::vec(0.1..1e3_f64, 2..10),
        scale in prop::collection::vec(0.5..2.0_f64, 2..10),
    ) {
        let n = actual.len().min(scale.len());
        let predicted: Vec<f64> = actual[..n].iter().zip(&scale[..n]).map(|(a, s)| a * s).collect();
        let hm = metrics::harmonic_mean_relative_error(&actual[..n], &predicted);
        let am = metrics::mape(&actual[..n], &predicted);
        if let (Ok(hm), Ok(am)) = (hm, am) {
            prop_assert!(hm <= am * (1.0 + 1e-9), "hm {hm} am {am}");
        }
    }

    #[test]
    fn rmse_at_least_mae(
        actual in prop::collection::vec(-1e3..1e3_f64, 1..10),
        predicted in prop::collection::vec(-1e3..1e3_f64, 1..10),
    ) {
        let n = actual.len().min(predicted.len());
        let rmse = metrics::rmse(&actual[..n], &predicted[..n]).unwrap();
        let mae = metrics::mae(&actual[..n], &predicted[..n]).unwrap();
        prop_assert!(rmse >= mae - 1e-9);
    }

    #[test]
    fn error_report_consistent_with_columnwise(ds in dataset_strategy()) {
        let (_, ys) = ds.to_matrices();
        prop_assume!(ys.as_slice().iter().all(|&v| v.abs() > 1e-3));
        let predicted = Matrix::from_fn(ys.rows(), ys.cols(), |r, c| ys.get(r, c) * 1.05);
        let report = metrics::ErrorReport::compare(ds.output_names(), &ys, &predicted).unwrap();
        for out in report.outputs() {
            prop_assert!((out.harmonic_mean_error - 0.05).abs() < 1e-9);
        }
        prop_assert!((report.overall_error() - 0.05).abs() < 1e-9);
    }
}
