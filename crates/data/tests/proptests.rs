//! Property-based tests for datasets, scalers, splits and metrics, on
//! the seeded [`propcheck`] harness.

use wlc_data::metrics;
use wlc_data::{train_test_split, Dataset, KFold, Sample, Scaler};
use wlc_math::propcheck::{self, Gen};
use wlc_math::rng::Seed;
use wlc_math::Matrix;

fn random_dataset(g: &mut Gen) -> Dataset {
    let xw = g.usize_in(1, 5);
    let yw = g.usize_in(1, 4);
    let n = g.usize_in(2, 20);
    let mut ds = Dataset::new(
        (0..xw).map(|i| format!("x{i}")).collect(),
        (0..yw).map(|i| format!("y{i}")).collect(),
    )
    .expect("valid names");
    for _ in 0..n {
        let x = g.vec_f64(-1e3, 1e3, xw);
        let y = g.vec_f64(-1e3, 1e3, yw);
        ds.push(Sample::new(x, y)).expect("widths match");
    }
    ds
}

#[test]
fn csv_roundtrip_any_dataset() {
    propcheck::run_cases(48, |g| {
        let ds = random_dataset(g);
        let back = Dataset::from_csv_string(&ds.to_csv_string()).unwrap();
        assert_eq!(back, ds);
    });
}

#[test]
fn matrices_roundtrip() {
    propcheck::run_cases(48, |g| {
        let ds = random_dataset(g);
        let (xs, ys) = ds.to_matrices();
        let back = Dataset::from_matrices(
            ds.input_names().to_vec(),
            ds.output_names().to_vec(),
            &xs,
            &ys,
        )
        .unwrap();
        assert_eq!(back, ds);
    });
}

#[test]
fn standard_scaler_roundtrips() {
    propcheck::run_cases(48, |g| {
        let ds = random_dataset(g);
        let (xs, _) = ds.to_matrices();
        let scaler = Scaler::standard_fit(&xs).unwrap();
        let back = scaler
            .inverse_transform(&scaler.transform(&xs).unwrap())
            .unwrap();
        for r in 0..xs.rows() {
            for c in 0..xs.cols() {
                let orig = xs.get(r, c);
                assert!((back.get(r, c) - orig).abs() < 1e-6 * (1.0 + orig.abs()));
            }
        }
    });
}

#[test]
fn standard_scaler_zero_mean_unit_std() {
    propcheck::run_cases(48, |g| {
        let ds = random_dataset(g);
        let (xs, _) = ds.to_matrices();
        let scaler = Scaler::standard_fit(&xs).unwrap();
        let t = scaler.transform(&xs).unwrap();
        for c in 0..t.cols() {
            let col = t.col_to_vec(c);
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-7, "column {c} mean {mean}");
            let var = col.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / col.len() as f64;
            // Constant columns are mapped to variance 0; otherwise 1.
            assert!(
                var.abs() < 1e-7 || (var - 1.0).abs() < 1e-6,
                "column {c} var {var}"
            );
        }
    });
}

#[test]
fn min_max_scaler_bounds() {
    propcheck::run_cases(48, |g| {
        let ds = random_dataset(g);
        let (xs, _) = ds.to_matrices();
        let scaler = Scaler::min_max_fit(&xs).unwrap();
        let t = scaler.transform(&xs).unwrap();
        for &v in t.as_slice() {
            assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
    });
}

#[test]
fn scaler_text_roundtrip() {
    propcheck::run_cases(48, |g| {
        let ds = random_dataset(g);
        let (xs, _) = ds.to_matrices();
        for scaler in [
            Scaler::standard_fit(&xs).unwrap(),
            Scaler::min_max_fit(&xs).unwrap(),
            Scaler::identity(xs.cols()),
        ] {
            let back = Scaler::from_text(&scaler.to_text()).unwrap();
            assert_eq!(back, scaler);
        }
    });
}

#[test]
fn kfold_is_exact_partition() {
    propcheck::run_cases(48, |g| {
        let n = g.usize_in(4, 60);
        let k = g.usize_in(2, 6);
        if k > n {
            return;
        }
        let kf = KFold::new(n, k, Seed::new(g.u64())).unwrap();
        let mut seen = vec![0usize; n];
        for (train, val) in kf.folds() {
            assert_eq!(train.len() + val.len(), n);
            for v in val {
                seen[v] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    });
}

#[test]
fn split_partitions() {
    propcheck::run_cases(48, |g| {
        let n = g.usize_in(1, 100);
        let frac = g.f64_in(0.0, 0.95);
        let (train, test) = train_test_split(n, frac, Seed::new(g.u64())).unwrap();
        assert_eq!(train.len() + test.len(), n);
        assert!(!train.is_empty());
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    });
}

#[test]
fn subset_preserves_selected_samples() {
    propcheck::run_cases(48, |g| {
        let ds = random_dataset(g);
        let seed = g.u64();
        let n = ds.len();
        let idx: Vec<usize> = (0..n)
            .filter(|i| !(i + seed as usize).is_multiple_of(3))
            .collect();
        if idx.is_empty() {
            return;
        }
        let sub = ds.subset(&idx).unwrap();
        assert_eq!(sub.len(), idx.len());
        for (out_i, &src_i) in idx.iter().enumerate() {
            assert_eq!(&sub.samples()[out_i], &ds.samples()[src_i]);
        }
    });
}

#[test]
fn mape_zero_iff_exact() {
    propcheck::run_cases(48, |g| {
        let values = g.vec_f64_len(0.1, 1e3, 1, 10);
        let exact = metrics::mape(&values, &values).unwrap();
        assert!(exact.abs() < 1e-12);
        let off: Vec<f64> = values.iter().map(|v| v * 1.1).collect();
        let e = metrics::mape(&values, &off).unwrap();
        assert!((e - 0.1).abs() < 1e-9);
    });
}

#[test]
fn harmonic_error_bounded_by_arithmetic() {
    propcheck::run_cases(48, |g| {
        let actual = g.vec_f64_len(0.1, 1e3, 2, 10);
        let scale = g.vec_f64_len(0.5, 2.0, 2, 10);
        let n = actual.len().min(scale.len());
        let predicted: Vec<f64> = actual[..n]
            .iter()
            .zip(&scale[..n])
            .map(|(a, s)| a * s)
            .collect();
        let hm = metrics::harmonic_mean_relative_error(&actual[..n], &predicted);
        let am = metrics::mape(&actual[..n], &predicted);
        if let (Ok(hm), Ok(am)) = (hm, am) {
            assert!(hm <= am * (1.0 + 1e-9), "hm {hm} am {am}");
        }
    });
}

#[test]
fn rmse_at_least_mae() {
    propcheck::run_cases(48, |g| {
        let actual = g.vec_f64_len(-1e3, 1e3, 1, 10);
        let predicted = g.vec_f64_len(-1e3, 1e3, 1, 10);
        let n = actual.len().min(predicted.len());
        let rmse = metrics::rmse(&actual[..n], &predicted[..n]).unwrap();
        let mae = metrics::mae(&actual[..n], &predicted[..n]).unwrap();
        assert!(rmse >= mae - 1e-9);
    });
}

#[test]
fn error_report_consistent_with_columnwise() {
    propcheck::run_cases(48, |g| {
        let ds = random_dataset(g);
        let (_, ys) = ds.to_matrices();
        if !ys.as_slice().iter().all(|&v| v.abs() > 1e-3) {
            return;
        }
        let predicted = Matrix::from_fn(ys.rows(), ys.cols(), |r, c| ys.get(r, c) * 1.05);
        let report = metrics::ErrorReport::compare(ds.output_names(), &ys, &predicted).unwrap();
        for out in report.outputs() {
            assert!((out.harmonic_mean_error - 0.05).abs() < 1e-9);
        }
        assert!((report.overall_error() - 0.05).abs() < 1e-9);
    });
}
