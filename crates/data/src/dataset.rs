use std::fmt;
use std::path::Path;

use wlc_math::Matrix;

use crate::DataError;

/// One observation: a configuration vector `X` and the performance
/// indicators `Y` measured under it.
///
/// This is the paper's training tuple (§2.2):
/// `(X, Y) = (x1..xn, y1..ym)` where `X` is a workload configuration and
/// `Y` the performance indicators collected by running the application
/// under `X`.
///
/// # Examples
///
/// ```
/// use wlc_data::Sample;
/// let s = Sample::new(vec![560.0, 10.0, 16.0, 18.0], vec![4.2, 250.0]);
/// assert_eq!(s.x().len(), 4);
/// assert_eq!(s.y().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    x: Vec<f64>,
    y: Vec<f64>,
}

impl Sample {
    /// Creates a sample from configuration and indicator vectors.
    pub fn new(x: Vec<f64>, y: Vec<f64>) -> Self {
        Sample { x, y }
    }

    /// The configuration (input) vector.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// The performance-indicator (output) vector.
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// Consumes the sample, returning `(x, y)`.
    pub fn into_parts(self) -> (Vec<f64>, Vec<f64>) {
        (self.x, self.y)
    }
}

/// A named collection of [`Sample`]s.
///
/// Column names give experiments self-describing CSV output and catch
/// wiring mistakes (e.g. swapping input order) early.
///
/// # Examples
///
/// ```
/// use wlc_data::{Dataset, Sample};
///
/// let mut ds = Dataset::new(
///     vec!["injection_rate".into(), "web_threads".into()],
///     vec!["throughput".into()],
/// )?;
/// ds.push(Sample::new(vec![560.0, 18.0], vec![250.0]))?;
/// assert_eq!(ds.len(), 1);
/// assert_eq!(ds.input_width(), 2);
/// # Ok::<(), wlc_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    input_names: Vec<String>,
    output_names: Vec<String>,
    samples: Vec<Sample>,
}

impl Dataset {
    /// Creates an empty dataset with the given column names.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if either name list is
    /// empty.
    pub fn new(input_names: Vec<String>, output_names: Vec<String>) -> Result<Self, DataError> {
        if input_names.is_empty() {
            return Err(DataError::InvalidParameter {
                name: "input_names",
                reason: "must not be empty",
            });
        }
        if output_names.is_empty() {
            return Err(DataError::InvalidParameter {
                name: "output_names",
                reason: "must not be empty",
            });
        }
        Ok(Dataset {
            input_names,
            output_names,
            samples: Vec::new(),
        })
    }

    /// Builds a dataset from parallel input/output matrices.
    ///
    /// # Errors
    ///
    /// - [`DataError::LengthMismatch`] if row counts differ.
    /// - [`DataError::WidthMismatch`] if widths do not match the names.
    pub fn from_matrices(
        input_names: Vec<String>,
        output_names: Vec<String>,
        xs: &Matrix,
        ys: &Matrix,
    ) -> Result<Self, DataError> {
        let mut ds = Dataset::new(input_names, output_names)?;
        if xs.rows() != ys.rows() {
            return Err(DataError::LengthMismatch {
                left: xs.rows(),
                right: ys.rows(),
                op: "from_matrices",
            });
        }
        for r in 0..xs.rows() {
            ds.push(Sample::new(xs.row(r).to_vec(), ys.row(r).to_vec()))?;
        }
        Ok(ds)
    }

    /// Input (configuration) column names.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Output (indicator) column names.
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// Number of input columns.
    pub fn input_width(&self) -> usize {
        self.input_names.len()
    }

    /// Number of output columns.
    pub fn output_width(&self) -> usize {
        self.output_names.len()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples, in insertion order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Appends a sample.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::WidthMismatch`] if the sample's widths do not
    /// match the dataset's columns.
    pub fn push(&mut self, sample: Sample) -> Result<(), DataError> {
        if sample.x().len() != self.input_width() {
            return Err(DataError::WidthMismatch {
                expected: self.input_width(),
                actual: sample.x().len(),
                what: "inputs",
            });
        }
        if sample.y().len() != self.output_width() {
            return Err(DataError::WidthMismatch {
                expected: self.output_width(),
                actual: sample.y().len(),
                what: "outputs",
            });
        }
        self.samples.push(sample);
        Ok(())
    }

    /// Splits the samples into `(X, Y)` matrices (one row per sample).
    ///
    /// For an empty dataset both matrices have zero rows.
    pub fn to_matrices(&self) -> (Matrix, Matrix) {
        let mut xs = Matrix::zeros(self.len(), self.input_width());
        let mut ys = Matrix::zeros(self.len(), self.output_width());
        for (r, s) in self.samples.iter().enumerate() {
            xs.row_mut(r).copy_from_slice(s.x());
            ys.row_mut(r).copy_from_slice(s.y());
        }
        (xs, ys)
    }

    /// Creates a new dataset containing the samples at `indices`, in order.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if any index is out of
    /// bounds.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset, DataError> {
        let mut out = Dataset::new(self.input_names.clone(), self.output_names.clone())?;
        for &i in indices {
            let sample = self.samples.get(i).ok_or(DataError::InvalidParameter {
                name: "indices",
                reason: "index out of bounds",
            })?;
            out.push(sample.clone())?;
        }
        Ok(out)
    }

    /// Appends all samples of `other` (which must have identical column
    /// names).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if the column names differ.
    pub fn merge(&mut self, other: &Dataset) -> Result<(), DataError> {
        if other.input_names != self.input_names || other.output_names != self.output_names {
            return Err(DataError::InvalidParameter {
                name: "other",
                reason: "column names must match to merge datasets",
            });
        }
        for s in other.samples() {
            self.push(s.clone())?;
        }
        Ok(())
    }

    /// Per-column summary statistics (min / mean / max / std) over inputs
    /// then outputs — a quick data-quality check before training.
    ///
    /// Returns one [`ColumnSummary`] per column; empty for an empty
    /// dataset.
    pub fn column_summaries(&self) -> Vec<ColumnSummary> {
        if self.is_empty() {
            return Vec::new();
        }
        let (xs, ys) = self.to_matrices();
        let mut out = Vec::with_capacity(self.input_width() + self.output_width());
        for (names, m, is_input) in [
            (&self.input_names, &xs, true),
            (&self.output_names, &ys, false),
        ] {
            for (c, name) in names.iter().enumerate() {
                let col = m.col_to_vec(c);
                let mean = col.iter().sum::<f64>() / col.len() as f64;
                let var = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / col.len() as f64;
                out.push(ColumnSummary {
                    name: name.clone(),
                    is_input,
                    min: col.iter().copied().fold(f64::INFINITY, f64::min),
                    mean,
                    max: col.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    std_dev: var.sqrt(),
                });
            }
        }
        out
    }

    /// Serializes to CSV: a header row of input then output names (outputs
    /// suffixed with `*`), then one row per sample.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = self
            .input_names
            .iter()
            .cloned()
            .chain(self.output_names.iter().map(|n| format!("{n}*")))
            .collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for s in &self.samples {
            let cells: Vec<String> = s
                .x()
                .iter()
                .chain(s.y().iter())
                .map(|v| format!("{v:?}"))
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Parses the CSV produced by [`Dataset::to_csv_string`]. Output
    /// columns are those whose header ends with `*`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Csv`] for malformed headers or rows.
    pub fn from_csv_string(csv: &str) -> Result<Dataset, DataError> {
        let mut lines = csv.lines().enumerate();
        let (_, header) = lines.next().ok_or(DataError::Csv {
            line: 1,
            reason: "missing header".into(),
        })?;
        let (input_names, output_names) = parse_csv_header(header)?;
        let mut ds = Dataset::new(input_names, output_names)?;
        for (idx, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let values: Result<Vec<f64>, DataError> = line
                .split(',')
                .map(|tok| {
                    tok.trim().parse::<f64>().map_err(|_| DataError::Csv {
                        line: idx + 1,
                        reason: format!("bad float `{}`", tok.trim()),
                    })
                })
                .collect();
            let values = values?;
            if values.len() != ds.input_width() + ds.output_width() {
                return Err(DataError::Csv {
                    line: idx + 1,
                    reason: "wrong number of columns".into(),
                });
            }
            let (x, y) = values.split_at(ds.input_width());
            ds.push(Sample::new(x.to_vec(), y.to_vec()))?;
        }
        Ok(ds)
    }

    /// Writes the dataset to a CSV file.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Io`] on filesystem failure.
    pub fn save_csv<P: AsRef<Path>>(&self, path: P) -> Result<(), DataError> {
        // wlc-lint: allow(durable-write, reason = "one-shot CLI export; the supervisor's durable path stages buffers via wlc_fault::write_atomic")
        std::fs::write(path, self.to_csv_string())?;
        Ok(())
    }

    /// Reads a dataset from a CSV file.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Io`] on filesystem failure and
    /// [`DataError::Csv`] on malformed content.
    pub fn load_csv<P: AsRef<Path>>(path: P) -> Result<Dataset, DataError> {
        let text = std::fs::read_to_string(path)?;
        Dataset::from_csv_string(&text)
    }
}

/// Parses a CSV header into `(input_names, output_names)`; outputs are the
/// `*`-suffixed columns, which must all come last.
pub(crate) fn parse_csv_header(header: &str) -> Result<(Vec<String>, Vec<String>), DataError> {
    let mut input_names = Vec::new();
    let mut output_names = Vec::new();
    let mut seen_output = false;
    for name in header.split(',') {
        let name = name.trim();
        if let Some(stripped) = name.strip_suffix('*') {
            output_names.push(stripped.to_string());
            seen_output = true;
        } else {
            if seen_output {
                return Err(DataError::Csv {
                    line: 1,
                    reason: "input column after output column".into(),
                });
            }
            input_names.push(name.to_string());
        }
    }
    if input_names.is_empty() || output_names.is_empty() {
        return Err(DataError::Csv {
            line: 1,
            reason: "need at least one input and one `*`-suffixed output column".into(),
        });
    }
    Ok((input_names, output_names))
}

/// Summary statistics of one dataset column (see
/// [`Dataset::column_summaries`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ColumnSummary {
    /// Column name.
    pub name: String,
    /// Whether this is an input (configuration) column.
    pub is_input: bool,
    /// Smallest value.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest value.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dataset({} samples, {} -> {})",
            self.len(),
            self.input_names.join("/"),
            self.output_names.join("/")
        )
    }
}

impl Extend<Sample> for Dataset {
    /// Appends samples, skipping any whose widths do not match.
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        for s in iter {
            let _ = self.push(s);
        }
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut ds =
            Dataset::new(vec!["a".into(), "b".into()], vec!["y1".into(), "y2".into()]).unwrap();
        ds.push(Sample::new(vec![1.0, 2.0], vec![3.0, 4.0]))
            .unwrap();
        ds.push(Sample::new(vec![5.0, 6.0], vec![7.0, 8.0]))
            .unwrap();
        ds
    }

    #[test]
    fn new_requires_names() {
        assert!(Dataset::new(vec![], vec!["y".into()]).is_err());
        assert!(Dataset::new(vec!["x".into()], vec![]).is_err());
    }

    #[test]
    fn push_validates_widths() {
        let mut ds = tiny();
        assert!(ds.push(Sample::new(vec![1.0], vec![2.0, 3.0])).is_err());
        assert!(ds.push(Sample::new(vec![1.0, 2.0], vec![3.0])).is_err());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn to_matrices_layout() {
        let ds = tiny();
        let (xs, ys) = ds.to_matrices();
        assert_eq!(xs.shape(), (2, 2));
        assert_eq!(ys.shape(), (2, 2));
        assert_eq!(xs.row(1), &[5.0, 6.0]);
        assert_eq!(ys.row(0), &[3.0, 4.0]);
    }

    #[test]
    fn from_matrices_roundtrip() {
        let ds = tiny();
        let (xs, ys) = ds.to_matrices();
        let back = Dataset::from_matrices(
            ds.input_names().to_vec(),
            ds.output_names().to_vec(),
            &xs,
            &ys,
        )
        .unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn from_matrices_checks_rows() {
        let xs = Matrix::zeros(2, 1);
        let ys = Matrix::zeros(3, 1);
        assert!(Dataset::from_matrices(vec!["x".into()], vec!["y".into()], &xs, &ys).is_err());
    }

    #[test]
    fn subset_selects_in_order() {
        let ds = tiny();
        let sub = ds.subset(&[1, 0, 1]).unwrap();
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.samples()[0].x(), &[5.0, 6.0]);
        assert_eq!(sub.samples()[1].x(), &[1.0, 2.0]);
        assert!(ds.subset(&[5]).is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let ds = tiny();
        let csv = ds.to_csv_string();
        assert!(csv.starts_with("a,b,y1*,y2*\n"));
        let back = Dataset::from_csv_string(&csv).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn csv_rejects_malformed() {
        assert!(Dataset::from_csv_string("").is_err());
        assert!(Dataset::from_csv_string("a,b\n1,2\n").is_err()); // no outputs
        assert!(Dataset::from_csv_string("a,y*\n1\n").is_err()); // short row
        assert!(Dataset::from_csv_string("a,y*\n1,zzz\n").is_err()); // bad float
        assert!(Dataset::from_csv_string("y*,a\n1,2\n").is_err()); // input after output
    }

    #[test]
    fn csv_skips_blank_lines() {
        let ds = Dataset::from_csv_string("a,y*\n1,2\n\n3,4\n").unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn csv_file_roundtrip() {
        let ds = tiny();
        let dir = std::env::temp_dir().join("wlc-data-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.csv");
        ds.save_csv(&path).unwrap();
        let back = Dataset::load_csv(&path).unwrap();
        assert_eq!(back, ds);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Dataset::load_csv("/nonexistent/definitely/missing.csv");
        assert!(matches!(err, Err(DataError::Io(_))));
    }

    #[test]
    fn display_mentions_columns() {
        let ds = tiny();
        let s = ds.to_string();
        assert!(s.contains("2 samples"));
        assert!(s.contains("a/b"));
    }

    #[test]
    fn extend_and_iter() {
        let mut ds = tiny();
        ds.extend(vec![
            Sample::new(vec![9.0, 9.0], vec![9.0, 9.0]),
            Sample::new(vec![1.0], vec![1.0]), // wrong width: skipped
        ]);
        assert_eq!(ds.len(), 3);
        let count = (&ds).into_iter().count();
        assert_eq!(count, 3);
        assert_eq!(ds.iter().count(), 3);
    }

    #[test]
    fn merge_appends_matching_datasets() {
        let mut a = tiny();
        let b = tiny();
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.samples()[2], b.samples()[0]);
    }

    #[test]
    fn merge_rejects_mismatched_columns() {
        let mut a = tiny();
        let b = Dataset::new(vec!["z".into()], vec!["y".into()]).unwrap();
        assert!(a.merge(&b).is_err());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn column_summaries_cover_all_columns() {
        let ds = tiny();
        let summaries = ds.column_summaries();
        assert_eq!(summaries.len(), 4);
        // First input column "a": values 1 and 5.
        let a = &summaries[0];
        assert_eq!(a.name, "a");
        assert!(a.is_input);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 5.0);
        assert_eq!(a.mean, 3.0);
        assert!((a.std_dev - 2.0).abs() < 1e-12);
        // Last output column "y2" is marked as output.
        assert!(!summaries[3].is_input);
    }

    #[test]
    fn column_summaries_empty_dataset() {
        let ds = Dataset::new(vec!["x".into()], vec!["y".into()]).unwrap();
        assert!(ds.column_summaries().is_empty());
    }

    #[test]
    fn sample_into_parts() {
        let s = Sample::new(vec![1.0], vec![2.0]);
        let (x, y) = s.into_parts();
        assert_eq!(x, vec![1.0]);
        assert_eq!(y, vec![2.0]);
    }

    #[test]
    fn empty_dataset_matrices() {
        let ds = Dataset::new(vec!["x".into()], vec!["y".into()]).unwrap();
        assert!(ds.is_empty());
        let (xs, ys) = ds.to_matrices();
        assert_eq!(xs.rows(), 0);
        assert_eq!(ys.rows(), 0);
    }
}
