//! Configuration-space experiment designs.
//!
//! The prior work the paper compares against (Chow et al.) trains linear
//! models "in the Design of Experiments (DOE) approach" with carefully
//! designed measurement points; the paper's own method "can readily
//! construct a model from a rough mixture of data points" (§6). This
//! module provides both styles of sampling plan:
//!
//! - [`full_factorial`] — every combination of per-parameter levels (the
//!   classical DOE grid).
//! - [`random_design`] — uniform random points (a "rough mixture").
//! - [`latin_hypercube`] — space-filling random design.

use wlc_math::rng::{Seed, Xoshiro256};

use crate::DataError;

/// An inclusive numeric range for one configuration parameter.
///
/// # Examples
///
/// ```
/// use wlc_data::design::ParamRange;
/// let r = ParamRange::new(0.0, 20.0)?;
/// assert_eq!(r.width(), 20.0);
/// # Ok::<(), wlc_data::DataError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamRange {
    low: f64,
    high: f64,
}

impl ParamRange {
    /// Creates a range `[low, high]`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] unless `low <= high` and
    /// both are finite.
    pub fn new(low: f64, high: f64) -> Result<Self, DataError> {
        if !(low.is_finite() && high.is_finite() && low <= high) {
            return Err(DataError::InvalidParameter {
                name: "low/high",
                reason: "must be finite with low <= high",
            });
        }
        Ok(ParamRange { low, high })
    }

    /// Lower bound.
    pub fn low(self) -> f64 {
        self.low
    }

    /// Upper bound.
    pub fn high(self) -> f64 {
        self.high
    }

    /// `high − low`.
    pub fn width(self) -> f64 {
        self.high - self.low
    }

    /// Linear interpolation at `t ∈ [0, 1]`.
    pub fn lerp(self, t: f64) -> f64 {
        self.low + self.width() * t
    }

    /// `n` evenly spaced levels across the range (inclusive of both ends).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if `n == 0`.
    pub fn levels(self, n: usize) -> Result<Vec<f64>, DataError> {
        if n == 0 {
            return Err(DataError::InvalidParameter {
                name: "n",
                reason: "must be at least 1",
            });
        }
        if n == 1 {
            return Ok(vec![(self.low + self.high) / 2.0]);
        }
        Ok((0..n)
            .map(|i| self.lerp(i as f64 / (n - 1) as f64))
            .collect())
    }
}

/// Full-factorial design: the Cartesian product of per-parameter levels.
///
/// # Errors
///
/// Returns [`DataError::Empty`] if `levels` is empty or any parameter has
/// no levels.
///
/// # Examples
///
/// ```
/// use wlc_data::design::full_factorial;
///
/// let points = full_factorial(&[vec![1.0, 2.0], vec![10.0, 20.0, 30.0]])?;
/// assert_eq!(points.len(), 6);
/// assert_eq!(points[0], vec![1.0, 10.0]);
/// assert_eq!(points[5], vec![2.0, 30.0]);
/// # Ok::<(), wlc_data::DataError>(())
/// ```
pub fn full_factorial(levels: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, DataError> {
    if levels.is_empty() || levels.iter().any(Vec::is_empty) {
        return Err(DataError::Empty);
    }
    let total: usize = levels.iter().map(Vec::len).product();
    let mut out = Vec::with_capacity(total);
    let mut counters = vec![0usize; levels.len()];
    for _ in 0..total {
        out.push(
            counters
                .iter()
                .zip(levels.iter())
                .map(|(&i, l)| l[i])
                .collect(),
        );
        // Odometer increment, last dimension fastest.
        for d in (0..levels.len()).rev() {
            counters[d] += 1;
            if counters[d] < levels[d].len() {
                break;
            }
            counters[d] = 0;
        }
    }
    Ok(out)
}

/// Uniform random design: `n` points drawn independently per dimension.
///
/// # Errors
///
/// Returns [`DataError::Empty`] if `ranges` is empty and
/// [`DataError::InvalidParameter`] if `n == 0`.
pub fn random_design(
    ranges: &[ParamRange],
    n: usize,
    seed: Seed,
) -> Result<Vec<Vec<f64>>, DataError> {
    if ranges.is_empty() {
        return Err(DataError::Empty);
    }
    if n == 0 {
        return Err(DataError::InvalidParameter {
            name: "n",
            reason: "must be at least 1",
        });
    }
    let mut rng = Xoshiro256::from_seed(seed);
    Ok((0..n)
        .map(|_| ranges.iter().map(|r| r.lerp(rng.next_f64())).collect())
        .collect())
}

/// Latin-hypercube design: `n` points such that each dimension's range is
/// divided into `n` strata each containing exactly one point.
///
/// # Errors
///
/// Returns [`DataError::Empty`] if `ranges` is empty and
/// [`DataError::InvalidParameter`] if `n == 0`.
pub fn latin_hypercube(
    ranges: &[ParamRange],
    n: usize,
    seed: Seed,
) -> Result<Vec<Vec<f64>>, DataError> {
    if ranges.is_empty() {
        return Err(DataError::Empty);
    }
    if n == 0 {
        return Err(DataError::InvalidParameter {
            name: "n",
            reason: "must be at least 1",
        });
    }
    let mut rng = Xoshiro256::from_seed(seed);
    // For each dimension: a random permutation of strata, plus jitter.
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(ranges.len());
    for range in ranges {
        let perm = rng.permutation(n);
        let col: Vec<f64> = perm
            .into_iter()
            .map(|stratum| {
                let t = (stratum as f64 + rng.next_f64()) / n as f64;
                range.lerp(t)
            })
            .collect();
        columns.push(col);
    }
    Ok((0..n)
        .map(|i| columns.iter().map(|c| c[i]).collect())
        .collect())
}

/// Rounds every coordinate of every point to the nearest integer — useful
/// when parameters are inherently discrete (thread counts).
pub fn round_to_integers(points: &mut [Vec<f64>]) {
    for p in points {
        for v in p {
            *v = v.round();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_range_validates() {
        assert!(ParamRange::new(5.0, 1.0).is_err());
        assert!(ParamRange::new(f64::NAN, 1.0).is_err());
        assert!(ParamRange::new(1.0, 1.0).is_ok());
    }

    #[test]
    fn levels_even_spacing() {
        let r = ParamRange::new(0.0, 10.0).unwrap();
        assert_eq!(r.levels(3).unwrap(), vec![0.0, 5.0, 10.0]);
        assert_eq!(r.levels(1).unwrap(), vec![5.0]);
        assert!(r.levels(0).is_err());
    }

    #[test]
    fn lerp_endpoints() {
        let r = ParamRange::new(2.0, 6.0).unwrap();
        assert_eq!(r.lerp(0.0), 2.0);
        assert_eq!(r.lerp(1.0), 6.0);
        assert_eq!(r.lerp(0.5), 4.0);
    }

    #[test]
    fn full_factorial_counts_and_order() {
        let pts = full_factorial(&[vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0]]).unwrap();
        assert_eq!(pts.len(), 8);
        // All distinct.
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert_ne!(pts[i], pts[j]);
            }
        }
        // Last dimension varies fastest.
        assert_eq!(pts[0], vec![0.0, 0.0, 0.0]);
        assert_eq!(pts[1], vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn full_factorial_rejects_empty() {
        assert!(full_factorial(&[]).is_err());
        assert!(full_factorial(&[vec![1.0], vec![]]).is_err());
    }

    #[test]
    fn random_design_within_ranges() {
        let ranges = [
            ParamRange::new(0.0, 1.0).unwrap(),
            ParamRange::new(100.0, 200.0).unwrap(),
        ];
        let pts = random_design(&ranges, 50, Seed::new(1)).unwrap();
        assert_eq!(pts.len(), 50);
        for p in &pts {
            assert!((0.0..=1.0).contains(&p[0]));
            assert!((100.0..=200.0).contains(&p[1]));
        }
    }

    #[test]
    fn random_design_deterministic() {
        let ranges = [ParamRange::new(0.0, 1.0).unwrap()];
        let a = random_design(&ranges, 5, Seed::new(2)).unwrap();
        let b = random_design(&ranges, 5, Seed::new(2)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn latin_hypercube_stratification() {
        let n = 10;
        let ranges = [
            ParamRange::new(0.0, 1.0).unwrap(),
            ParamRange::new(0.0, 1.0).unwrap(),
        ];
        let pts = latin_hypercube(&ranges, n, Seed::new(3)).unwrap();
        assert_eq!(pts.len(), n);
        // Each dimension: exactly one point per stratum [i/n, (i+1)/n).
        for d in 0..2 {
            let mut strata = vec![0usize; n];
            for p in &pts {
                let s = ((p[d] * n as f64).floor() as usize).min(n - 1);
                strata[s] += 1;
            }
            assert!(strata.iter().all(|&c| c == 1), "dim {d}: {strata:?}");
        }
    }

    #[test]
    fn designs_reject_bad_input() {
        let ranges = [ParamRange::new(0.0, 1.0).unwrap()];
        assert!(random_design(&[], 5, Seed::new(1)).is_err());
        assert!(random_design(&ranges, 0, Seed::new(1)).is_err());
        assert!(latin_hypercube(&[], 5, Seed::new(1)).is_err());
        assert!(latin_hypercube(&ranges, 0, Seed::new(1)).is_err());
    }

    #[test]
    fn round_to_integers_rounds() {
        let mut pts = vec![vec![1.4, 2.6], vec![3.5, -1.2]];
        round_to_integers(&mut pts);
        assert_eq!(pts[0], vec![1.0, 3.0]);
        assert_eq!(pts[1], vec![4.0, -1.0]);
    }
}
