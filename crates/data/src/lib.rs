//! Datasets, preprocessing, validation splits, error metrics and
//! experiment designs for workload characterization.
//!
//! This crate owns the paper's data pipeline (§3.1, §3.3):
//!
//! - [`Dataset`] — collections of `(X, Y)` samples with named columns,
//!   plus CSV import/export.
//! - [`Scaler`] — feature **standardization** (zero mean, unit variance),
//!   which §3.1 identifies as "crucial to avoid the possibility of MLPs
//!   ending up in a local minimum".
//! - [`KFold`] — the k-fold cross-validation protocol of §3.3.
//! - [`metrics`] — the harmonic-mean relative-error metric and friends.
//! - [`design`] — configuration-space experiment designs (full factorial,
//!   random, Latin hypercube).
//!
//! # Examples
//!
//! ```
//! use wlc_data::{Dataset, Sample, Scaler};
//!
//! let mut ds = Dataset::new(vec!["x".into()], vec!["y".into()]).unwrap();
//! ds.push(Sample::new(vec![1.0], vec![2.0])).unwrap();
//! ds.push(Sample::new(vec![3.0], vec![6.0])).unwrap();
//!
//! let (xs, _ys) = ds.to_matrices();
//! let scaler = Scaler::standard_fit(&xs).unwrap();
//! let scaled = scaler.transform(&xs).unwrap();
//! // Standardized: mean 0, stdev 1.
//! assert!((scaled.get(0, 0) + 1.0).abs() < 1e-12);
//! assert!((scaled.get(1, 0) - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
pub mod design;
mod error;
pub mod metrics;
mod scale;
mod split;
mod validate;

pub use dataset::{ColumnSummary, Dataset, Sample};
pub use error::DataError;
pub use scale::Scaler;
pub use split::{train_test_split, KFold};
pub use validate::{RowIssue, ValidateMode, ValidationReport};
