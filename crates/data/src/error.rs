use std::error::Error;
use std::fmt;

use wlc_math::MathError;

/// Error type for dataset handling, scaling, splitting and metrics.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// The dataset (or an input slice) was empty where data is required.
    Empty,
    /// A sample or row had the wrong width.
    WidthMismatch {
        /// Expected width.
        expected: usize,
        /// Actual width.
        actual: usize,
        /// What was being measured (e.g. `"inputs"`).
        what: &'static str,
    },
    /// Two paired collections differ in length.
    LengthMismatch {
        /// Length of the first collection.
        left: usize,
        /// Length of the second collection.
        right: usize,
        /// The operation involved.
        op: &'static str,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint that was violated.
        reason: &'static str,
    },
    /// CSV parsing failed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A row failed strict input validation (see
    /// [`crate::ValidateMode::Strict`]).
    Validation {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// File I/O failed.
    Io(std::io::Error),
    /// An underlying math operation failed.
    Math(MathError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Empty => write!(f, "dataset must not be empty"),
            DataError::WidthMismatch {
                expected,
                actual,
                what,
            } => write!(
                f,
                "{what} width mismatch: expected {expected}, got {actual}"
            ),
            DataError::LengthMismatch { left, right, op } => {
                write!(f, "length mismatch in {op}: {left} vs {right}")
            }
            DataError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DataError::Csv { line, reason } => write!(f, "csv error at line {line}: {reason}"),
            DataError::Validation { line, reason } => {
                write!(f, "validation error at line {line}: {reason}")
            }
            DataError::Io(e) => write!(f, "io error: {e}"),
            DataError::Math(e) => write!(f, "math error: {e}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<MathError> for DataError {
    fn from(e: MathError) -> Self {
        DataError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = DataError::WidthMismatch {
            expected: 4,
            actual: 2,
            what: "inputs",
        };
        assert!(e.to_string().contains("expected 4, got 2"));
        assert!(DataError::Empty.to_string().contains("empty"));
        let c = DataError::Csv {
            line: 3,
            reason: "bad float".into(),
        };
        assert!(c.to_string().contains("line 3"));
    }

    #[test]
    fn sources_wired() {
        let io: DataError = std::io::Error::new(std::io::ErrorKind::NotFound, "x").into();
        assert!(Error::source(&io).is_some());
        let math: DataError = MathError::Singular.into();
        assert!(Error::source(&math).is_some());
        assert!(Error::source(&DataError::Empty).is_none());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<DataError>();
    }
}
