//! Prediction-error metrics.
//!
//! The paper's validation metric (§3.3) is the **harmonic mean of
//! (absolute error) / (actual value)** over the validation samples —
//! implemented here as [`harmonic_mean_relative_error`] — reported per
//! performance indicator (Table 2). The arithmetic-mean variant
//! ([`mape`]) and the usual RMSE/MAE are provided for comparison.

use wlc_math::stats;
use wlc_math::Matrix;

use crate::DataError;

/// Per-sample relative errors `|predicted − actual| / |actual|`.
///
/// Samples whose actual value is zero are skipped (their relative error is
/// undefined); if every sample is skipped the result is empty.
///
/// # Errors
///
/// Returns [`DataError::LengthMismatch`] for unequal lengths.
pub fn relative_errors(actual: &[f64], predicted: &[f64]) -> Result<Vec<f64>, DataError> {
    check_lengths(actual, predicted, "relative_errors")?;
    Ok(actual
        .iter()
        .zip(predicted.iter())
        .filter(|(&a, _)| a != 0.0)
        .map(|(&a, &p)| (p - a).abs() / a.abs())
        .collect())
}

/// The paper's error metric: harmonic mean of per-sample relative errors.
///
/// Exact-hit samples (zero relative error) have no harmonic-mean
/// contribution — their reciprocal is infinite — so they are skipped,
/// exactly like samples whose actual value is zero. (An earlier revision
/// floored them at `1e-12` instead, which is worse than degenerate: one
/// exact hit contributed a `1e12` reciprocal and collapsed the whole
/// metric to ~0, making any model with a single memorized sample look
/// perfect.) If *every* usable sample is an exact hit the error is
/// genuinely zero and `Ok(0.0)` is returned.
///
/// # Errors
///
/// - [`DataError::LengthMismatch`] for unequal lengths.
/// - [`DataError::Empty`] if no sample has a non-zero actual value.
///
/// # Examples
///
/// ```
/// use wlc_data::metrics::harmonic_mean_relative_error;
///
/// let actual = [10.0, 10.0];
/// let predicted = [11.0, 12.0]; // 10% and 20% error
/// let hm = harmonic_mean_relative_error(&actual, &predicted)?;
/// assert!((hm - 2.0 / (10.0 + 5.0)).abs() < 1e-12); // 2/(1/0.1 + 1/0.2)
/// # Ok::<(), wlc_data::DataError>(())
/// ```
pub fn harmonic_mean_relative_error(actual: &[f64], predicted: &[f64]) -> Result<f64, DataError> {
    let all = relative_errors(actual, predicted)?;
    if all.is_empty() {
        return Err(DataError::Empty);
    }
    let errors: Vec<f64> = all.into_iter().filter(|&e| e > 0.0).collect();
    if errors.is_empty() {
        return Ok(0.0);
    }
    Ok(stats::harmonic_mean(&errors)?)
}

/// Mean absolute percentage error (arithmetic mean of relative errors).
///
/// # Errors
///
/// - [`DataError::LengthMismatch`] for unequal lengths.
/// - [`DataError::Empty`] if no sample has a non-zero actual value.
pub fn mape(actual: &[f64], predicted: &[f64]) -> Result<f64, DataError> {
    let errors = relative_errors(actual, predicted)?;
    if errors.is_empty() {
        return Err(DataError::Empty);
    }
    Ok(stats::mean(&errors)?)
}

/// Root mean squared error.
///
/// # Errors
///
/// - [`DataError::LengthMismatch`] for unequal lengths.
/// - [`DataError::Empty`] for empty inputs.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> Result<f64, DataError> {
    check_lengths(actual, predicted, "rmse")?;
    if actual.is_empty() {
        return Err(DataError::Empty);
    }
    let mse = actual
        .iter()
        .zip(predicted.iter())
        .map(|(&a, &p)| (p - a).powi(2))
        .sum::<f64>()
        / actual.len() as f64;
    Ok(mse.sqrt())
}

/// Mean absolute error.
///
/// # Errors
///
/// - [`DataError::LengthMismatch`] for unequal lengths.
/// - [`DataError::Empty`] for empty inputs.
pub fn mae(actual: &[f64], predicted: &[f64]) -> Result<f64, DataError> {
    check_lengths(actual, predicted, "mae")?;
    if actual.is_empty() {
        return Err(DataError::Empty);
    }
    Ok(actual
        .iter()
        .zip(predicted.iter())
        .map(|(&a, &p)| (p - a).abs())
        .sum::<f64>()
        / actual.len() as f64)
}

/// Largest absolute error.
///
/// # Errors
///
/// - [`DataError::LengthMismatch`] for unequal lengths.
/// - [`DataError::Empty`] for empty inputs.
pub fn max_abs_error(actual: &[f64], predicted: &[f64]) -> Result<f64, DataError> {
    check_lengths(actual, predicted, "max_abs_error")?;
    if actual.is_empty() {
        return Err(DataError::Empty);
    }
    Ok(actual
        .iter()
        .zip(predicted.iter())
        .map(|(&a, &p)| (p - a).abs())
        .fold(0.0, f64::max))
}

/// Coefficient of determination R².
///
/// # Errors
///
/// - [`DataError::LengthMismatch`] for unequal lengths.
/// - [`DataError::Empty`] for empty inputs.
pub fn r_squared(actual: &[f64], predicted: &[f64]) -> Result<f64, DataError> {
    check_lengths(actual, predicted, "r_squared")?;
    if actual.is_empty() {
        return Err(DataError::Empty);
    }
    Ok(stats::r_squared(actual, predicted)?)
}

fn check_lengths(a: &[f64], b: &[f64], op: &'static str) -> Result<(), DataError> {
    if a.len() != b.len() {
        return Err(DataError::LengthMismatch {
            left: a.len(),
            right: b.len(),
            op,
        });
    }
    Ok(())
}

/// Per-output-column error summary for a batch of predictions — the shape
/// of the paper's Table 2 rows.
///
/// # Examples
///
/// ```
/// use wlc_data::metrics::ErrorReport;
/// use wlc_math::Matrix;
///
/// let actual = Matrix::from_rows(&[&[10.0, 1.0], &[20.0, 2.0]]).unwrap();
/// let predicted = Matrix::from_rows(&[&[11.0, 1.0], &[22.0, 2.0]]).unwrap();
/// let report = ErrorReport::compare(
///     &["resp".into(), "tput".into()],
///     &actual,
///     &predicted,
/// )?;
/// assert_eq!(report.outputs().len(), 2);
/// assert!((report.outputs()[0].harmonic_mean_error - 0.1).abs() < 1e-9);
/// # Ok::<(), wlc_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorReport {
    outputs: Vec<OutputError>,
}

/// Error summary for one output column.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct OutputError {
    /// The output column's name.
    pub name: String,
    /// Harmonic mean of relative errors (the paper's metric).
    pub harmonic_mean_error: f64,
    /// Arithmetic mean of relative errors (MAPE).
    pub mape: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Largest absolute error.
    pub max_abs_error: f64,
}

impl ErrorReport {
    /// Compares two matrices column by column.
    ///
    /// # Errors
    ///
    /// - [`DataError::LengthMismatch`] if shapes differ or `names.len()`
    ///   does not match the column count.
    /// - [`DataError::Empty`] for zero-row input or all-zero actual
    ///   columns.
    pub fn compare(
        names: &[String],
        actual: &Matrix,
        predicted: &Matrix,
    ) -> Result<Self, DataError> {
        if actual.shape() != predicted.shape() {
            return Err(DataError::LengthMismatch {
                left: actual.rows(),
                right: predicted.rows(),
                op: "ErrorReport::compare",
            });
        }
        if names.len() != actual.cols() {
            return Err(DataError::LengthMismatch {
                left: names.len(),
                right: actual.cols(),
                op: "ErrorReport::compare names",
            });
        }
        let mut outputs = Vec::with_capacity(names.len());
        for (c, name) in names.iter().enumerate() {
            let a = actual.col_to_vec(c);
            let p = predicted.col_to_vec(c);
            outputs.push(OutputError {
                name: name.clone(),
                harmonic_mean_error: harmonic_mean_relative_error(&a, &p)?,
                mape: mape(&a, &p)?,
                rmse: rmse(&a, &p)?,
                max_abs_error: max_abs_error(&a, &p)?,
            });
        }
        Ok(ErrorReport { outputs })
    }

    /// Per-output error summaries, in column order.
    pub fn outputs(&self) -> &[OutputError] {
        &self.outputs
    }

    /// Mean of the per-output harmonic-mean errors — the paper's "average
    /// prediction error" bottom line.
    pub fn overall_error(&self) -> f64 {
        if self.outputs.is_empty() {
            return 0.0;
        }
        self.outputs
            .iter()
            .map(|o| o.harmonic_mean_error)
            .sum::<f64>()
            / self.outputs.len() as f64
    }

    /// `1 − overall_error`, the paper's "average prediction accuracy".
    pub fn overall_accuracy(&self) -> f64 {
        1.0 - self.overall_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_errors_basic() {
        let e = relative_errors(&[10.0, 20.0], &[11.0, 18.0]).unwrap();
        assert!((e[0] - 0.1).abs() < 1e-12);
        assert!((e[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn relative_errors_skip_zero_actuals() {
        let e = relative_errors(&[0.0, 10.0], &[5.0, 11.0]).unwrap();
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn harmonic_vs_arithmetic_mean() {
        // Harmonic mean is dominated by the small errors.
        let actual = [100.0, 100.0];
        let predicted = [101.0, 150.0]; // 1% and 50%
        let hm = harmonic_mean_relative_error(&actual, &predicted).unwrap();
        let am = mape(&actual, &predicted).unwrap();
        assert!(hm < am);
        assert!((am - 0.255).abs() < 1e-12);
        let expected_hm = 2.0 / (1.0 / 0.01 + 1.0 / 0.5);
        assert!((hm - expected_hm).abs() < 1e-12);
    }

    #[test]
    fn harmonic_handles_exact_hits() {
        // An exact prediction is skipped: the remaining 20% error IS the
        // metric, not something diluted toward zero.
        let hm = harmonic_mean_relative_error(&[10.0, 10.0], &[10.0, 12.0]).unwrap();
        assert!((hm - 0.2).abs() < 1e-12);
    }

    #[test]
    fn harmonic_exact_hit_does_not_collapse_metric() {
        // Regression: the old 1e-12 floor made one exact hit contribute a
        // 1e12 reciprocal, dragging the metric to ~0 no matter how bad
        // the other predictions were.
        let actual = [10.0, 10.0, 10.0];
        let predicted = [10.0, 11.0, 12.0]; // exact, 10%, 20%
        let hm = harmonic_mean_relative_error(&actual, &predicted).unwrap();
        let expected = 2.0 / (1.0 / 0.1 + 1.0 / 0.2);
        assert!((hm - expected).abs() < 1e-12, "hm = {hm}");
        assert!(hm > 0.1, "metric collapsed: {hm}");
    }

    #[test]
    fn harmonic_all_exact_hits_is_zero() {
        let hm = harmonic_mean_relative_error(&[10.0, 20.0], &[10.0, 20.0]).unwrap();
        assert_eq!(hm, 0.0);
        // But no usable sample at all is still an error.
        assert!(harmonic_mean_relative_error(&[0.0], &[0.0]).is_err());
    }

    #[test]
    fn rmse_and_mae_known() {
        let a = [0.0, 0.0];
        let p = [3.0, 4.0];
        assert!((rmse(&a, &p).unwrap() - (12.5_f64).sqrt()).abs() < 1e-12);
        assert!((mae(&a, &p).unwrap() - 3.5).abs() < 1e-12);
        assert_eq!(max_abs_error(&a, &p).unwrap(), 4.0);
    }

    #[test]
    fn r_squared_wired_through() {
        let a = [1.0, 2.0, 3.0];
        assert!((r_squared(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_metrics() {
        let a = [5.0, 6.0];
        assert_eq!(rmse(&a, &a).unwrap(), 0.0);
        assert_eq!(mae(&a, &a).unwrap(), 0.0);
        assert_eq!(max_abs_error(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(relative_errors(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mape(&[0.0], &[1.0]).is_err()); // all actuals zero
        assert!(rmse(&[], &[]).is_err());
        assert!(mae(&[], &[]).is_err());
        assert!(max_abs_error(&[], &[]).is_err());
        assert!(harmonic_mean_relative_error(&[0.0], &[1.0]).is_err());
    }

    #[test]
    fn error_report_per_column() {
        let actual = Matrix::from_rows(&[&[10.0, 100.0], &[20.0, 100.0]]).unwrap();
        let predicted = Matrix::from_rows(&[&[12.0, 101.0], &[24.0, 99.0]]).unwrap();
        let report =
            ErrorReport::compare(&["rt".into(), "tput".into()], &actual, &predicted).unwrap();
        assert_eq!(report.outputs().len(), 2);
        // First column: 20% everywhere.
        assert!((report.outputs()[0].harmonic_mean_error - 0.2).abs() < 1e-9);
        // Second column: 1% everywhere.
        assert!((report.outputs()[1].harmonic_mean_error - 0.01).abs() < 1e-9);
        // Overall = mean(0.2, 0.01).
        assert!((report.overall_error() - 0.105).abs() < 1e-9);
        assert!((report.overall_accuracy() - 0.895).abs() < 1e-9);
    }

    #[test]
    fn error_report_validates_shapes() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 2);
        assert!(ErrorReport::compare(&["a".into(), "b".into()], &a, &b).is_err());
        let sq = Matrix::filled(2, 2, 1.0);
        assert!(ErrorReport::compare(&["only_one".into()], &sq, &sq).is_err());
    }
}
