use wlc_math::Matrix;

use crate::DataError;

/// A fitted, invertible per-column feature scaler.
///
/// The paper's §3.1 mandates **standardization** — "subtracting the mean
/// and then dividing it by the standard deviation of a feature" — for
/// every configuration parameter, because the back-propagation method is
/// gradient-based and unscaled features push the random initial
/// hyperplanes away from the sample cloud, stranding training in local
/// minima. [`Scaler::standard_fit`] implements exactly that;
/// [`Scaler::min_max_fit`] and [`Scaler::identity`] exist for ablations.
///
/// # Examples
///
/// ```
/// use wlc_data::Scaler;
/// use wlc_math::Matrix;
///
/// let xs = Matrix::from_rows(&[&[10.0], &[20.0], &[30.0]]).unwrap();
/// let scaler = Scaler::standard_fit(&xs)?;
/// let t = scaler.transform(&xs)?;
/// // mean 0 ...
/// assert!((t.col_to_vec(0).iter().sum::<f64>()).abs() < 1e-12);
/// // ... and invertible.
/// let back = scaler.inverse_transform(&t)?;
/// assert!((back.get(2, 0) - 30.0).abs() < 1e-9);
/// # Ok::<(), wlc_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Scaler {
    /// Z-score standardization: `(x − mean) / std` per column.
    Standard {
        /// Per-column means.
        means: Vec<f64>,
        /// Per-column standard deviations (1.0 substituted for constant
        /// columns so the transform stays invertible).
        stds: Vec<f64>,
    },
    /// Min-max scaling to `[0, 1]` per column.
    MinMax {
        /// Per-column minima.
        mins: Vec<f64>,
        /// Per-column ranges (1.0 substituted for constant columns).
        ranges: Vec<f64>,
    },
    /// No-op scaler (for ablation baselines).
    Identity {
        /// Number of columns accepted.
        cols: usize,
    },
}

impl Scaler {
    /// Fits a standardization scaler to the columns of `data`.
    ///
    /// Constant columns get a standard deviation of 1.0 (so they transform
    /// to zero and invert exactly).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] if `data` has no rows or no columns.
    pub fn standard_fit(data: &Matrix) -> Result<Self, DataError> {
        check_nonempty(data)?;
        let n = data.rows() as f64;
        let mut means = Vec::with_capacity(data.cols());
        let mut stds = Vec::with_capacity(data.cols());
        for c in 0..data.cols() {
            let col = data.col_to_vec(c);
            let mean = col.iter().sum::<f64>() / n;
            let var = col.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            let std = var.sqrt();
            means.push(mean);
            stds.push(if std > 0.0 { std } else { 1.0 });
        }
        Ok(Scaler::Standard { means, stds })
    }

    /// Fits a min-max scaler to the columns of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] if `data` has no rows or no columns.
    pub fn min_max_fit(data: &Matrix) -> Result<Self, DataError> {
        check_nonempty(data)?;
        let mut mins = Vec::with_capacity(data.cols());
        let mut ranges = Vec::with_capacity(data.cols());
        for c in 0..data.cols() {
            let col = data.col_to_vec(c);
            let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let range = hi - lo;
            mins.push(lo);
            ranges.push(if range > 0.0 { range } else { 1.0 });
        }
        Ok(Scaler::MinMax { mins, ranges })
    }

    /// Creates a no-op scaler for `cols` columns.
    pub fn identity(cols: usize) -> Self {
        Scaler::Identity { cols }
    }

    /// Number of columns this scaler accepts.
    pub fn cols(&self) -> usize {
        match self {
            Scaler::Standard { means, .. } => means.len(),
            Scaler::MinMax { mins, .. } => mins.len(),
            Scaler::Identity { cols } => *cols,
        }
    }

    /// Transforms one row in place.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::WidthMismatch`] if `row.len() != self.cols()`.
    pub fn transform_row(&self, row: &mut [f64]) -> Result<(), DataError> {
        self.check_width(row.len())?;
        match self {
            Scaler::Standard { means, stds } => {
                for ((v, m), s) in row.iter_mut().zip(means).zip(stds) {
                    *v = (*v - m) / s;
                }
            }
            Scaler::MinMax { mins, ranges } => {
                for ((v, lo), r) in row.iter_mut().zip(mins).zip(ranges) {
                    *v = (*v - lo) / r;
                }
            }
            Scaler::Identity { .. } => {}
        }
        Ok(())
    }

    /// Inverse-transforms one row in place.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::WidthMismatch`] if `row.len() != self.cols()`.
    pub fn inverse_row(&self, row: &mut [f64]) -> Result<(), DataError> {
        self.check_width(row.len())?;
        match self {
            Scaler::Standard { means, stds } => {
                for ((v, m), s) in row.iter_mut().zip(means).zip(stds) {
                    *v = *v * s + m;
                }
            }
            Scaler::MinMax { mins, ranges } => {
                for ((v, lo), r) in row.iter_mut().zip(mins).zip(ranges) {
                    *v = *v * r + lo;
                }
            }
            Scaler::Identity { .. } => {}
        }
        Ok(())
    }

    /// Returns a transformed copy of a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::WidthMismatch`] if `data.cols() != self.cols()`.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix, DataError> {
        let mut out = data.clone();
        for r in 0..out.rows() {
            self.transform_row(out.row_mut(r))?;
        }
        Ok(out)
    }

    /// Returns an inverse-transformed copy of a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::WidthMismatch`] if `data.cols() != self.cols()`.
    pub fn inverse_transform(&self, data: &Matrix) -> Result<Matrix, DataError> {
        let mut out = data.clone();
        for r in 0..out.rows() {
            self.inverse_row(out.row_mut(r))?;
        }
        Ok(out)
    }

    /// Validates a scaler before it is allowed near live predictions —
    /// run by a server's model-reload path: every parameter must be
    /// finite and every divisor (standard deviation / range) non-zero,
    /// so a transform of finite input can never manufacture NaN through
    /// the scaler itself.
    ///
    /// Fitted scalers always satisfy this; scalers *parsed from a file*
    /// ([`Scaler::from_text`]) may not.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Validation`] (line 0) naming the offending
    /// column.
    pub fn validate(&self) -> Result<(), DataError> {
        let bad = |reason: String| DataError::Validation { line: 0, reason };
        let check = |values: &[f64], name: &str, divisor: bool| -> Result<(), DataError> {
            for (col, &v) in values.iter().enumerate() {
                if !v.is_finite() {
                    return Err(bad(format!("scaler {name} for column {col} is not finite")));
                }
                if divisor && v == 0.0 {
                    return Err(bad(format!("scaler {name} for column {col} is zero")));
                }
            }
            Ok(())
        };
        match self {
            Scaler::Standard { means, stds } => {
                check(means, "mean", false)?;
                check(stds, "standard deviation", true)
            }
            Scaler::MinMax { mins, ranges } => {
                check(mins, "minimum", false)?;
                check(ranges, "range", true)
            }
            Scaler::Identity { .. } => Ok(()),
        }
    }

    fn check_width(&self, width: usize) -> Result<(), DataError> {
        if width != self.cols() {
            return Err(DataError::WidthMismatch {
                expected: self.cols(),
                actual: width,
                what: "scaler columns",
            });
        }
        Ok(())
    }

    /// Serializes the scaler to a single text line (used by model
    /// save/load).
    pub fn to_text(&self) -> String {
        fn join(v: &[f64]) -> String {
            v.iter()
                .map(|x| format!("{x:?}"))
                .collect::<Vec<_>>()
                .join(" ")
        }
        match self {
            Scaler::Standard { means, stds } => {
                format!("standard {} | {}", join(means), join(stds))
            }
            Scaler::MinMax { mins, ranges } => {
                format!("minmax {} | {}", join(mins), join(ranges))
            }
            Scaler::Identity { cols } => format!("identity {cols}"),
        }
    }

    /// Parses the format produced by [`Scaler::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Csv`] (with line 0) on malformed input.
    pub fn from_text(text: &str) -> Result<Self, DataError> {
        let bad = |reason: &str| DataError::Csv {
            line: 0,
            reason: reason.to_string(),
        };
        let text = text.trim();
        if let Some(rest) = text.strip_prefix("identity ") {
            let cols = rest.trim().parse().map_err(|_| bad("bad column count"))?;
            return Ok(Scaler::Identity { cols });
        }
        let (kind, rest) = text.split_once(' ').ok_or_else(|| bad("missing payload"))?;
        let (a, b) = rest.split_once('|').ok_or_else(|| bad("missing `|`"))?;
        let parse_vec = |s: &str| -> Result<Vec<f64>, DataError> {
            s.split_whitespace()
                .map(|t| t.parse::<f64>().map_err(|_| bad("bad float")))
                .collect()
        };
        let first = parse_vec(a)?;
        let second = parse_vec(b)?;
        if first.len() != second.len() || first.is_empty() {
            return Err(bad("vector lengths differ or empty"));
        }
        match kind {
            "standard" => Ok(Scaler::Standard {
                means: first,
                stds: second,
            }),
            "minmax" => Ok(Scaler::MinMax {
                mins: first,
                ranges: second,
            }),
            _ => Err(bad("unknown scaler kind")),
        }
    }
}

fn check_nonempty(data: &Matrix) -> Result<(), DataError> {
    if data.rows() == 0 || data.cols() == 0 {
        return Err(DataError::Empty);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 100.0], &[2.0, 200.0], &[3.0, 300.0], &[4.0, 400.0]]).unwrap()
    }

    #[test]
    fn standard_gives_zero_mean_unit_std() {
        let data = sample();
        let scaler = Scaler::standard_fit(&data).unwrap();
        let t = scaler.transform(&data).unwrap();
        for c in 0..2 {
            let col = t.col_to_vec(c);
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let var = col.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-12, "col {c} var {var}");
        }
    }

    #[test]
    fn standard_inverse_roundtrip() {
        let data = sample();
        let scaler = Scaler::standard_fit(&data).unwrap();
        let back = scaler
            .inverse_transform(&scaler.transform(&data).unwrap())
            .unwrap();
        for r in 0..data.rows() {
            for c in 0..data.cols() {
                assert!((back.get(r, c) - data.get(r, c)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn standard_handles_constant_column() {
        let data = Matrix::from_rows(&[&[5.0, 1.0], &[5.0, 2.0]]).unwrap();
        let scaler = Scaler::standard_fit(&data).unwrap();
        let t = scaler.transform(&data).unwrap();
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(1, 0), 0.0);
        let back = scaler.inverse_transform(&t).unwrap();
        assert_eq!(back.get(0, 0), 5.0);
    }

    #[test]
    fn min_max_maps_to_unit_interval() {
        let data = sample();
        let scaler = Scaler::min_max_fit(&data).unwrap();
        let t = scaler.transform(&data).unwrap();
        for c in 0..2 {
            let col = t.col_to_vec(c);
            assert_eq!(col.iter().copied().fold(f64::INFINITY, f64::min), 0.0);
            assert_eq!(col.iter().copied().fold(f64::NEG_INFINITY, f64::max), 1.0);
        }
    }

    #[test]
    fn min_max_inverse_roundtrip() {
        let data = sample();
        let scaler = Scaler::min_max_fit(&data).unwrap();
        let back = scaler
            .inverse_transform(&scaler.transform(&data).unwrap())
            .unwrap();
        assert!((back.get(3, 1) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn identity_is_noop() {
        let data = sample();
        let scaler = Scaler::identity(2);
        assert_eq!(scaler.transform(&data).unwrap(), data);
        assert_eq!(scaler.inverse_transform(&data).unwrap(), data);
    }

    #[test]
    fn width_checked() {
        let scaler = Scaler::standard_fit(&sample()).unwrap();
        let wrong = Matrix::zeros(1, 3);
        assert!(scaler.transform(&wrong).is_err());
        let mut row = [0.0; 3];
        assert!(scaler.transform_row(&mut row).is_err());
        assert!(scaler.inverse_row(&mut row).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(Scaler::standard_fit(&Matrix::zeros(0, 2)).is_err());
        assert!(Scaler::min_max_fit(&Matrix::zeros(2, 0)).is_err());
    }

    #[test]
    fn cols_reported() {
        assert_eq!(Scaler::standard_fit(&sample()).unwrap().cols(), 2);
        assert_eq!(Scaler::identity(7).cols(), 7);
    }

    #[test]
    fn text_roundtrip_all_variants() {
        let scalers = [
            Scaler::standard_fit(&sample()).unwrap(),
            Scaler::min_max_fit(&sample()).unwrap(),
            Scaler::identity(3),
        ];
        for s in scalers {
            let text = s.to_text();
            let back = Scaler::from_text(&text).unwrap();
            assert_eq!(back, s, "roundtrip of `{text}`");
        }
    }

    #[test]
    fn text_rejects_malformed() {
        assert!(Scaler::from_text("standard 1.0 2.0").is_err()); // missing |
        assert!(Scaler::from_text("mystery 1 | 2").is_err());
        assert!(Scaler::from_text("standard 1.0 | 1.0 2.0").is_err()); // lengths
        assert!(Scaler::from_text("identity abc").is_err());
        assert!(Scaler::from_text("standard x | y").is_err());
    }

    #[test]
    fn validate_accepts_fitted_rejects_degenerate() {
        assert!(Scaler::standard_fit(&sample()).unwrap().validate().is_ok());
        assert!(Scaler::min_max_fit(&sample()).unwrap().validate().is_ok());
        assert!(Scaler::identity(4).validate().is_ok());
        // A zero std (only reachable via from_text) would divide to inf.
        let zero_std = Scaler::from_text("standard 1.0 | 0.0").unwrap();
        let err = zero_std.validate().unwrap_err();
        assert!(err.to_string().contains("zero"), "{err}");
        // Non-finite parameters are rejected too.
        let inf_mean = Scaler::from_text("standard inf | 1.0").unwrap();
        assert!(inf_mean.validate().is_err());
        let nan_range = Scaler::from_text("minmax 0.0 | NaN").unwrap();
        assert!(nan_range.validate().is_err());
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let data = sample();
        let scaler = Scaler::standard_fit(&data).unwrap();
        let t = scaler.transform(&data).unwrap();
        let mut row = data.row(2).to_vec();
        scaler.transform_row(&mut row).unwrap();
        assert_eq!(row.as_slice(), t.row(2));
    }
}
