use wlc_math::rng::{Seed, Xoshiro256};

use crate::DataError;

/// Splits `0..n` into shuffled train/test index sets.
///
/// `test_fraction` of the samples (rounded down, but at least one when
/// `0 < test_fraction < 1`) go to the test set.
///
/// # Errors
///
/// - [`DataError::Empty`] if `n == 0`.
/// - [`DataError::InvalidParameter`] unless `0 <= test_fraction < 1`.
///
/// # Examples
///
/// ```
/// use wlc_data::train_test_split;
/// use wlc_math::rng::Seed;
///
/// let (train, test) = train_test_split(10, 0.2, Seed::new(1))?;
/// assert_eq!(train.len(), 8);
/// assert_eq!(test.len(), 2);
/// # Ok::<(), wlc_data::DataError>(())
/// ```
pub fn train_test_split(
    n: usize,
    test_fraction: f64,
    seed: Seed,
) -> Result<(Vec<usize>, Vec<usize>), DataError> {
    if n == 0 {
        return Err(DataError::Empty);
    }
    if !(test_fraction.is_finite() && (0.0..1.0).contains(&test_fraction)) {
        return Err(DataError::InvalidParameter {
            name: "test_fraction",
            reason: "must be in [0, 1)",
        });
    }
    let mut rng = Xoshiro256::from_seed(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    let mut test_len = (n as f64 * test_fraction).floor() as usize;
    if test_fraction > 0.0 && test_len == 0 {
        test_len = 1;
    }
    if test_len >= n {
        test_len = n - 1;
    }
    let test = idx.split_off(n - test_len);
    Ok((idx, test))
}

/// K-fold cross-validation index generator (paper §3.3).
///
/// "In k-fold cross validation, a training set is divided into k sets of
/// equal size. Then the model is trained for k times. For each trial, one
/// set is excluded; k − 1 sets are used to train the model, and the
/// excluded set, termed validation set, is used to calculate the error
/// metric."
///
/// # Examples
///
/// ```
/// use wlc_data::KFold;
/// use wlc_math::rng::Seed;
///
/// let kf = KFold::new(10, 5, Seed::new(7))?;
/// let folds: Vec<_> = kf.folds().collect();
/// assert_eq!(folds.len(), 5);
/// for (train, val) in &folds {
///     assert_eq!(train.len() + val.len(), 10);
///     assert_eq!(val.len(), 2);
/// }
/// # Ok::<(), wlc_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KFold {
    /// Shuffled sample indices, partitioned contiguously into folds.
    order: Vec<usize>,
    /// Fold boundaries: fold `i` is `order[bounds[i]..bounds[i+1]]`.
    bounds: Vec<usize>,
}

impl KFold {
    /// Plans a shuffled k-fold split of `n` samples.
    ///
    /// Fold sizes differ by at most one when `k` does not divide `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] unless `2 <= k <= n`.
    pub fn new(n: usize, k: usize, seed: Seed) -> Result<Self, DataError> {
        if k < 2 {
            return Err(DataError::InvalidParameter {
                name: "k",
                reason: "must be at least 2",
            });
        }
        if k > n {
            return Err(DataError::InvalidParameter {
                name: "k",
                reason: "must not exceed the number of samples",
            });
        }
        let mut rng = Xoshiro256::from_seed(seed);
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);

        // Distribute the remainder over the first folds.
        let base = n / k;
        let extra = n % k;
        let mut bounds = Vec::with_capacity(k + 1);
        let mut pos = 0;
        bounds.push(0);
        for i in 0..k {
            pos += base + usize::from(i < extra);
            bounds.push(pos);
        }
        Ok(KFold { order, bounds })
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of samples.
    pub fn n(&self) -> usize {
        self.order.len()
    }

    /// The `(train_indices, validation_indices)` pair for fold `fold`.
    ///
    /// # Panics
    ///
    /// Panics if `fold >= self.k()`.
    pub fn fold(&self, fold: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(fold < self.k(), "fold index out of range");
        let lo = self.bounds[fold];
        let hi = self.bounds[fold + 1];
        let val = self.order[lo..hi].to_vec();
        let train = self.order[..lo]
            .iter()
            .chain(self.order[hi..].iter())
            .copied()
            .collect();
        (train, val)
    }

    /// Iterates over all `(train, validation)` folds.
    pub fn folds(&self) -> Folds<'_> {
        Folds { kf: self, next: 0 }
    }
}

/// Iterator over the folds of a [`KFold`]; created by [`KFold::folds`].
#[derive(Debug, Clone)]
pub struct Folds<'a> {
    kf: &'a KFold,
    next: usize,
}

impl Iterator for Folds<'_> {
    type Item = (Vec<usize>, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.kf.k() {
            return None;
        }
        let item = self.kf.fold(self.next);
        self.next += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.kf.k() - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Folds<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_sizes() {
        let (train, test) = train_test_split(100, 0.25, Seed::new(1)).unwrap();
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
    }

    #[test]
    fn split_is_a_partition() {
        let (train, test) = train_test_split(31, 0.3, Seed::new(2)).unwrap();
        let all: HashSet<usize> = train.iter().chain(test.iter()).copied().collect();
        assert_eq!(all.len(), 31);
        assert_eq!(train.len() + test.len(), 31);
    }

    #[test]
    fn split_minimum_one_test_sample() {
        let (train, test) = train_test_split(3, 0.1, Seed::new(3)).unwrap();
        assert_eq!(test.len(), 1);
        assert_eq!(train.len(), 2);
    }

    #[test]
    fn split_zero_fraction_gives_empty_test() {
        let (train, test) = train_test_split(5, 0.0, Seed::new(4)).unwrap();
        assert!(test.is_empty());
        assert_eq!(train.len(), 5);
    }

    #[test]
    fn split_never_empties_train() {
        let (train, test) = train_test_split(2, 0.99, Seed::new(5)).unwrap();
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn split_validates() {
        assert!(train_test_split(0, 0.2, Seed::new(1)).is_err());
        assert!(train_test_split(10, 1.0, Seed::new(1)).is_err());
        assert!(train_test_split(10, -0.1, Seed::new(1)).is_err());
    }

    #[test]
    fn split_deterministic_per_seed() {
        let a = train_test_split(20, 0.25, Seed::new(9)).unwrap();
        let b = train_test_split(20, 0.25, Seed::new(9)).unwrap();
        let c = train_test_split(20, 0.25, Seed::new(10)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn kfold_paper_protocol_5_fold() {
        // The paper's setting: 5-fold CV.
        let kf = KFold::new(50, 5, Seed::new(1)).unwrap();
        assert_eq!(kf.k(), 5);
        for (train, val) in kf.folds() {
            assert_eq!(val.len(), 10);
            assert_eq!(train.len(), 40);
        }
    }

    #[test]
    fn kfold_each_sample_validated_exactly_once() {
        let kf = KFold::new(23, 4, Seed::new(2)).unwrap();
        let mut seen = [0usize; 23];
        for (_, val) in kf.folds() {
            for v in val {
                seen[v] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn kfold_train_and_val_disjoint() {
        let kf = KFold::new(17, 3, Seed::new(3)).unwrap();
        for (train, val) in kf.folds() {
            let t: HashSet<usize> = train.iter().copied().collect();
            assert!(val.iter().all(|v| !t.contains(v)));
            assert_eq!(t.len() + val.len(), 17);
        }
    }

    #[test]
    fn kfold_uneven_sizes_differ_by_at_most_one() {
        let kf = KFold::new(10, 3, Seed::new(4)).unwrap();
        let sizes: Vec<usize> = kf.folds().map(|(_, v)| v.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn kfold_validates() {
        assert!(KFold::new(10, 1, Seed::new(1)).is_err());
        assert!(KFold::new(3, 4, Seed::new(1)).is_err());
        assert!(KFold::new(4, 4, Seed::new(1)).is_ok());
    }

    #[test]
    fn kfold_fold_panics_out_of_range() {
        let kf = KFold::new(6, 2, Seed::new(1)).unwrap();
        let result = std::panic::catch_unwind(|| kf.fold(2));
        assert!(result.is_err());
    }

    #[test]
    fn folds_iterator_exact_size() {
        let kf = KFold::new(10, 5, Seed::new(1)).unwrap();
        let mut it = kf.folds();
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn kfold_deterministic_per_seed() {
        let a = KFold::new(12, 3, Seed::new(8)).unwrap();
        let b = KFold::new(12, 3, Seed::new(8)).unwrap();
        assert_eq!(a, b);
    }
}
