//! Strict CSV input validation.
//!
//! [`Dataset::from_csv_string`] accepts anything that parses as a float —
//! including `NaN`, `inf` and silently re-appended duplicate rows — which
//! lets bad measurement data flow straight into training. The validated
//! loaders here check every row for:
//!
//! - cells that do not parse as floats,
//! - non-finite cells (NaN / ±Inf),
//! - short or long rows (wrong column count),
//! - exact duplicates of an earlier row.
//!
//! [`ValidateMode::Strict`] turns the first problem into a typed
//! [`DataError::Validation`]; [`ValidateMode::Repair`] drops the offending
//! rows and returns a [`ValidationReport`] listing every repair so callers
//! can surface what was discarded.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

use crate::dataset::parse_csv_header;
use crate::{DataError, Dataset, Sample};

/// What to do when a CSV row fails validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidateMode {
    /// Fail fast: the first bad row is a [`DataError::Validation`].
    #[default]
    Strict,
    /// Drop bad rows, keep the rest, and report every drop.
    Repair,
}

impl fmt::Display for ValidateMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateMode::Strict => write!(f, "strict"),
            ValidateMode::Repair => write!(f, "repair"),
        }
    }
}

impl std::str::FromStr for ValidateMode {
    type Err = DataError;

    fn from_str(s: &str) -> Result<Self, DataError> {
        match s.trim() {
            "strict" => Ok(ValidateMode::Strict),
            "repair" => Ok(ValidateMode::Repair),
            _ => Err(DataError::InvalidParameter {
                name: "mode",
                reason: "expected `strict` or `repair`",
            }),
        }
    }
}

/// One dropped (repair mode) or offending (strict mode) row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowIssue {
    /// 1-based line number in the CSV input.
    pub line: usize,
    /// What was wrong with the row.
    pub reason: String,
}

impl fmt::Display for RowIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

/// Outcome of a validated CSV load.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ValidationReport {
    /// Non-blank data rows seen (header excluded).
    pub rows_seen: usize,
    /// Rows that passed validation and were kept.
    pub rows_kept: usize,
    /// One entry per dropped row (empty in strict mode and for clean
    /// input).
    pub issues: Vec<RowIssue>,
}

impl ValidationReport {
    /// Whether every row passed.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rows: {} kept, {} dropped",
            self.rows_seen,
            self.rows_kept,
            self.issues.len()
        )
    }
}

/// Checks one data row; `Ok` is the parsed cells, `Err` the reason it
/// fails validation.
fn check_row(
    line: &str,
    input_names: &[String],
    output_names: &[String],
) -> Result<Vec<f64>, String> {
    let width = input_names.len() + output_names.len();
    let tokens: Vec<&str> = line.split(',').map(str::trim).collect();
    if tokens.len() != width {
        return Err(format!("expected {width} columns, got {}", tokens.len()));
    }
    let mut values = Vec::with_capacity(width);
    for (c, tok) in tokens.iter().enumerate() {
        let column = || -> &str {
            input_names
                .get(c)
                .or_else(|| output_names.get(c - input_names.len()))
                .map_or("?", String::as_str)
        };
        let v: f64 = tok
            .parse()
            .map_err(|_| format!("bad float `{tok}` in column `{}`", column()))?;
        if !v.is_finite() {
            return Err(format!("non-finite value `{tok}` in column `{}`", column()));
        }
        values.push(v);
    }
    Ok(values)
}

impl Dataset {
    /// Parses CSV (the [`Dataset::to_csv_string`] format) with per-row
    /// validation; see the module docs for the checks performed.
    ///
    /// # Errors
    ///
    /// - [`DataError::Csv`] for a malformed header (both modes — a broken
    ///   header means nothing can be trusted).
    /// - [`DataError::Validation`] for the first bad row in
    ///   [`ValidateMode::Strict`].
    ///
    /// # Examples
    ///
    /// ```
    /// use wlc_data::{Dataset, ValidateMode};
    ///
    /// let csv = "a,y*\n1.0,2.0\n1.0,NaN\n1.0,2.0\n";
    /// // Repair drops the NaN row and the duplicate of row 2.
    /// let (ds, report) = Dataset::from_csv_string_validated(csv, ValidateMode::Repair)?;
    /// assert_eq!(ds.len(), 1);
    /// assert_eq!(report.issues.len(), 2);
    /// // Strict refuses the same input outright.
    /// assert!(Dataset::from_csv_string_validated(csv, ValidateMode::Strict).is_err());
    /// # Ok::<(), wlc_data::DataError>(())
    /// ```
    pub fn from_csv_string_validated(
        csv: &str,
        mode: ValidateMode,
    ) -> Result<(Dataset, ValidationReport), DataError> {
        let mut lines = csv.lines().enumerate();
        let (_, header) = lines.next().ok_or(DataError::Csv {
            line: 1,
            reason: "missing header".into(),
        })?;
        let (input_names, output_names) = parse_csv_header(header)?;
        let mut ds = Dataset::new(input_names, output_names)?;

        let mut report = ValidationReport {
            rows_seen: 0,
            rows_kept: 0,
            issues: Vec::new(),
        };
        // First line (1-based) at which each exact row text was kept.
        // wlc-lint: allow(determinism, reason = "membership-only duplicate probe; the map is never iterated, so hash order cannot leak into results")
        let mut first_seen: HashMap<&str, usize> = HashMap::new();
        for (idx, raw) in lines {
            let line_no = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() {
                continue;
            }
            report.rows_seen += 1;
            let checked = check_row(trimmed, ds.input_names(), ds.output_names());
            let verdict = match checked {
                Ok(values) => {
                    if let Some(&orig) = first_seen.get(trimmed) {
                        Err(format!("duplicate of line {orig}"))
                    } else {
                        Ok(values)
                    }
                }
                Err(reason) => Err(reason),
            };
            match verdict {
                Ok(values) => {
                    first_seen.insert(trimmed, line_no);
                    let (x, y) = values.split_at(ds.input_width());
                    ds.push(Sample::new(x.to_vec(), y.to_vec()))?;
                    report.rows_kept += 1;
                }
                Err(reason) => match mode {
                    ValidateMode::Strict => {
                        return Err(DataError::Validation {
                            line: line_no,
                            reason,
                        });
                    }
                    ValidateMode::Repair => {
                        report.issues.push(RowIssue {
                            line: line_no,
                            reason,
                        });
                    }
                },
            }
        }
        Ok((ds, report))
    }

    /// Reads and validates a CSV file; see
    /// [`Dataset::from_csv_string_validated`].
    ///
    /// # Errors
    ///
    /// As for [`Dataset::from_csv_string_validated`], plus
    /// [`DataError::Io`] on filesystem failure.
    pub fn load_csv_validated<P: AsRef<Path>>(
        path: P,
        mode: ValidateMode,
    ) -> Result<(Dataset, ValidationReport), DataError> {
        let text = std::fs::read_to_string(path)?;
        Dataset::from_csv_string_validated(&text, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "a,b,y*\n1.0,2.0,3.0\n4.0,5.0,6.0\n";

    #[test]
    fn clean_input_passes_both_modes() {
        for mode in [ValidateMode::Strict, ValidateMode::Repair] {
            let (ds, report) = Dataset::from_csv_string_validated(CLEAN, mode).unwrap();
            assert_eq!(ds.len(), 2);
            assert!(report.is_clean(), "{mode}: {report}");
            assert_eq!(report.rows_seen, 2);
            assert_eq!(report.rows_kept, 2);
        }
    }

    #[test]
    fn validated_matches_plain_parser_on_clean_input() {
        let plain = Dataset::from_csv_string(CLEAN).unwrap();
        let (validated, _) =
            Dataset::from_csv_string_validated(CLEAN, ValidateMode::Strict).unwrap();
        assert_eq!(plain, validated);
    }

    #[test]
    fn strict_rejects_each_defect_kind() {
        let cases = [
            ("a,y*\n1.0,NaN\n", "non-finite"),
            ("a,y*\ninf,1.0\n", "non-finite"),
            ("a,y*\n1.0\n", "columns"),
            ("a,y*\n1.0,2.0,3.0\n", "columns"),
            ("a,y*\n1.0,zzz\n", "bad float"),
            ("a,y*\n1.0,2.0\n1.0,2.0\n", "duplicate"),
        ];
        for (csv, needle) in cases {
            let err = Dataset::from_csv_string_validated(csv, ValidateMode::Strict).unwrap_err();
            let msg = err.to_string();
            assert!(
                matches!(err, DataError::Validation { .. }) && msg.contains(needle),
                "csv {csv:?} -> {msg}"
            );
        }
    }

    #[test]
    fn repair_drops_and_reports_bad_rows() {
        let csv = "a,y*\n1.0,2.0\n1.0,NaN\n3.0,4.0\n1.0,2.0\nshort\n5.0,6.0\n";
        let (ds, report) = Dataset::from_csv_string_validated(csv, ValidateMode::Repair).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(report.rows_seen, 6);
        assert_eq!(report.rows_kept, 3);
        assert_eq!(report.issues.len(), 3);
        // Line numbers point at the offending rows.
        let lines: Vec<usize> = report.issues.iter().map(|i| i.line).collect();
        assert_eq!(lines, vec![3, 5, 6]);
        assert!(report.issues[1].reason.contains("duplicate of line 2"));
        assert!(report.to_string().contains("3 dropped"));
    }

    #[test]
    fn header_errors_are_fatal_in_repair_mode() {
        assert!(matches!(
            Dataset::from_csv_string_validated("a,b\n1,2\n", ValidateMode::Repair),
            Err(DataError::Csv { .. })
        ));
    }

    #[test]
    fn whitespace_variants_are_not_textual_duplicates() {
        // Numerically equal but textually distinct rows are kept: the
        // duplicate check targets mechanically repeated lines.
        let csv = "a,y*\n1.0,2.0\n1.00,2.0\n";
        let (ds, report) = Dataset::from_csv_string_validated(csv, ValidateMode::Repair).unwrap();
        assert_eq!(ds.len(), 2);
        assert!(report.is_clean());
    }

    #[test]
    fn mode_parses_from_str() {
        assert_eq!(
            "strict".parse::<ValidateMode>().unwrap(),
            ValidateMode::Strict
        );
        assert_eq!(
            " repair ".parse::<ValidateMode>().unwrap(),
            ValidateMode::Repair
        );
        assert!("lenient".parse::<ValidateMode>().is_err());
        assert_eq!(ValidateMode::default(), ValidateMode::Strict);
    }

    #[test]
    fn file_loader_validates() {
        let dir = std::env::temp_dir().join("wlc-data-validate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "a,y*\n1.0,NaN\n").unwrap();
        assert!(Dataset::load_csv_validated(&path, ValidateMode::Strict).is_err());
        let (ds, report) = Dataset::load_csv_validated(&path, ValidateMode::Repair).unwrap();
        assert!(ds.is_empty());
        assert_eq!(report.issues.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
