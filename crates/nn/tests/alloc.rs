//! Counting-allocator proof that steady-state training is allocation-free.
//!
//! The workspace refactor's core claim is that after the first epoch warms
//! the scratch buffers, the train/predict hot path performs **zero** heap
//! allocations per epoch. This integration test installs a counting global
//! allocator and asserts exactly that, at two levels:
//!
//! 1. the raw epoch cycle (`gather → batch_gradient_with → optimizer.step
//!    → batch_loss_with`) allocates nothing once warm, and
//! 2. a full [`Trainer::fit`] run allocates the same total count whether it
//!    trains 20 epochs or 120 — i.e. all allocation is setup, none per epoch.
//!
//! Everything lives in a single `#[test]` so no sibling test thread can
//! perturb the global counter. This is an integration test (its own crate)
//! because the library itself is `#![forbid(unsafe_code)]` and a
//! `GlobalAlloc` impl requires `unsafe`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use wlc_math::Matrix;
use wlc_nn::{Activation, Loss, MlpBuilder, OptimizerKind, TrainConfig, Trainer, Workspace};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_calls() -> usize {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

fn training_data() -> (Matrix, Matrix) {
    // y = (x0², x0·x1) on a small grid — shape (9, 2) → (9, 2).
    let mut xs = Matrix::zeros(9, 2);
    let mut ys = Matrix::zeros(9, 2);
    for i in 0..3 {
        for j in 0..3 {
            let r = i * 3 + j;
            let (a, b) = (i as f64 - 1.0, j as f64 - 1.0);
            xs.row_mut(r).copy_from_slice(&[a, b]);
            ys.row_mut(r).copy_from_slice(&[a * a, a * b]);
        }
    }
    (xs, ys)
}

fn fit_alloc_count(epochs: usize) -> usize {
    let (xs, ys) = training_data();
    let mut mlp = MlpBuilder::new(2)
        .hidden(6, Activation::tanh())
        .output(2, Activation::identity())
        .seed(3)
        .build()
        .unwrap();
    let config = TrainConfig::new()
        .max_epochs(epochs)
        .learning_rate(0.05)
        .batch_size(4)
        .optimizer(OptimizerKind::adam())
        .rng_seed(7);
    let before = alloc_calls();
    Trainer::new(config).fit(&mut mlp, &xs, &ys).unwrap();
    alloc_calls() - before
}

#[test]
fn steady_state_training_does_not_allocate() {
    let (xs, ys) = training_data();
    let mlp = MlpBuilder::new(2)
        .hidden(6, Activation::tanh())
        .output(2, Activation::identity())
        .seed(1)
        .build()
        .unwrap();

    // --- Level 1: the raw epoch cycle, warmed then measured. ---
    let mut ws = Workspace::for_mlp(&mlp);
    let mut optimizer = OptimizerKind::adam().into_optimizer();
    let mut params = mlp.params_flat();
    let mut model = mlp.clone();
    let mut bx = Matrix::zeros(0, xs.cols());
    let mut by = Matrix::zeros(0, ys.cols());
    let indices: Vec<usize> = (0..xs.rows()).collect();
    let batch = 4;

    let cycle = |model: &mut wlc_nn::Mlp,
                 params: &mut Vec<f64>,
                 ws: &mut Workspace,
                 bx: &mut Matrix,
                 by: &mut Matrix,
                 optimizer: &mut wlc_nn::Optimizer| {
        for chunk in indices.chunks(batch) {
            model.set_params_flat(params).unwrap();
            bx.resize_rows(chunk.len());
            by.resize_rows(chunk.len());
            for (out_r, &r) in chunk.iter().enumerate() {
                bx.row_mut(out_r).copy_from_slice(xs.row(r));
                by.row_mut(out_r).copy_from_slice(ys.row(r));
            }
            model
                .batch_gradient_with(bx, by, Loss::MeanSquared, ws)
                .unwrap();
            let norm_sq = ws.grad().iter().map(|g| g * g).sum::<f64>();
            assert!(norm_sq.is_finite());
            optimizer.step(params, ws.grad(), 0.05).unwrap();
        }
        model.set_params_flat(params).unwrap();
        model
            .batch_loss_with(&xs, &ys, Loss::MeanSquared, ws)
            .unwrap()
    };

    // Warm up: workspace growth, minibatch buffers, lazy optimizer state.
    for _ in 0..3 {
        cycle(
            &mut model,
            &mut params,
            &mut ws,
            &mut bx,
            &mut by,
            &mut optimizer,
        );
    }

    let before = alloc_calls();
    let mut last_loss = f64::INFINITY;
    for _ in 0..200 {
        last_loss = cycle(
            &mut model,
            &mut params,
            &mut ws,
            &mut bx,
            &mut by,
            &mut optimizer,
        );
    }
    let during = alloc_calls() - before;
    assert!(last_loss.is_finite());
    assert_eq!(
        during, 0,
        "steady-state epoch cycle performed {during} heap allocations over 200 epochs"
    );

    // --- Level 2: Trainer::fit allocation count is epoch-independent
    // (modulo the loss-history reserve, which is one allocation either
    // way). 20 vs 120 epochs must cost the identical number of calls. ---
    let short = fit_alloc_count(20);
    let long = fit_alloc_count(120);
    assert_eq!(
        short, long,
        "Trainer::fit allocation count grew with epochs: 20 epochs = {short}, 120 epochs = {long}"
    );
}
