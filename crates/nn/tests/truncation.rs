//! Byte-prefix truncation fuzz for the text parsers: a power cut (or a
//! torn copy) can hand the loader any prefix of a valid artifact, and
//! the parser must never panic, never accept garbage, and never accept
//! a prefix that decodes to something different from the full artifact.
//! A prefix is allowed to parse only when it is semantically the whole
//! document (e.g. only the final trailing newline is missing).

use std::path::Path;
use std::sync::Arc;

use wlc_fault::{Fs, FsHandle, SimFs};
use wlc_math::Matrix;
use wlc_nn::{Activation, Checkpoint, Mlp, MlpBuilder, TrainConfig, Trainer};

fn fixtures() -> (Mlp, Checkpoint) {
    let xs = Matrix::from_rows(&[
        &[-1.0, 0.0],
        &[-0.5, 1.0],
        &[0.0, 2.0],
        &[0.5, 3.0],
        &[1.0, 4.0],
    ])
    .unwrap();
    let ys = Matrix::from_rows(&[&[1.0], &[0.75], &[1.0], &[1.75], &[3.0]]).unwrap();
    let mut mlp = MlpBuilder::new(2)
        .hidden(4, Activation::tanh())
        .output(1, Activation::identity())
        .seed(7)
        .build()
        .unwrap();
    // Checkpoint into a simulated filesystem so the test touches no
    // real disk: train a few epochs with checkpointing on, then read
    // the last checkpoint back out of the SimFs.
    let sim = Arc::new(SimFs::new());
    let ckpt_path = Path::new("truncation-fuzz.ckpt");
    let config = TrainConfig::new()
        .max_epochs(20)
        .termination_threshold(0.0)
        .checkpoint_every(10)
        .checkpoint_path(ckpt_path)
        .checkpoint_fs(Arc::clone(&sim) as FsHandle);
    Trainer::new(config).fit(&mut mlp, &xs, &ys).unwrap();
    let text = sim
        .read_to_string("test.read", ckpt_path)
        .expect("trainer must have checkpointed");
    let ckpt = Checkpoint::from_text(&text).unwrap();
    (mlp, ckpt)
}

/// Every strict byte prefix either fails cleanly or re-encodes to the
/// exact bytes of the full document.
fn fuzz_prefixes<T, E>(
    what: &str,
    full: &str,
    parse: impl Fn(&str) -> Result<T, E>,
    reencode: impl Fn(&T) -> String,
) {
    let whole = reencode(&parse(full).unwrap_or_else(|_| panic!("{what}: full text must parse")));
    let mut accepted = 0usize;
    for cut in 0..full.len() {
        let prefix = &full[..cut];
        if let Ok(parsed) = parse(prefix) {
            accepted += 1;
            assert_eq!(
                reencode(&parsed),
                whole,
                "{what}: prefix of {cut}/{} bytes parsed to a DIFFERENT document",
                full.len()
            );
        }
        // Err is always fine: rejected cleanly, no panic.
    }
    // The format is newline-terminated, so every strict prefix is
    // either missing lines or missing the final terminator: all of
    // them must be rejected.
    assert_eq!(
        accepted, 0,
        "{what}: {accepted} prefixes parsed — the format is not truncation-safe"
    );
}

#[test]
fn mlp_from_text_rejects_or_roundtrips_every_byte_prefix() {
    let (mlp, _) = fixtures();
    fuzz_prefixes("mlp", &mlp.to_text(), Mlp::from_text, Mlp::to_text);
}

#[test]
fn checkpoint_from_text_rejects_or_roundtrips_every_byte_prefix() {
    let (_, ckpt) = fixtures();
    fuzz_prefixes(
        "checkpoint",
        &ckpt.to_text(),
        Checkpoint::from_text,
        Checkpoint::to_text,
    );
}
