//! Property-based tests for the neural-network crate: gradient
//! correctness on random topologies, serialization roundtrips, and
//! activation invariants — on the seeded [`propcheck`] harness.

use wlc_math::propcheck::{self, Gen};
use wlc_math::Matrix;
use wlc_nn::{gradcheck, Activation, Loss, Mlp, MlpBuilder};

fn random_data(inputs: usize, outputs: usize, rows: usize, salt: u64) -> (Matrix, Matrix) {
    let xs = Matrix::from_fn(rows, inputs, |r, c| {
        (((r as u64 * 31 + c as u64 * 17 + salt) % 23) as f64) / 23.0 - 0.5
    });
    let ys = Matrix::from_fn(rows, outputs, |r, c| {
        (((r as u64 * 13 + c as u64 * 7 + salt) % 19) as f64) / 19.0
    });
    (xs, ys)
}

fn hidden_activation(g: &mut Gen) -> Activation {
    match g.usize_in(0, 5) {
        0 => Activation::logistic(),
        1 => Activation::logistic_with_slope(g.f64_in(0.5, 4.0)).expect("positive slope"),
        2 => Activation::Tanh,
        3 => Activation::Softplus,
        _ => Activation::leaky_relu(),
    }
}

#[test]
fn backprop_matches_finite_differences() {
    propcheck::run_cases(24, |g| {
        let inputs = g.usize_in(1, 4);
        let hidden = g.usize_in(1, 8);
        let outputs = g.usize_in(1, 4);
        let activation = hidden_activation(g);
        let seed = g.u64();
        let mlp = MlpBuilder::new(inputs)
            .hidden(hidden, activation)
            .output(outputs, Activation::identity())
            .seed(seed)
            .build()
            .unwrap();
        let (xs, ys) = random_data(inputs, outputs, 5, seed);
        let report = gradcheck::check(&mlp, &xs, &ys, Loss::MeanSquared, 1e-5).unwrap();
        assert!(report.passes(1e-5), "{report:?}");
    });
}

#[test]
fn serialization_roundtrip_any_topology() {
    propcheck::run_cases(24, |g| {
        let inputs = g.usize_in(1, 5);
        let h1 = g.usize_in(1, 10);
        let h2 = g.usize_in(1, 10);
        let outputs = g.usize_in(1, 5);
        let mlp = MlpBuilder::new(inputs)
            .hidden(h1, Activation::logistic())
            .hidden(h2, Activation::Tanh)
            .output(outputs, Activation::identity())
            .seed(g.u64())
            .build()
            .unwrap();
        let back = Mlp::from_text(&mlp.to_text()).unwrap();
        assert_eq!(&back, &mlp);
        // Bit-identical predictions.
        let x: Vec<f64> = (0..inputs).map(|i| i as f64 * 0.1 - 0.2).collect();
        assert_eq!(back.forward(&x).unwrap(), mlp.forward(&x).unwrap());
    });
}

#[test]
fn from_text_never_panics_on_mutated_input() {
    // Fuzz the model parser with systematically corrupted serializations:
    // truncation, dropped/duplicated lines, poisoned tokens, flipped
    // characters and pure garbage. The parser must return a typed error or
    // a well-formed network — never panic, and never accept NaN/Inf.
    propcheck::run_cases(96, |g| {
        let mlp = MlpBuilder::new(g.usize_in(1, 4))
            .hidden(g.usize_in(1, 6), Activation::Tanh)
            .output(g.usize_in(1, 3), Activation::identity())
            .seed(g.u64())
            .build()
            .unwrap();
        let text = mlp.to_text();
        let mutated = match g.usize_in(0, 5) {
            0 => {
                // Truncate at an arbitrary character boundary.
                let cut = g.usize_in(0, text.chars().count());
                text.chars().take(cut).collect::<String>()
            }
            1 => {
                // Drop one line.
                let lines: Vec<&str> = text.lines().collect();
                let drop = g.usize_in(0, lines.len() - 1);
                lines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, l)| *l)
                    .collect::<Vec<_>>()
                    .join("\n")
            }
            2 => {
                // Poison one weight row with a hostile token.
                let poison = ["NaN", "inf", "-inf", "1e999", "x", "--"][g.usize_in(0, 5)];
                text.replacen("w ", &format!("w {poison} "), 1)
            }
            3 => {
                // Duplicate one line.
                let lines: Vec<&str> = text.lines().collect();
                let dup = g.usize_in(0, lines.len() - 1);
                let mut out: Vec<&str> = Vec::new();
                for (i, l) in lines.iter().enumerate() {
                    out.push(l);
                    if i == dup {
                        out.push(l);
                    }
                }
                out.join("\n")
            }
            4 => {
                // Overwrite one character.
                let chars: Vec<char> = text.chars().collect();
                let pos = g.usize_in(0, chars.len() - 1);
                let sub = ['\0', 'z', '9', '.', '-', ' ', '\n'][g.usize_in(0, 6)];
                chars
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| if i == pos { sub } else { c })
                    .collect()
            }
            _ => {
                // Pure printable garbage.
                let len = g.usize_in(0, 64);
                (0..len)
                    .map(|_| char::from(g.usize_in(32, 126) as u8))
                    .collect()
            }
        };
        if let Ok(parsed) = Mlp::from_text(&mutated) {
            // Rarely a mutation is still valid — then the result must be a
            // usable network with finite parameters.
            assert!(parsed.param_count() > 0);
            assert!(parsed.params_flat().iter().all(|p| p.is_finite()));
        }
    });
}

#[test]
fn params_roundtrip_preserves_behaviour() {
    propcheck::run_cases(24, |g| {
        let inputs = g.usize_in(1, 4);
        let hidden = g.usize_in(1, 8);
        let seed = g.u64();
        let probe = g.vec_f64(-2.0, 2.0, 3);
        let src = MlpBuilder::new(inputs)
            .hidden(hidden, Activation::Tanh)
            .output(2, Activation::identity())
            .seed(seed)
            .build()
            .unwrap();
        let mut dst = MlpBuilder::new(inputs)
            .hidden(hidden, Activation::Tanh)
            .output(2, Activation::identity())
            .seed(seed.wrapping_add(1))
            .build()
            .unwrap();
        dst.set_params_flat(&src.params_flat()).unwrap();
        let x: Vec<f64> = probe
            .into_iter()
            .take(inputs)
            .chain(std::iter::repeat(0.0))
            .take(inputs)
            .collect();
        assert_eq!(dst.forward(&x).unwrap(), src.forward(&x).unwrap());
    });
}

#[test]
fn activations_stay_in_declared_range() {
    propcheck::run_cases(64, |g| {
        let activation = hidden_activation(g);
        let x = g.f64_in(-50.0, 50.0);
        let (lo, hi) = activation.output_range();
        let y = activation.apply(x);
        assert!(
            y >= lo - 1e-12 && y <= hi + 1e-12,
            "{activation} ({x}) = {y}"
        );
        assert!(y.is_finite());
    });
}

#[test]
fn logistic_is_monotone() {
    propcheck::run_cases(64, |g| {
        let slope = g.f64_in(0.1, 10.0);
        let a = g.f64_in(-10.0, 10.0);
        let b = g.f64_in(-10.0, 10.0);
        let act = Activation::logistic_with_slope(slope).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(act.apply(lo) <= act.apply(hi) + 1e-12);
    });
}

#[test]
fn sgd_step_reduces_quadratic_loss() {
    propcheck::run_cases(24, |g| {
        let inputs = g.usize_in(1, 4);
        let hidden = g.usize_in(2, 8);
        let seed = g.u64();
        // One small full-batch gradient step must not increase the loss
        // (for a sufficiently small learning rate on a smooth model).
        let mut mlp = MlpBuilder::new(inputs)
            .hidden(hidden, Activation::Tanh)
            .output(1, Activation::identity())
            .seed(seed)
            .build()
            .unwrap();
        let (xs, ys) = random_data(inputs, 1, 6, seed);
        let (before, grad) = mlp.batch_gradient(&xs, &ys, Loss::MeanSquared).unwrap();
        let update: Vec<f64> = grad.iter().map(|g| -1e-3 * g).collect();
        mlp.apply_update(&update).unwrap();
        let (after, _) = mlp.batch_gradient(&xs, &ys, Loss::MeanSquared).unwrap();
        assert!(after <= before + 1e-9, "{before} -> {after}");
    });
}

#[test]
fn loss_is_nonnegative_and_zero_at_target() {
    propcheck::run_cases(64, |g| {
        let target = g.vec_f64_len(-5.0, 5.0, 1, 6);
        let offset = g.vec_f64_len(-2.0, 2.0, 1, 6);
        let n = target.len().min(offset.len());
        let target = &target[..n];
        let predicted: Vec<f64> = target
            .iter()
            .zip(&offset[..n])
            .map(|(t, o)| t + o)
            .collect();
        for loss in [
            Loss::MeanSquared,
            Loss::MeanAbsolute,
            Loss::huber(1.0).unwrap(),
        ] {
            let v = loss.value(&predicted, target).unwrap();
            assert!(v >= 0.0);
            let zero = loss.value(target, target).unwrap();
            assert!(zero.abs() < 1e-12);
        }
    });
}
