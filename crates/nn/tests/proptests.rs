//! Property-based tests for the neural-network crate: gradient
//! correctness on random topologies, serialization roundtrips, and
//! activation invariants.

use proptest::prelude::*;
use wlc_math::Matrix;
use wlc_nn::{gradcheck, Activation, Loss, Mlp, MlpBuilder};

fn random_data(inputs: usize, outputs: usize, rows: usize, salt: u64) -> (Matrix, Matrix) {
    let xs = Matrix::from_fn(rows, inputs, |r, c| {
        (((r as u64 * 31 + c as u64 * 17 + salt) % 23) as f64) / 23.0 - 0.5
    });
    let ys = Matrix::from_fn(rows, outputs, |r, c| {
        (((r as u64 * 13 + c as u64 * 7 + salt) % 19) as f64) / 19.0
    });
    (xs, ys)
}

fn hidden_activation() -> impl Strategy<Value = Activation> {
    prop_oneof![
        Just(Activation::logistic()),
        (0.5..4.0_f64).prop_map(|s| Activation::logistic_with_slope(s).expect("positive slope")),
        Just(Activation::Tanh),
        Just(Activation::Softplus),
        Just(Activation::leaky_relu()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn backprop_matches_finite_differences(
        inputs in 1usize..4,
        hidden in 1usize..8,
        outputs in 1usize..4,
        activation in hidden_activation(),
        seed in any::<u64>(),
    ) {
        let mlp = MlpBuilder::new(inputs)
            .hidden(hidden, activation)
            .output(outputs, Activation::identity())
            .seed(seed)
            .build()
            .unwrap();
        let (xs, ys) = random_data(inputs, outputs, 5, seed);
        let report = gradcheck::check(&mlp, &xs, &ys, Loss::MeanSquared, 1e-5).unwrap();
        prop_assert!(report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn serialization_roundtrip_any_topology(
        inputs in 1usize..5,
        h1 in 1usize..10,
        h2 in 1usize..10,
        outputs in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mlp = MlpBuilder::new(inputs)
            .hidden(h1, Activation::logistic())
            .hidden(h2, Activation::Tanh)
            .output(outputs, Activation::identity())
            .seed(seed)
            .build()
            .unwrap();
        let back = Mlp::from_text(&mlp.to_text()).unwrap();
        prop_assert_eq!(&back, &mlp);
        // Bit-identical predictions.
        let x: Vec<f64> = (0..inputs).map(|i| i as f64 * 0.1 - 0.2).collect();
        prop_assert_eq!(back.forward(&x).unwrap(), mlp.forward(&x).unwrap());
    }

    #[test]
    fn params_roundtrip_preserves_behaviour(
        inputs in 1usize..4,
        hidden in 1usize..8,
        seed in any::<u64>(),
        probe in prop::collection::vec(-2.0..2.0_f64, 3),
    ) {
        let src = MlpBuilder::new(inputs)
            .hidden(hidden, Activation::Tanh)
            .output(2, Activation::identity())
            .seed(seed)
            .build()
            .unwrap();
        let mut dst = MlpBuilder::new(inputs)
            .hidden(hidden, Activation::Tanh)
            .output(2, Activation::identity())
            .seed(seed.wrapping_add(1))
            .build()
            .unwrap();
        dst.set_params_flat(&src.params_flat()).unwrap();
        let x: Vec<f64> = probe.into_iter().take(inputs).chain(std::iter::repeat(0.0)).take(inputs).collect();
        prop_assert_eq!(dst.forward(&x).unwrap(), src.forward(&x).unwrap());
    }

    #[test]
    fn activations_stay_in_declared_range(
        activation in hidden_activation(),
        x in -50.0..50.0_f64,
    ) {
        let (lo, hi) = activation.output_range();
        let y = activation.apply(x);
        prop_assert!(y >= lo - 1e-12 && y <= hi + 1e-12, "{activation} ({x}) = {y}");
        prop_assert!(y.is_finite());
    }

    #[test]
    fn logistic_is_monotone(slope in 0.1..10.0_f64, a in -10.0..10.0_f64, b in -10.0..10.0_f64) {
        let act = Activation::logistic_with_slope(slope).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(act.apply(lo) <= act.apply(hi) + 1e-12);
    }

    #[test]
    fn sgd_step_reduces_quadratic_loss(
        inputs in 1usize..4,
        hidden in 2usize..8,
        seed in any::<u64>(),
    ) {
        // One small full-batch gradient step must not increase the loss
        // (for a sufficiently small learning rate on a smooth model).
        let mut mlp = MlpBuilder::new(inputs)
            .hidden(hidden, Activation::Tanh)
            .output(1, Activation::identity())
            .seed(seed)
            .build()
            .unwrap();
        let (xs, ys) = random_data(inputs, 1, 6, seed);
        let (before, grad) = mlp.batch_gradient(&xs, &ys, Loss::MeanSquared).unwrap();
        let update: Vec<f64> = grad.iter().map(|g| -1e-3 * g).collect();
        mlp.apply_update(&update).unwrap();
        let (after, _) = mlp.batch_gradient(&xs, &ys, Loss::MeanSquared).unwrap();
        prop_assert!(after <= before + 1e-9, "{before} -> {after}");
    }

    #[test]
    fn loss_is_nonnegative_and_zero_at_target(
        target in prop::collection::vec(-5.0..5.0_f64, 1..6),
        offset in prop::collection::vec(-2.0..2.0_f64, 1..6),
    ) {
        let n = target.len().min(offset.len());
        let target = &target[..n];
        let predicted: Vec<f64> = target.iter().zip(&offset[..n]).map(|(t, o)| t + o).collect();
        for loss in [Loss::MeanSquared, Loss::MeanAbsolute, Loss::huber(1.0).unwrap()] {
            let v = loss.value(&predicted, target).unwrap();
            prop_assert!(v >= 0.0);
            let zero = loss.value(target, target).unwrap();
            prop_assert!(zero.abs() < 1e-12);
        }
    }
}
