//! Radial-basis-function networks.
//!
//! The paper's §2.1 names two families used for function approximation:
//! "single or multilayer perceptrons and Radial Basis Function (RBF)
//! networks". The paper builds on MLPs; this module provides the RBF
//! alternative so the ablation experiments can compare them.
//!
//! The implementation is the classical two-stage scheme: unsupervised
//! center placement with seeded k-means++ / Lloyd iterations, Gaussian
//! basis functions with a shared data-driven width heuristic, and a
//! closed-form ridge-regression output layer.

use wlc_math::linalg;
use wlc_math::rng::{Seed, Xoshiro256};
use wlc_math::Matrix;

use crate::NnError;

/// A Gaussian radial-basis-function network.
///
/// # Examples
///
/// ```
/// use wlc_math::Matrix;
/// use wlc_nn::RbfNetwork;
///
/// // y = x^2 on [-2, 2].
/// let xs = Matrix::from_fn(17, 1, |r, _| -2.0 + r as f64 * 0.25);
/// let ys = Matrix::from_fn(17, 1, |r, _| {
///     let x = -2.0 + r as f64 * 0.25;
///     x * x
/// });
/// let rbf = RbfNetwork::fit(&xs, &ys, 7, 42)?;
/// let y = rbf.predict(&[1.0])?;
/// assert!((y[0] - 1.0).abs() < 0.2);
/// # Ok::<(), wlc_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RbfNetwork {
    /// `k × inputs` center matrix.
    centers: Matrix,
    /// Shared Gaussian width parameter (gamma = 1 / (2 sigma²)).
    gamma: f64,
    /// `(k + 1) × outputs` output weights (last row is the bias).
    weights: Matrix,
}

impl RbfNetwork {
    /// Fits an RBF network with `k` centers to `(xs, ys)`.
    ///
    /// # Errors
    ///
    /// - [`NnError::EmptyTrainingSet`] for empty data.
    /// - [`NnError::InvalidHyperParameter`] if `k == 0` or
    ///   `k > xs.rows()`.
    /// - [`NnError::ShapeMismatch`] if `xs.rows() != ys.rows()`.
    pub fn fit(xs: &Matrix, ys: &Matrix, k: usize, seed: u64) -> Result<Self, NnError> {
        if xs.rows() == 0 {
            return Err(NnError::EmptyTrainingSet);
        }
        if ys.rows() != xs.rows() {
            return Err(NnError::ShapeMismatch {
                expected: xs.rows(),
                actual: ys.rows(),
                what: "target row count",
            });
        }
        if k == 0 || k > xs.rows() {
            return Err(NnError::InvalidHyperParameter {
                name: "k",
                reason: "must be between 1 and the number of samples",
            });
        }

        let centers = kmeans(xs, k, seed);

        // Width heuristic: sigma = mean distance between distinct centers
        // divided by sqrt(2k) is common; we use the robust variant
        // sigma = d_max / sqrt(2 k), with a fallback for k == 1.
        let mut d_max: f64 = 0.0;
        for i in 0..k {
            for j in (i + 1)..k {
                d_max = d_max.max(distance(centers.row(i), centers.row(j)));
            }
        }
        let sigma = if d_max > 0.0 {
            d_max / (2.0 * k as f64).sqrt()
        } else {
            1.0
        };
        let gamma = 1.0 / (2.0 * sigma * sigma);

        // Design matrix: one Gaussian column per center plus a bias.
        let design = Matrix::from_fn(xs.rows(), k + 1, |r, c| {
            if c == k {
                1.0
            } else {
                (-gamma * sq_distance(xs.row(r), centers.row(c))).exp()
            }
        });

        let mut weights = Matrix::zeros(k + 1, ys.cols());
        for out in 0..ys.cols() {
            let target = ys.col_to_vec(out);
            let w = linalg::ridge(&design, &target, 1e-8)?;
            for (row, &v) in w.iter().enumerate() {
                weights.set(row, out, v);
            }
        }

        Ok(RbfNetwork {
            centers,
            gamma,
            weights,
        })
    }

    /// Number of input features.
    pub fn inputs(&self) -> usize {
        self.centers.cols()
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.weights.cols()
    }

    /// Number of basis-function centers.
    pub fn centers(&self) -> usize {
        self.centers.rows()
    }

    /// The shared Gaussian width parameter gamma.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Predicts the outputs for one input vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `x.len() != self.inputs()`.
    pub fn predict(&self, x: &[f64]) -> Result<Vec<f64>, NnError> {
        if x.len() != self.inputs() {
            return Err(NnError::ShapeMismatch {
                expected: self.inputs(),
                actual: x.len(),
                what: "input width",
            });
        }
        let k = self.centers.rows();
        let mut activations = Vec::with_capacity(k + 1);
        for c in 0..k {
            activations.push((-self.gamma * sq_distance(x, self.centers.row(c))).exp());
        }
        activations.push(1.0);
        let mut out = vec![0.0; self.outputs()];
        for (o, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (f, &a) in activations.iter().enumerate() {
                acc += a * self.weights.get(f, o);
            }
            *slot = acc;
        }
        Ok(out)
    }

    /// Batch prediction, one row per input row.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `xs.cols() != self.inputs()`.
    pub fn predict_batch(&self, xs: &Matrix) -> Result<Matrix, NnError> {
        let mut out = Matrix::zeros(xs.rows(), self.outputs());
        for r in 0..xs.rows() {
            let y = self.predict(xs.row(r))?;
            out.row_mut(r).copy_from_slice(&y);
        }
        Ok(out)
    }
}

fn sq_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn distance(a: &[f64], b: &[f64]) -> f64 {
    sq_distance(a, b).sqrt()
}

/// Seeded k-means++ initialization followed by Lloyd iterations.
#[allow(clippy::needless_range_loop)] // index loops mirror the Lloyd update equations
fn kmeans(xs: &Matrix, k: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256::from_seed(Seed::new(seed));
    let n = xs.rows();
    let dims = xs.cols();

    // k-means++ seeding.
    let mut center_rows: Vec<usize> = Vec::with_capacity(k);
    center_rows.push(rng.next_below(n as u64) as usize);
    while center_rows.len() < k {
        let weights: Vec<f64> = (0..n)
            .map(|r| {
                center_rows
                    .iter()
                    .map(|&c| sq_distance(xs.row(r), xs.row(c)))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let next = if total > 0.0 {
            rng.pick_weighted(&weights).expect("positive total weight")
        } else {
            // All points coincide with existing centers: pick uniformly.
            rng.next_below(n as u64) as usize
        };
        center_rows.push(next);
    }
    let mut centers = Matrix::from_fn(k, dims, |c, d| xs.get(center_rows[c], d));

    // Lloyd iterations (fixed budget keeps fitting deterministic-time).
    let mut assignment = vec![0usize; n];
    for _ in 0..25 {
        let mut changed = false;
        for r in 0..n {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = sq_distance(xs.row(r), centers.row(c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[r] != best {
                assignment[r] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = Matrix::zeros(k, dims);
        let mut counts = vec![0usize; k];
        for r in 0..n {
            let c = assignment[r];
            counts[c] += 1;
            for d in 0..dims {
                let v = sums.get(c, d) + xs.get(r, d);
                sums.set(c, d, v);
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..dims {
                    centers.set(c, d, sums.get(c, d) / counts[c] as f64);
                }
            }
        }
        if !changed {
            break;
        }
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_data() -> (Matrix, Matrix) {
        let n = 40;
        let xs = Matrix::from_fn(n, 1, |r, _| r as f64 / (n - 1) as f64 * 6.0);
        let ys = Matrix::from_fn(n, 1, |r, _| (r as f64 / (n - 1) as f64 * 6.0).sin());
        (xs, ys)
    }

    #[test]
    fn fits_sine_wave() {
        let (xs, ys) = sine_data();
        let rbf = RbfNetwork::fit(&xs, &ys, 12, 7).unwrap();
        let mut max_err = 0.0_f64;
        for i in 0..30 {
            let x = i as f64 / 29.0 * 6.0;
            let pred = rbf.predict(&[x]).unwrap()[0];
            max_err = max_err.max((pred - x.sin()).abs());
        }
        assert!(max_err < 0.1, "max error {max_err}");
    }

    #[test]
    fn validates_inputs() {
        let (xs, ys) = sine_data();
        assert!(RbfNetwork::fit(&xs, &ys, 0, 1).is_err());
        assert!(RbfNetwork::fit(&xs, &ys, 1000, 1).is_err());
        let bad_ys = Matrix::zeros(3, 1);
        assert!(RbfNetwork::fit(&xs, &bad_ys, 5, 1).is_err());
        assert!(RbfNetwork::fit(&Matrix::zeros(0, 1), &Matrix::zeros(0, 1), 1, 1).is_err());
    }

    #[test]
    fn predict_checks_width() {
        let (xs, ys) = sine_data();
        let rbf = RbfNetwork::fit(&xs, &ys, 5, 3).unwrap();
        assert!(rbf.predict(&[1.0, 2.0]).is_err());
        assert_eq!(rbf.inputs(), 1);
        assert_eq!(rbf.outputs(), 1);
        assert_eq!(rbf.centers(), 5);
        assert!(rbf.gamma() > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (xs, ys) = sine_data();
        let a = RbfNetwork::fit(&xs, &ys, 8, 11).unwrap();
        let b = RbfNetwork::fit(&xs, &ys, 8, 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn multi_output_fit() {
        let n = 30;
        let xs = Matrix::from_fn(n, 2, |r, c| ((r * (c + 2)) % 10) as f64 / 5.0);
        let ys = Matrix::from_fn(n, 2, |r, c| {
            let a = ((r * 2) % 10) as f64 / 5.0;
            let b = ((r * 3) % 10) as f64 / 5.0;
            if c == 0 {
                a * a + b
            } else {
                a - b
            }
        });
        let rbf = RbfNetwork::fit(&xs, &ys, 10, 5).unwrap();
        let batch = rbf.predict_batch(&xs).unwrap();
        assert_eq!(batch.shape(), (n, 2));
        assert!(batch.is_finite());
    }

    #[test]
    fn interpolates_exactly_with_k_equals_n() {
        // One center per sample: the system is square-ish and should fit
        // the training data almost exactly.
        let xs = Matrix::from_fn(8, 1, |r, _| r as f64);
        let ys = Matrix::from_fn(8, 1, |r, _| ((r * r) % 7) as f64);
        let rbf = RbfNetwork::fit(&xs, &ys, 8, 2).unwrap();
        for r in 0..8 {
            let pred = rbf.predict(xs.row(r)).unwrap()[0];
            assert!((pred - ys.get(r, 0)).abs() < 0.2, "row {r}: {pred}");
        }
    }

    #[test]
    fn constant_data_handled() {
        // All samples identical: k-means degenerates but fit must not
        // panic or produce NaN.
        let xs = Matrix::filled(6, 2, 3.0);
        let ys = Matrix::filled(6, 1, 1.5);
        let rbf = RbfNetwork::fit(&xs, &ys, 2, 9).unwrap();
        let pred = rbf.predict(&[3.0, 3.0]).unwrap()[0];
        assert!((pred - 1.5).abs() < 1e-6, "{pred}");
    }
}
