use std::fmt;
use std::str::FromStr;

use crate::NnError;

/// A perceptron activation ("squashing") function.
///
/// The paper (§2.1) uses the slope-parameterized logistic function
/// `f(x) = 1 / (1 + exp(−a·x))`, whose slope parameter `a` controls "the
/// fuzziness of the decision boundary" and which approaches a hard limiter
/// as `|a| → ∞` (Figure 2). That function is [`Activation::logistic_with_slope`];
/// the other variants are standard alternatives used by the test suite and
/// the ablation benchmarks.
///
/// # Examples
///
/// ```
/// use wlc_nn::Activation;
///
/// let f = Activation::logistic();
/// assert!((f.apply(0.0) - 0.5).abs() < 1e-12);
///
/// // Steeper slope → closer to a hard limiter.
/// let steep = Activation::logistic_with_slope(10.0).unwrap();
/// assert!(steep.apply(1.0) > f.apply(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + exp(−slope·x))`, range (0, 1).
    Logistic {
        /// Slope parameter `a` of the paper's Figure 2.
        slope: f64,
    },
    /// Hyperbolic tangent, range (−1, 1).
    Tanh,
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Leaky ReLU: `x` for positive inputs, `alpha·x` otherwise.
    LeakyRelu {
        /// Negative-side slope.
        alpha: f64,
    },
    /// Identity (linear) activation, used for regression output layers.
    Identity,
    /// Smooth ReLU approximation `ln(1 + exp(x))`.
    Softplus,
    /// Hard threshold at zero (0 or 1). Not trainable by gradient descent;
    /// provided for the perceptron illustration of the paper's §2.1.
    HardLimiter,
}

impl Activation {
    /// The standard logistic sigmoid (slope 1).
    pub fn logistic() -> Self {
        Activation::Logistic { slope: 1.0 }
    }

    /// Logistic sigmoid with an explicit slope parameter `a` (paper Fig. 2).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidHyperParameter`] if `slope` is zero,
    /// negative or not finite.
    pub fn logistic_with_slope(slope: f64) -> Result<Self, NnError> {
        if !(slope.is_finite() && slope > 0.0) {
            return Err(NnError::InvalidHyperParameter {
                name: "slope",
                reason: "must be positive and finite",
            });
        }
        Ok(Activation::Logistic { slope })
    }

    /// Hyperbolic tangent.
    pub fn tanh() -> Self {
        Activation::Tanh
    }

    /// Rectified linear unit.
    pub fn relu() -> Self {
        Activation::Relu
    }

    /// Leaky ReLU with the conventional `alpha = 0.01`.
    pub fn leaky_relu() -> Self {
        Activation::LeakyRelu { alpha: 0.01 }
    }

    /// Identity activation.
    pub fn identity() -> Self {
        Activation::Identity
    }

    /// Applies the activation to a pre-activation value.
    pub fn apply(&self, x: f64) -> f64 {
        match *self {
            Activation::Logistic { slope } => 1.0 / (1.0 + (-slope * x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu { alpha } => {
                if x >= 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            Activation::Identity => x,
            Activation::Softplus => {
                // Numerically stable: ln(1+e^x) = max(x,0) + ln(1+e^{-|x|}).
                x.max(0.0) + (-x.abs()).exp().ln_1p()
            }
            Activation::HardLimiter => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Derivative of the activation, given the pre-activation `x` and the
    /// already-computed activation value `fx = apply(x)`.
    ///
    /// Passing both lets sigmoid-family derivatives reuse the forward
    /// value (`f'(x) = a·f·(1−f)` for the logistic).
    pub fn derivative(&self, x: f64, fx: f64) -> f64 {
        match *self {
            Activation::Logistic { slope } => slope * fx * (1.0 - fx),
            Activation::Tanh => 1.0 - fx * fx,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu { alpha } => {
                if x > 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            Activation::Identity => 1.0,
            Activation::Softplus => 1.0 / (1.0 + (-x).exp()),
            Activation::HardLimiter => 0.0,
        }
    }

    /// Applies the activation element-wise to a slice, in place.
    pub fn apply_slice(&self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }

    /// Out-of-place [`Activation::apply_slice`]: writes `apply(src[i])`
    /// into `dst[i]`, saving the batched forward pass a separate copy
    /// pass. Matches on the variant once per slice; each element is
    /// bit-identical to [`Activation::apply`].
    pub fn apply_slice_into(&self, src: &[f64], dst: &mut [f64]) {
        match *self {
            Activation::Logistic { slope } => {
                for (d, &x) in dst.iter_mut().zip(src) {
                    *d = 1.0 / (1.0 + (-slope * x).exp());
                }
            }
            Activation::Tanh => {
                for (d, &x) in dst.iter_mut().zip(src) {
                    *d = x.tanh();
                }
            }
            Activation::Relu => {
                for (d, &x) in dst.iter_mut().zip(src) {
                    *d = x.max(0.0);
                }
            }
            Activation::LeakyRelu { alpha } => {
                for (d, &x) in dst.iter_mut().zip(src) {
                    *d = if x >= 0.0 { x } else { alpha * x };
                }
            }
            Activation::Identity => {
                for (d, &x) in dst.iter_mut().zip(src) {
                    *d = x;
                }
            }
            Activation::Softplus => {
                for (d, &x) in dst.iter_mut().zip(src) {
                    *d = x.max(0.0) + (-x.abs()).exp().ln_1p();
                }
            }
            Activation::HardLimiter => {
                for (d, &x) in dst.iter_mut().zip(src) {
                    *d = if x >= 0.0 { 1.0 } else { 0.0 };
                }
            }
        }
    }

    /// Element-wise `delta[i] *= derivative(pre[i], acts[i])` over whole
    /// slices — the batched-backprop form of [`Activation::derivative`].
    /// Matching on the variant once per slice (instead of per element)
    /// lets the per-variant loops vectorize; each element's arithmetic is
    /// bit-identical to the scalar call.
    pub fn mul_derivative_slice(&self, pre: &[f64], acts: &[f64], delta: &mut [f64]) {
        match *self {
            Activation::Logistic { slope } => {
                for (d, &fx) in delta.iter_mut().zip(acts) {
                    *d *= slope * fx * (1.0 - fx);
                }
            }
            Activation::Tanh => {
                for (d, &fx) in delta.iter_mut().zip(acts) {
                    *d *= 1.0 - fx * fx;
                }
            }
            Activation::Relu => {
                for (d, &x) in delta.iter_mut().zip(pre) {
                    *d *= if x > 0.0 { 1.0 } else { 0.0 };
                }
            }
            Activation::LeakyRelu { alpha } => {
                for (d, &x) in delta.iter_mut().zip(pre) {
                    *d *= if x > 0.0 { 1.0 } else { alpha };
                }
            }
            Activation::Identity => {
                for d in delta.iter_mut() {
                    *d *= 1.0;
                }
            }
            Activation::Softplus => {
                for (d, &x) in delta.iter_mut().zip(pre) {
                    *d *= 1.0 / (1.0 + (-x).exp());
                }
            }
            Activation::HardLimiter => {
                for d in delta.iter_mut() {
                    *d *= 0.0;
                }
            }
        }
    }

    /// The range `(min, max)` of the activation's output, using infinities
    /// for unbounded sides.
    pub fn output_range(&self) -> (f64, f64) {
        match *self {
            Activation::Logistic { .. } | Activation::HardLimiter => (0.0, 1.0),
            Activation::Tanh => (-1.0, 1.0),
            Activation::Relu | Activation::Softplus => (0.0, f64::INFINITY),
            Activation::LeakyRelu { .. } | Activation::Identity => {
                (f64::NEG_INFINITY, f64::INFINITY)
            }
        }
    }

    /// Returns `true` if the activation has a useful gradient everywhere it
    /// is typically evaluated (i.e. it can be trained by back-propagation).
    pub fn is_trainable(&self) -> bool {
        !matches!(self, Activation::HardLimiter)
    }
}

impl Default for Activation {
    /// The paper's default: the logistic sigmoid with slope 1.
    fn default() -> Self {
        Activation::logistic()
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Activation::Logistic { slope } => write!(f, "logistic({slope})"),
            Activation::Tanh => write!(f, "tanh"),
            Activation::Relu => write!(f, "relu"),
            Activation::LeakyRelu { alpha } => write!(f, "leaky_relu({alpha})"),
            Activation::Identity => write!(f, "identity"),
            Activation::Softplus => write!(f, "softplus"),
            Activation::HardLimiter => write!(f, "hard_limiter"),
        }
    }
}

impl FromStr for Activation {
    type Err = NnError;

    /// Parses the format produced by `Display`, e.g. `logistic(1)`,
    /// `tanh`, `leaky_relu(0.01)`.
    fn from_str(s: &str) -> Result<Self, NnError> {
        let s = s.trim();
        let parse_arg = |s: &str, prefix: &str| -> Option<f64> {
            s.strip_prefix(prefix)?
                .strip_prefix('(')?
                .strip_suffix(')')?
                .parse()
                .ok()
        };
        match s {
            "tanh" => Ok(Activation::Tanh),
            "relu" => Ok(Activation::Relu),
            "identity" => Ok(Activation::Identity),
            "softplus" => Ok(Activation::Softplus),
            "hard_limiter" => Ok(Activation::HardLimiter),
            _ => {
                if let Some(slope) = parse_arg(s, "logistic") {
                    Activation::logistic_with_slope(slope)
                } else if let Some(alpha) = parse_arg(s, "leaky_relu") {
                    Ok(Activation::LeakyRelu { alpha })
                } else {
                    Err(NnError::Parse {
                        line: 0,
                        reason: format!("unknown activation `{s}`"),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    /// Central-difference numerical derivative.
    fn numeric_derivative(act: &Activation, x: f64) -> f64 {
        let h = 1e-6;
        (act.apply(x + h) - act.apply(x - h)) / (2.0 * h)
    }

    #[test]
    fn logistic_midpoint_and_symmetry() {
        let f = Activation::logistic();
        assert!((f.apply(0.0) - 0.5).abs() < EPS);
        assert!((f.apply(2.0) + f.apply(-2.0) - 1.0).abs() < EPS);
    }

    #[test]
    fn logistic_slope_sharpens() {
        // Paper Fig. 2: larger |a| approaches a hard limiter.
        let shallow = Activation::logistic_with_slope(0.5).unwrap();
        let steep = Activation::logistic_with_slope(20.0).unwrap();
        assert!(steep.apply(0.5) > 0.99);
        assert!(shallow.apply(0.5) < 0.6);
        assert!((steep.apply(-0.5)) < 0.01);
    }

    #[test]
    fn logistic_rejects_bad_slope() {
        assert!(Activation::logistic_with_slope(0.0).is_err());
        assert!(Activation::logistic_with_slope(-2.0).is_err());
        assert!(Activation::logistic_with_slope(f64::NAN).is_err());
    }

    #[test]
    fn derivatives_match_numeric() {
        let acts = [
            Activation::logistic(),
            Activation::logistic_with_slope(3.0).unwrap(),
            Activation::Tanh,
            Activation::LeakyRelu { alpha: 0.05 },
            Activation::Identity,
            Activation::Softplus,
        ];
        for act in acts {
            for &x in &[-2.0, -0.7, -0.1, 0.3, 1.1, 2.5] {
                let fx = act.apply(x);
                let analytic = act.derivative(x, fx);
                let numeric = numeric_derivative(&act, x);
                assert!(
                    (analytic - numeric).abs() < 1e-5,
                    "{act} at {x}: analytic {analytic} numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_away_from_kink() {
        let act = Activation::Relu;
        assert_eq!(act.derivative(2.0, 2.0), 1.0);
        assert_eq!(act.derivative(-2.0, 0.0), 0.0);
    }

    #[test]
    fn hard_limiter_bisects() {
        // §2.1: a perceptron with a hard limiter bisects the sample space.
        let act = Activation::HardLimiter;
        assert_eq!(act.apply(0.5), 1.0);
        assert_eq!(act.apply(-0.5), 0.0);
        assert_eq!(act.derivative(1.0, 1.0), 0.0);
        assert!(!act.is_trainable());
    }

    #[test]
    fn output_ranges_contain_samples() {
        let acts = [
            Activation::logistic(),
            Activation::Tanh,
            Activation::Relu,
            Activation::leaky_relu(),
            Activation::Identity,
            Activation::Softplus,
            Activation::HardLimiter,
        ];
        for act in acts {
            let (lo, hi) = act.output_range();
            for &x in &[-5.0, -1.0, 0.0, 1.0, 5.0] {
                let y = act.apply(x);
                assert!(y >= lo - EPS && y <= hi + EPS, "{act} {x} -> {y}");
            }
        }
    }

    #[test]
    fn softplus_is_stable_for_large_inputs() {
        let act = Activation::Softplus;
        assert!((act.apply(100.0) - 100.0).abs() < 1e-9);
        assert!(act.apply(-100.0).abs() < 1e-9);
        assert!(act.apply(700.0).is_finite());
    }

    #[test]
    fn apply_slice_in_place() {
        let act = Activation::Relu;
        let mut v = vec![-1.0, 2.0, -3.0];
        act.apply_slice(&mut v);
        assert_eq!(v, vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn display_fromstr_roundtrip() {
        let acts = [
            Activation::logistic(),
            Activation::logistic_with_slope(2.5).unwrap(),
            Activation::Tanh,
            Activation::Relu,
            Activation::LeakyRelu { alpha: 0.02 },
            Activation::Identity,
            Activation::Softplus,
            Activation::HardLimiter,
        ];
        for act in acts {
            let s = act.to_string();
            let back: Activation = s.parse().unwrap();
            assert_eq!(back, act, "roundtrip through `{s}`");
        }
    }

    #[test]
    fn fromstr_rejects_garbage() {
        assert!("sigmoidish".parse::<Activation>().is_err());
        assert!("logistic(abc)".parse::<Activation>().is_err());
        assert!("logistic(-1)".parse::<Activation>().is_err());
    }

    #[test]
    fn default_is_logistic() {
        assert_eq!(Activation::default(), Activation::logistic());
    }

    #[test]
    fn tanh_is_odd() {
        let act = Activation::Tanh;
        assert!((act.apply(1.3) + act.apply(-1.3)).abs() < EPS);
    }
}
