//! A from-scratch multilayer-perceptron (MLP) library.
//!
//! This crate implements exactly the machinery the paper's methodology
//! needs — no more, no less:
//!
//! - [`Activation`] — the slope-parameterized logistic function of the
//!   paper's Figure 2 plus the usual alternatives.
//! - [`Mlp`] / [`MlpBuilder`] — dense feed-forward networks with
//!   back-propagation ([`Mlp::batch_gradient`]).
//! - [`Loss`] — mean-squared error and friends.
//! - [`optimizer`] — plain gradient descent (the paper's method) plus
//!   momentum, RMSProp and Adam.
//! - [`Trainer`] — mini-batch training with the paper's *termination
//!   threshold* (deliberate loose fitting, §3.3) and patience-based early
//!   stopping.
//! - [`LogarithmicNetwork`] — the unbounded-approximation variant the
//!   paper cites (ref \[23\]) when discussing the extrapolation limitation.
//! - [`RbfNetwork`] — the radial-basis-function family §2.1 names as the
//!   other common function approximator (k-means centers + ridge output).
//! - [`gradcheck`] — finite-difference gradient verification.
//! - [`Workspace`] — reusable scratch buffers making batched training
//!   and inference allocation-free ([`Mlp::batch_gradient_with`],
//!   [`Mlp::forward_batch_with`]), bit-identical to the per-sample path.
//!
//! # Examples
//!
//! Fit y = x² on a few points:
//!
//! ```
//! use wlc_math::Matrix;
//! use wlc_nn::{Activation, Loss, MlpBuilder, TrainConfig, Trainer};
//!
//! let xs = Matrix::from_rows(&[&[-1.0], &[-0.5], &[0.0], &[0.5], &[1.0]]).unwrap();
//! let ys = Matrix::from_rows(&[&[1.0], &[0.25], &[0.0], &[0.25], &[1.0]]).unwrap();
//!
//! let mut mlp = MlpBuilder::new(1)
//!     .hidden(8, Activation::tanh())
//!     .output(1, Activation::identity())
//!     .seed(7)
//!     .build()
//!     .unwrap();
//!
//! let config = TrainConfig::new()
//!     .max_epochs(2000)
//!     .learning_rate(0.05)
//!     .loss(Loss::MeanSquared);
//! let report = Trainer::new(config).fit(&mut mlp, &xs, &ys).unwrap();
//! assert!(report.final_train_loss < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod checkpoint;
mod error;
pub mod gradcheck;
mod init;
mod layer;
mod lognet;
mod loss;
mod mlp;
pub mod optimizer;
mod rbf;
mod schedule;
mod serialize;
mod train;
mod workspace;

pub use activation::Activation;
pub use checkpoint::Checkpoint;
pub use error::NnError;
pub use init::Initializer;
pub use layer::DenseLayer;
pub use lognet::LogarithmicNetwork;
pub use loss::Loss;
pub use mlp::{Mlp, MlpBuilder};
pub use optimizer::{Optimizer, OptimizerKind};
pub use rbf::RbfNetwork;
pub use schedule::LearningRateSchedule;
pub use train::{StopReason, TrainConfig, TrainReport, Trainer};
pub use workspace::Workspace;
