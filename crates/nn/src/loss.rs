use std::fmt;

use wlc_math::Matrix;

use crate::NnError;

/// A training loss over one prediction/target pair.
///
/// The paper trains "with a goal to minimize the error between the
/// predicted value and the actual value, i.e. ‖Ŷ − Y‖" (§2.2); that is
/// [`Loss::MeanSquared`]. The others are standard robust alternatives
/// exercised by the ablation benchmarks.
///
/// # Examples
///
/// ```
/// use wlc_nn::Loss;
///
/// let loss = Loss::MeanSquared;
/// let v = loss.value(&[1.0, 2.0], &[1.0, 4.0]).unwrap();
/// assert!((v - 2.0).abs() < 1e-12); // ((0)^2 + (2)^2) / 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Loss {
    /// Mean squared error `mean((ŷ − y)²)`.
    MeanSquared,
    /// Mean absolute error `mean(|ŷ − y|)`.
    MeanAbsolute,
    /// Huber loss: quadratic within `delta` of the target, linear beyond.
    Huber {
        /// Transition point between the quadratic and linear regimes.
        delta: f64,
    },
}

impl Loss {
    /// Creates a Huber loss.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidHyperParameter`] unless `delta > 0`.
    pub fn huber(delta: f64) -> Result<Self, NnError> {
        if !(delta.is_finite() && delta > 0.0) {
            return Err(NnError::InvalidHyperParameter {
                name: "delta",
                reason: "must be positive and finite",
            });
        }
        Ok(Loss::Huber { delta })
    }

    /// Loss value for a prediction/target pair (averaged over outputs).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for unequal lengths or empty
    /// inputs.
    pub fn value(&self, predicted: &[f64], target: &[f64]) -> Result<f64, NnError> {
        self.check(predicted, target)?;
        let n = predicted.len() as f64;
        let total: f64 = predicted
            .iter()
            .zip(target.iter())
            .map(|(&p, &t)| self.pointwise(p - t))
            .sum();
        Ok(total / n)
    }

    /// Gradient of the loss with respect to each predicted value.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for unequal lengths or empty
    /// inputs.
    pub fn gradient(&self, predicted: &[f64], target: &[f64]) -> Result<Vec<f64>, NnError> {
        self.check(predicted, target)?;
        let n = predicted.len() as f64;
        Ok(predicted
            .iter()
            .zip(target.iter())
            .map(|(&p, &t)| self.pointwise_grad(p - t) / n)
            .collect())
    }

    /// Writes the gradient of the loss into `out` — the allocation-free
    /// variant of [`Loss::gradient`], with bit-identical arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for unequal lengths, empty
    /// inputs, or an `out` buffer of the wrong length.
    pub fn gradient_into(
        &self,
        predicted: &[f64],
        target: &[f64],
        out: &mut [f64],
    ) -> Result<(), NnError> {
        self.check(predicted, target)?;
        if out.len() != predicted.len() {
            return Err(NnError::ShapeMismatch {
                expected: predicted.len(),
                actual: out.len(),
                what: "gradient buffer length",
            });
        }
        let n = predicted.len() as f64;
        for ((o, &p), &t) in out.iter_mut().zip(predicted).zip(target) {
            *o = self.pointwise_grad(p - t) / n;
        }
        Ok(())
    }

    /// Row-batched loss value + gradient: adds up each row's
    /// [`Loss::value`] (rows ascending) while writing each row's
    /// [`Loss::gradient_into`] result into the matching row of
    /// `grad_out`. Bit-identical to the per-row calls — this exists so
    /// the batched training hot path pays the shape checks and the
    /// variant dispatch once per minibatch instead of twice per sample.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless all three matrices share
    /// one non-empty shape.
    pub fn value_gradient_rows(
        &self,
        predicted: &Matrix,
        target: &Matrix,
        grad_out: &mut Matrix,
    ) -> Result<f64, NnError> {
        if predicted.shape() != target.shape() || predicted.cols() == 0 {
            return Err(NnError::ShapeMismatch {
                expected: target.cols(),
                actual: predicted.cols(),
                what: "prediction width",
            });
        }
        if grad_out.shape() != predicted.shape() {
            return Err(NnError::ShapeMismatch {
                expected: predicted.cols(),
                actual: grad_out.cols(),
                what: "gradient buffer length",
            });
        }
        let n = predicted.cols() as f64;
        let mut total = 0.0;
        for r in 0..predicted.rows() {
            let p = predicted.row(r);
            let t = target.row(r);
            let o = grad_out.row_mut(r);
            let mut row_total = 0.0;
            for j in 0..p.len() {
                let d = p[j] - t[j];
                row_total += self.pointwise(d);
                o[j] = self.pointwise_grad(d) / n;
            }
            total += row_total / n;
        }
        Ok(total)
    }

    /// Sum of per-row [`Loss::value`]s (rows ascending) of `predicted`
    /// against rows `t_r0..t_r0 + predicted.rows()` of `targets` — the
    /// batched form used by strip-mined whole-dataset evaluation, where
    /// the predictions live in a strip-sized scratch matrix but the
    /// targets are the full dataset. Bit-identical to the per-row calls.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for a width mismatch, a zero
    /// width, or a row range outside `targets`.
    pub fn value_rows(
        &self,
        predicted: &Matrix,
        targets: &Matrix,
        t_r0: usize,
    ) -> Result<f64, NnError> {
        let (m, width) = predicted.shape();
        if targets.cols() != width || width == 0 || t_r0 + m > targets.rows() {
            return Err(NnError::ShapeMismatch {
                expected: targets.cols(),
                actual: width,
                what: "prediction width",
            });
        }
        let n = width as f64;
        let mut total = 0.0;
        for r in 0..m {
            let p = predicted.row(r);
            let t = targets.row(t_r0 + r);
            let mut row_total = 0.0;
            for j in 0..p.len() {
                row_total += self.pointwise(p[j] - t[j]);
            }
            total += row_total / n;
        }
        Ok(total)
    }

    fn check(&self, predicted: &[f64], target: &[f64]) -> Result<(), NnError> {
        if predicted.len() != target.len() || predicted.is_empty() {
            return Err(NnError::ShapeMismatch {
                expected: target.len(),
                actual: predicted.len(),
                what: "prediction width",
            });
        }
        Ok(())
    }

    /// Per-component loss of a residual `r = ŷ − y`.
    fn pointwise(&self, r: f64) -> f64 {
        match *self {
            Loss::MeanSquared => r * r,
            Loss::MeanAbsolute => r.abs(),
            Loss::Huber { delta } => {
                if r.abs() <= delta {
                    0.5 * r * r
                } else {
                    delta * (r.abs() - 0.5 * delta)
                }
            }
        }
    }

    /// Per-component gradient d loss / d r.
    fn pointwise_grad(&self, r: f64) -> f64 {
        match *self {
            Loss::MeanSquared => 2.0 * r,
            Loss::MeanAbsolute => {
                if r > 0.0 {
                    1.0
                } else if r < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            Loss::Huber { delta } => {
                if r.abs() <= delta {
                    r
                } else {
                    delta * r.signum()
                }
            }
        }
    }
}

impl Default for Loss {
    /// Mean squared error, the paper's criterion.
    fn default() -> Self {
        Loss::MeanSquared
    }
}

impl fmt::Display for Loss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Loss::MeanSquared => write!(f, "mse"),
            Loss::MeanAbsolute => write!(f, "mae"),
            Loss::Huber { delta } => write!(f, "huber({delta})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(loss: &Loss, predicted: &[f64], target: &[f64], i: usize) -> f64 {
        let h = 1e-6;
        let mut plus = predicted.to_vec();
        let mut minus = predicted.to_vec();
        plus[i] += h;
        minus[i] -= h;
        (loss.value(&plus, target).unwrap() - loss.value(&minus, target).unwrap()) / (2.0 * h)
    }

    #[test]
    fn mse_known_value() {
        let l = Loss::MeanSquared;
        assert_eq!(l.value(&[0.0], &[3.0]).unwrap(), 9.0);
        assert_eq!(l.value(&[1.0, 1.0], &[1.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn mae_known_value() {
        let l = Loss::MeanAbsolute;
        assert_eq!(l.value(&[0.0, 4.0], &[3.0, 2.0]).unwrap(), 2.5);
    }

    #[test]
    fn huber_transitions() {
        let l = Loss::huber(1.0).unwrap();
        // Inside delta: quadratic.
        assert!((l.value(&[0.5], &[0.0]).unwrap() - 0.125).abs() < 1e-12);
        // Outside delta: linear.
        assert!((l.value(&[3.0], &[0.0]).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn huber_rejects_bad_delta() {
        assert!(Loss::huber(0.0).is_err());
        assert!(Loss::huber(-1.0).is_err());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn gradients_match_numeric() {
        let losses = [Loss::MeanSquared, Loss::huber(0.7).unwrap()];
        let predicted = [0.3, -1.2, 2.0];
        let target = [0.0, 0.5, 1.8];
        for l in losses {
            let g = l.gradient(&predicted, &target).unwrap();
            for i in 0..predicted.len() {
                let n = numeric_grad(&l, &predicted, &target, i);
                assert!(
                    (g[i] - n).abs() < 1e-5,
                    "{l} component {i}: {} vs {n}",
                    g[i]
                );
            }
        }
    }

    #[test]
    fn mae_gradient_signs() {
        let l = Loss::MeanAbsolute;
        let g = l.gradient(&[2.0, -2.0, 1.0], &[1.0, 1.0, 1.0]).unwrap();
        assert!(g[0] > 0.0);
        assert!(g[1] < 0.0);
        assert_eq!(g[2], 0.0);
    }

    #[test]
    fn gradient_into_is_bitwise_gradient() {
        let losses = [
            Loss::MeanSquared,
            Loss::MeanAbsolute,
            Loss::huber(0.7).unwrap(),
        ];
        let predicted = [0.3, -1.2, 2.0];
        let target = [0.0, 0.5, 1.8];
        for l in losses {
            let expect = l.gradient(&predicted, &target).unwrap();
            let mut out = [f64::NAN; 3];
            l.gradient_into(&predicted, &target, &mut out).unwrap();
            assert_eq!(out.as_slice(), expect.as_slice(), "{l}");
        }
        let mut short = [0.0; 2];
        assert!(Loss::MeanSquared
            .gradient_into(&predicted, &target, &mut short)
            .is_err());
    }

    #[test]
    fn shape_mismatch_detected() {
        let l = Loss::MeanSquared;
        assert!(l.value(&[1.0], &[1.0, 2.0]).is_err());
        assert!(l.gradient(&[], &[]).is_err());
    }

    #[test]
    fn zero_loss_zero_gradient_at_optimum() {
        let l = Loss::MeanSquared;
        let g = l.gradient(&[1.0, 2.0], &[1.0, 2.0]).unwrap();
        assert!(g.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn display_tokens() {
        assert_eq!(Loss::MeanSquared.to_string(), "mse");
        assert_eq!(Loss::huber(0.5).unwrap().to_string(), "huber(0.5)");
    }

    #[test]
    fn default_is_mse() {
        assert_eq!(Loss::default(), Loss::MeanSquared);
    }
}
