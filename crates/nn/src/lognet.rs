use wlc_math::Matrix;

use crate::{Mlp, NnError, TrainReport, Trainer};

/// A logarithmic network for unbounded non-linear approximation.
///
/// Plain MLPs "cannot be used for extrapolation — the prediction accuracy
/// of MLPs drops rapidly outside the range of training data" (paper §5.3,
/// citing Hines '96, ref \[23\]). This variant wraps an [`Mlp`] between a
/// signed-logarithmic input transform and (optionally) a matching output
/// transform, so that power-law and multiplicative relationships become
/// near-linear in the transformed space and extrapolate far more
/// gracefully.
///
/// The transforms are
///
/// - input:  `u = sign(x) · ln(1 + |x|)`
/// - output: `y = sign(v) · (exp(|v|) − 1)` (inverse of the input
///   transform), applied when `log_outputs` is enabled.
///
/// # Examples
///
/// ```
/// use wlc_math::Matrix;
/// use wlc_nn::{Activation, LogarithmicNetwork, MlpBuilder, TrainConfig, Trainer};
///
/// let mlp = MlpBuilder::new(1)
///     .hidden(6, Activation::tanh())
///     .output(1, Activation::identity())
///     .seed(1)
///     .build()?;
/// let mut net = LogarithmicNetwork::new(mlp, true);
///
/// // y = x^2 on a small range...
/// let xs = Matrix::from_rows(&[&[1.0], &[2.0], &[4.0], &[8.0]]).unwrap();
/// let ys = Matrix::from_rows(&[&[1.0], &[4.0], &[16.0], &[64.0]]).unwrap();
/// let trainer = Trainer::new(TrainConfig::new().max_epochs(200).learning_rate(0.1));
/// net.fit(&trainer, &xs, &ys)?;
/// let pred = net.predict(&[4.0])?;
/// assert!(pred[0] > 0.0);
/// # Ok::<(), wlc_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogarithmicNetwork {
    mlp: Mlp,
    log_outputs: bool,
}

/// Signed logarithmic squash: `sign(x) · ln(1 + |x|)`.
fn slog(x: f64) -> f64 {
    x.signum() * x.abs().ln_1p()
}

/// Inverse of [`slog`]: `sign(u) · (exp(|u|) − 1)`.
fn slog_inv(u: f64) -> f64 {
    u.signum() * (u.abs().exp() - 1.0)
}

impl LogarithmicNetwork {
    /// Wraps an MLP. When `log_outputs` is true, targets are fitted in
    /// log-space and predictions are transformed back.
    pub fn new(mlp: Mlp, log_outputs: bool) -> Self {
        LogarithmicNetwork { mlp, log_outputs }
    }

    /// The wrapped MLP.
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Whether outputs are fitted in log-space.
    pub fn log_outputs(&self) -> bool {
        self.log_outputs
    }

    /// Number of input features.
    pub fn inputs(&self) -> usize {
        self.mlp.inputs()
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.mlp.outputs()
    }

    /// Applies the input transform to every element of a matrix.
    fn transform_inputs(xs: &Matrix) -> Matrix {
        xs.map(slog)
    }

    /// Trains the wrapped MLP on log-transformed data.
    ///
    /// # Errors
    ///
    /// As for [`Trainer::fit`].
    pub fn fit(
        &mut self,
        trainer: &Trainer,
        xs: &Matrix,
        ys: &Matrix,
    ) -> Result<TrainReport, NnError> {
        let tx = Self::transform_inputs(xs);
        let ty = if self.log_outputs {
            ys.map(slog)
        } else {
            ys.clone()
        };
        trainer.fit(&mut self.mlp, &tx, &ty)
    }

    /// Predicts for a single raw (untransformed) input vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `x.len() != self.inputs()`.
    pub fn predict(&self, x: &[f64]) -> Result<Vec<f64>, NnError> {
        let tx: Vec<f64> = x.iter().map(|&v| slog(v)).collect();
        let mut out = self.mlp.forward(&tx)?;
        if self.log_outputs {
            for v in &mut out {
                *v = slog_inv(*v);
            }
        }
        Ok(out)
    }

    /// Batch prediction; one row per input row.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `xs.cols() != self.inputs()`.
    pub fn predict_batch(&self, xs: &Matrix) -> Result<Matrix, NnError> {
        let mut out = Matrix::zeros(xs.rows(), self.outputs());
        for r in 0..xs.rows() {
            let y = self.predict(xs.row(r))?;
            out.row_mut(r).copy_from_slice(&y);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, MlpBuilder, OptimizerKind, TrainConfig};

    #[test]
    fn slog_roundtrip() {
        for &x in &[-100.0, -1.0, -0.1, 0.0, 0.1, 1.0, 100.0, 1e6] {
            assert!((slog_inv(slog(x)) - x).abs() < 1e-6 * x.abs().max(1.0));
        }
    }

    #[test]
    fn slog_is_monotone_and_odd() {
        assert!(slog(2.0) > slog(1.0));
        assert!((slog(-3.0) + slog(3.0)).abs() < 1e-12);
        assert_eq!(slog(0.0), 0.0);
    }

    fn power_law_data() -> (Matrix, Matrix) {
        // y = 2 · x^1.5 sampled on x in [1, 16].
        let xs_vals: Vec<f64> = (1..=16).map(|i| i as f64).collect();
        let rows: Vec<Vec<f64>> = xs_vals.iter().map(|&x| vec![x]).collect();
        let ys: Vec<Vec<f64>> = xs_vals.iter().map(|&x| vec![2.0 * x.powf(1.5)]).collect();
        let xr: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let yr: Vec<&[f64]> = ys.iter().map(|r| r.as_slice()).collect();
        (
            Matrix::from_rows(&xr).unwrap(),
            Matrix::from_rows(&yr).unwrap(),
        )
    }

    fn trained_lognet() -> LogarithmicNetwork {
        let (xs, ys) = power_law_data();
        let mlp = MlpBuilder::new(1)
            .hidden(8, Activation::tanh())
            .output(1, Activation::identity())
            .seed(3)
            .build()
            .unwrap();
        let mut net = LogarithmicNetwork::new(mlp, true);
        let trainer = Trainer::new(
            TrainConfig::new()
                .max_epochs(4000)
                .learning_rate(0.02)
                .optimizer(OptimizerKind::adam()),
        );
        net.fit(&trainer, &xs, &ys).unwrap();
        net
    }

    #[test]
    fn fits_power_law_in_range() {
        let net = trained_lognet();
        for &x in &[2.0, 5.0, 10.0, 15.0] {
            let pred = net.predict(&[x]).unwrap()[0];
            let actual = 2.0 * x.powf(1.5);
            let rel = (pred - actual).abs() / actual;
            assert!(rel < 0.15, "x={x}: pred {pred} vs {actual}");
        }
    }

    #[test]
    fn extrapolates_power_law_reasonably() {
        // 4x beyond the training range — a plain MLP on raw values would
        // saturate; the log-net should stay within a factor ~2.
        let net = trained_lognet();
        let x = 64.0;
        let pred = net.predict(&[x]).unwrap()[0];
        let actual = 2.0 * x.powf(1.5);
        assert!(
            pred > actual * 0.4 && pred < actual * 2.5,
            "pred {pred} vs actual {actual}"
        );
    }

    #[test]
    fn predict_batch_matches_predict() {
        let net = trained_lognet();
        let xs = Matrix::from_rows(&[&[2.0], &[3.0]]).unwrap();
        let batch = net.predict_batch(&xs).unwrap();
        for r in 0..2 {
            assert_eq!(batch.row(r)[0], net.predict(xs.row(r)).unwrap()[0]);
        }
    }

    #[test]
    fn raw_output_mode_skips_inverse() {
        let mlp = MlpBuilder::new(1)
            .output(1, Activation::identity())
            .seed(1)
            .build()
            .unwrap();
        let raw = LogarithmicNetwork::new(mlp.clone(), false);
        let logged = LogarithmicNetwork::new(mlp, true);
        let raw_pred = raw.predict(&[5.0]).unwrap()[0];
        let logged_pred = logged.predict(&[5.0]).unwrap()[0];
        assert!((slog_inv(raw_pred) - logged_pred).abs() < 1e-12);
    }

    #[test]
    fn shape_checked() {
        let mlp = MlpBuilder::new(2)
            .output(1, Activation::identity())
            .seed(1)
            .build()
            .unwrap();
        let net = LogarithmicNetwork::new(mlp, true);
        assert!(net.predict(&[1.0]).is_err());
        assert_eq!(net.inputs(), 2);
        assert_eq!(net.outputs(), 1);
        assert!(net.log_outputs());
    }
}
