use wlc_hot::wlc_hot;
use wlc_math::rng::Xoshiro256;
use wlc_math::Matrix;

use crate::{Activation, Initializer, NnError};

/// A fully-connected layer: `a = f(W·x + b)`.
///
/// The weight matrix is `outputs × inputs`; biases are per-output. This
/// corresponds to the paper's perceptron (§2.1): each row of `W` together
/// with its bias defines one perceptron's hyperplane, and `f` is the
/// activation ("squashing") function.
///
/// # Examples
///
/// ```
/// use wlc_nn::{Activation, DenseLayer};
/// use wlc_math::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::seed_from(3);
/// let layer = DenseLayer::new(2, 4, Activation::tanh(), Default::default(), &mut rng)?;
/// let out = layer.forward(&[0.5, -0.5])?;
/// assert_eq!(out.len(), 4);
/// # Ok::<(), wlc_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    weights: Matrix,
    biases: Vec<f64>,
    activation: Activation,
}

impl DenseLayer {
    /// Creates a layer with randomly initialized weights and zero biases.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] if `inputs` or `outputs` is zero.
    pub fn new(
        inputs: usize,
        outputs: usize,
        activation: Activation,
        init: Initializer,
        rng: &mut Xoshiro256,
    ) -> Result<Self, NnError> {
        if inputs == 0 {
            return Err(NnError::ZeroDimension { which: "inputs" });
        }
        if outputs == 0 {
            return Err(NnError::ZeroDimension { which: "outputs" });
        }
        let weights = Matrix::from_fn(outputs, inputs, |_, _| init.sample(rng, inputs, outputs));
        Ok(DenseLayer {
            weights,
            biases: vec![0.0; outputs],
            activation,
        })
    }

    /// Resamples every weight from `init` and zeroes the biases — a fresh
    /// random start on the existing topology (divergence recovery).
    pub fn reinitialize(&mut self, init: Initializer, rng: &mut Xoshiro256) {
        let (inputs, outputs) = (self.inputs(), self.outputs());
        self.weights = Matrix::from_fn(outputs, inputs, |_, _| init.sample(rng, inputs, outputs));
        self.biases = vec![0.0; outputs];
    }

    /// Creates a layer from explicit weights and biases.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `biases.len() != weights.rows()`
    /// and [`NnError::ZeroDimension`] for degenerate shapes.
    pub fn from_parts(
        weights: Matrix,
        biases: Vec<f64>,
        activation: Activation,
    ) -> Result<Self, NnError> {
        if weights.rows() == 0 {
            return Err(NnError::ZeroDimension { which: "outputs" });
        }
        if weights.cols() == 0 {
            return Err(NnError::ZeroDimension { which: "inputs" });
        }
        if biases.len() != weights.rows() {
            return Err(NnError::ShapeMismatch {
                expected: weights.rows(),
                actual: biases.len(),
                what: "bias length",
            });
        }
        Ok(DenseLayer {
            weights,
            biases,
            activation,
        })
    }

    /// Number of inputs this layer accepts.
    pub fn inputs(&self) -> usize {
        self.weights.cols()
    }

    /// Number of outputs (perceptrons) in this layer.
    pub fn outputs(&self) -> usize {
        self.weights.rows()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Borrow of the weight matrix (`outputs × inputs`).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Borrow of the bias vector.
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// Total number of trainable parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.biases.len()
    }

    /// Computes the pre-activation `z = W·x + b`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `input.len() != self.inputs()`.
    pub fn pre_activation(&self, input: &[f64]) -> Result<Vec<f64>, NnError> {
        if input.len() != self.inputs() {
            return Err(NnError::ShapeMismatch {
                expected: self.inputs(),
                actual: input.len(),
                what: "input width",
            });
        }
        let mut z = self.weights.matvec(input)?;
        for (zi, bi) in z.iter_mut().zip(self.biases.iter()) {
            *zi += bi;
        }
        Ok(z)
    }

    /// Writes the pre-activation `z = W·x + b` into `out` without
    /// allocating; bit-identical to [`DenseLayer::pre_activation`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `input.len() != self.inputs()`
    /// or `out.len() != self.outputs()`.
    #[wlc_hot]
    pub fn pre_activation_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), NnError> {
        if input.len() != self.inputs() {
            return Err(NnError::ShapeMismatch {
                expected: self.inputs(),
                actual: input.len(),
                what: "input width",
            });
        }
        if out.len() != self.outputs() {
            return Err(NnError::ShapeMismatch {
                expected: self.outputs(),
                actual: out.len(),
                what: "pre-activation buffer length",
            });
        }
        for (r, (o, &bi)) in out.iter_mut().zip(self.biases.iter()).enumerate() {
            let mut acc = 0.0;
            for (&w, &x) in self.weights.row(r).iter().zip(input) {
                acc += w * x;
            }
            *o = acc + bi;
        }
        Ok(())
    }

    /// Full forward pass `f(W·x + b)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `input.len() != self.inputs()`.
    pub fn forward(&self, input: &[f64]) -> Result<Vec<f64>, NnError> {
        let mut z = self.pre_activation(input)?;
        self.activation.apply_slice(&mut z);
        Ok(z)
    }

    /// Writes `f(W·x + b)` into `out` without allocating; bit-identical
    /// to [`DenseLayer::forward`].
    ///
    /// # Errors
    ///
    /// As for [`DenseLayer::pre_activation_into`].
    #[wlc_hot]
    pub fn forward_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), NnError> {
        self.pre_activation_into(input, out)?;
        self.activation.apply_slice(out);
        Ok(())
    }

    /// Copies the parameters (row-major weights, then biases) into `out`.
    pub(crate) fn write_params(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(self.weights.as_slice());
        out.extend_from_slice(&self.biases);
    }

    /// Reads parameters back from a flat slice; returns the number consumed.
    pub(crate) fn read_params(&mut self, flat: &[f64]) -> usize {
        let w_len = self.weights.rows() * self.weights.cols();
        self.weights.as_mut_slice().copy_from_slice(&flat[..w_len]);
        let b_len = self.biases.len();
        self.biases.copy_from_slice(&flat[w_len..w_len + b_len]);
        w_len + b_len
    }

    /// Mutable access for the training loop.
    pub(crate) fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Mutable bias access for the training loop.
    pub(crate) fn biases_mut(&mut self) -> &mut [f64] {
        &mut self.biases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from(42)
    }

    #[test]
    fn new_validates_dimensions() {
        let mut r = rng();
        assert!(matches!(
            DenseLayer::new(0, 3, Activation::tanh(), Initializer::default(), &mut r),
            Err(NnError::ZeroDimension { which: "inputs" })
        ));
        assert!(matches!(
            DenseLayer::new(3, 0, Activation::tanh(), Initializer::default(), &mut r),
            Err(NnError::ZeroDimension { which: "outputs" })
        ));
    }

    #[test]
    fn forward_known_values() {
        let weights = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, -1.0]]).unwrap();
        let layer =
            DenseLayer::from_parts(weights, vec![1.0, 0.0], Activation::identity()).unwrap();
        let out = layer.forward(&[1.0, 1.0]).unwrap();
        assert_eq!(out, vec![4.0, -0.5]);
    }

    #[test]
    fn forward_applies_activation() {
        let weights = Matrix::from_rows(&[&[1.0]]).unwrap();
        let layer = DenseLayer::from_parts(weights, vec![0.0], Activation::Relu).unwrap();
        assert_eq!(layer.forward(&[-3.0]).unwrap(), vec![0.0]);
        assert_eq!(layer.forward(&[3.0]).unwrap(), vec![3.0]);
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mut r = rng();
        let layer =
            DenseLayer::new(3, 2, Activation::tanh(), Initializer::default(), &mut r).unwrap();
        assert!(matches!(
            layer.forward(&[1.0, 2.0]),
            Err(NnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn from_parts_validates_bias_length() {
        let weights = Matrix::zeros(2, 2);
        assert!(matches!(
            DenseLayer::from_parts(weights, vec![0.0], Activation::tanh()),
            Err(NnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn param_count_counts_weights_and_biases() {
        let mut r = rng();
        let layer =
            DenseLayer::new(3, 4, Activation::tanh(), Initializer::default(), &mut r).unwrap();
        assert_eq!(layer.param_count(), 3 * 4 + 4);
    }

    #[test]
    fn param_roundtrip() {
        let mut r = rng();
        let mut a =
            DenseLayer::new(3, 2, Activation::tanh(), Initializer::default(), &mut r).unwrap();
        let mut flat = Vec::new();
        a.write_params(&mut flat);
        assert_eq!(flat.len(), a.param_count());

        let mut b = DenseLayer::new(3, 2, Activation::tanh(), Initializer::Zeros, &mut r).unwrap();
        let consumed = b.read_params(&flat);
        assert_eq!(consumed, flat.len());
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.biases(), b.biases());
        // And reading into the original is a no-op.
        let before = a.clone();
        a.read_params(&flat);
        assert_eq!(a, before);
    }

    #[test]
    fn into_variants_are_bitwise_allocating_variants() {
        let mut r = rng();
        let layer =
            DenseLayer::new(5, 3, Activation::tanh(), Initializer::default(), &mut r).unwrap();
        let input = [0.3, -0.8, 1.5, 0.0, -0.1];
        let mut z = [f64::NAN; 3];
        layer.pre_activation_into(&input, &mut z).unwrap();
        assert_eq!(
            z.as_slice(),
            layer.pre_activation(&input).unwrap().as_slice()
        );
        let mut a = [f64::NAN; 3];
        layer.forward_into(&input, &mut a).unwrap();
        assert_eq!(a.as_slice(), layer.forward(&input).unwrap().as_slice());
        // Wrong widths are rejected, not panicked on.
        assert!(layer.pre_activation_into(&input[..3], &mut z).is_err());
        assert!(layer.forward_into(&input, &mut a[..2]).is_err());
    }

    #[test]
    fn pre_activation_excludes_activation() {
        let weights = Matrix::from_rows(&[&[2.0]]).unwrap();
        let layer = DenseLayer::from_parts(weights, vec![1.0], Activation::Relu).unwrap();
        assert_eq!(layer.pre_activation(&[-2.0]).unwrap(), vec![-3.0]);
        assert_eq!(layer.forward(&[-2.0]).unwrap(), vec![0.0]);
    }

    #[test]
    fn initialization_is_seeded() {
        let mut r1 = rng();
        let mut r2 = rng();
        let a = DenseLayer::new(4, 4, Activation::tanh(), Initializer::default(), &mut r1).unwrap();
        let b = DenseLayer::new(4, 4, Activation::tanh(), Initializer::default(), &mut r2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn new_layer_biases_are_zero() {
        let mut r = rng();
        let layer =
            DenseLayer::new(2, 3, Activation::tanh(), Initializer::default(), &mut r).unwrap();
        assert!(layer.biases().iter().all(|&b| b == 0.0));
    }
}
