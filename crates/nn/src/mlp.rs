use wlc_math::rng::{Seed, Xoshiro256};
use wlc_math::Matrix;

use crate::{Activation, DenseLayer, Initializer, Loss, NnError, Workspace};

/// A multilayer perceptron: a stack of [`DenseLayer`]s.
///
/// Matches the paper's §2.2: an input layer (not counted), one or more
/// hidden layers of perceptrons, and an output layer. For regression the
/// output layer conventionally uses [`Activation::Identity`] so predictions
/// are not squashed.
///
/// Construct with [`MlpBuilder`]:
///
/// ```
/// use wlc_nn::{Activation, MlpBuilder};
///
/// // The paper's case study shape: 4 inputs, 5 outputs.
/// let mlp = MlpBuilder::new(4)
///     .hidden(16, Activation::logistic())
///     .hidden(16, Activation::logistic())
///     .output(5, Activation::identity())
///     .seed(1)
///     .build()?;
/// assert_eq!(mlp.inputs(), 4);
/// assert_eq!(mlp.outputs(), 5);
/// let y = mlp.forward(&[0.0, 0.1, -0.3, 1.0])?;
/// assert_eq!(y.len(), 5);
/// # Ok::<(), wlc_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Creates an MLP directly from layers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] for an empty layer list and
    /// [`NnError::ShapeMismatch`] if consecutive layers do not chain.
    pub fn from_layers(layers: Vec<DenseLayer>) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        for pair in layers.windows(2) {
            if pair[0].outputs() != pair[1].inputs() {
                return Err(NnError::ShapeMismatch {
                    expected: pair[0].outputs(),
                    actual: pair[1].inputs(),
                    what: "layer chaining",
                });
            }
        }
        Ok(Mlp { layers })
    }

    /// Number of input features.
    pub fn inputs(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Number of output values.
    pub fn outputs(&self) -> usize {
        self.layers[self.layers.len() - 1].outputs()
    }

    /// The layers, input-to-output.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Layer widths including the input layer, e.g. `[4, 16, 16, 5]`.
    pub fn topology(&self) -> Vec<usize> {
        let mut t = vec![self.inputs()];
        t.extend(self.layers.iter().map(DenseLayer::outputs));
        t
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(DenseLayer::param_count).sum()
    }

    /// Runs the forward pass for one input vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `input.len() != self.inputs()`.
    pub fn forward(&self, input: &[f64]) -> Result<Vec<f64>, NnError> {
        let max_w = self.max_layer_width();
        let mut ping = vec![0.0; max_w];
        let mut pong = vec![0.0; max_w];
        let (in_ping, width) = self.forward_ping_pong(input, &mut ping, &mut pong)?;
        let mut out = if in_ping { ping } else { pong };
        out.truncate(width);
        Ok(out)
    }

    /// Widest layer output (sizing for ping-pong buffers).
    pub(crate) fn max_layer_width(&self) -> usize {
        self.layers
            .iter()
            .map(DenseLayer::outputs)
            .max()
            .expect("non-empty network")
    }

    /// Runs the layers through two ping-pong buffers (each at least
    /// [`Mlp::max_layer_width`] long), allocating nothing. Returns
    /// `(true, width)` if the final activation sits in `ping[..width]`,
    /// `(false, width)` if it sits in `pong[..width]`.
    pub(crate) fn forward_ping_pong(
        &self,
        input: &[f64],
        ping: &mut [f64],
        pong: &mut [f64],
    ) -> Result<(bool, usize), NnError> {
        let first = &self.layers[0];
        first.forward_into(input, &mut ping[..first.outputs()])?;
        let mut width = first.outputs();
        let mut in_ping = true;
        for layer in &self.layers[1..] {
            let outs = layer.outputs();
            if in_ping {
                layer.forward_into(&ping[..width], &mut pong[..outs])?;
            } else {
                layer.forward_into(&pong[..width], &mut ping[..outs])?;
            }
            width = outs;
            in_ping = !in_ping;
        }
        Ok((in_ping, width))
    }

    /// Runs the forward pass for every row of `inputs`, returning one
    /// prediction row per input row.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `inputs.cols() != self.inputs()`.
    pub fn forward_batch(&self, inputs: &Matrix) -> Result<Matrix, NnError> {
        if inputs.rows() == 0 {
            return Ok(Matrix::zeros(0, self.outputs()));
        }
        let mut ws = Workspace::for_mlp(self);
        Ok(self.forward_batch_with(inputs, &mut ws)?.clone())
    }

    /// Average loss and flat parameter gradient over a batch, computed by
    /// back-propagation.
    ///
    /// The gradient layout matches [`Mlp::params_flat`]: for each layer,
    /// row-major weights followed by biases.
    ///
    /// # Errors
    ///
    /// - [`NnError::EmptyTrainingSet`] if `inputs` has no rows.
    /// - [`NnError::ShapeMismatch`] if widths do not match the topology or
    ///   `targets.rows() != inputs.rows()`.
    pub fn batch_gradient(
        &self,
        inputs: &Matrix,
        targets: &Matrix,
        loss: Loss,
    ) -> Result<(f64, Vec<f64>), NnError> {
        let mut ws = Workspace::for_mlp(self);
        let loss_value = self.batch_gradient_scalar_with(inputs, targets, loss, &mut ws)?;
        Ok((loss_value, ws.take_grad()))
    }

    /// Shape validation shared by the gradient entry points; matches the
    /// errors the per-sample path historically produced.
    pub(crate) fn check_batch_shapes(
        &self,
        inputs: &Matrix,
        targets: &Matrix,
    ) -> Result<(), NnError> {
        if inputs.rows() == 0 {
            return Err(NnError::EmptyTrainingSet);
        }
        if targets.rows() != inputs.rows() {
            return Err(NnError::ShapeMismatch {
                expected: inputs.rows(),
                actual: targets.rows(),
                what: "target row count",
            });
        }
        if targets.cols() != self.outputs() {
            return Err(NnError::ShapeMismatch {
                expected: self.outputs(),
                actual: targets.cols(),
                what: "target width",
            });
        }
        if inputs.cols() != self.inputs() {
            return Err(NnError::ShapeMismatch {
                expected: self.inputs(),
                actual: inputs.cols(),
                what: "input width",
            });
        }
        Ok(())
    }

    /// Copies all parameters into one flat vector (per layer: row-major
    /// weights, then biases).
    pub fn params_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.write_params(&mut out);
        }
        out
    }

    /// Overwrites all parameters from a flat vector produced by
    /// [`Mlp::params_flat`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `flat.len() != self.param_count()`.
    pub fn set_params_flat(&mut self, flat: &[f64]) -> Result<(), NnError> {
        if flat.len() != self.param_count() {
            return Err(NnError::ShapeMismatch {
                expected: self.param_count(),
                actual: flat.len(),
                what: "flat parameter length",
            });
        }
        let mut off = 0;
        for layer in &mut self.layers {
            off += layer.read_params(&flat[off..]);
        }
        Ok(())
    }

    /// Resamples every weight from `init` (seeded by `seed`) and zeroes
    /// the biases, keeping the topology — the trainer's divergence
    /// recovery uses this for a fresh random start per retry attempt.
    pub fn reinitialize(&mut self, init: Initializer, seed: u64) {
        let mut rng = Xoshiro256::seed_from(seed);
        for layer in &mut self.layers {
            layer.reinitialize(init, &mut rng);
        }
    }

    /// Returns `true` if every parameter is finite.
    pub fn is_finite(&self) -> bool {
        self.layers
            .iter()
            .all(|l| l.weights().is_finite() && l.biases().iter().all(|b| b.is_finite()))
    }

    /// Validates a network before it is allowed to serve predictions —
    /// the entry point a server's hot-reload path runs on every candidate
    /// model: the expected input/output widths must match and every
    /// parameter must be finite.
    ///
    /// # Errors
    ///
    /// - [`NnError::ShapeMismatch`] if the topology does not provide
    ///   `inputs → outputs`.
    /// - [`NnError::NonFinite`] naming the first offending layer if any
    ///   weight or bias is NaN or infinite.
    pub fn validate(&self, inputs: usize, outputs: usize) -> Result<(), NnError> {
        if self.inputs() != inputs {
            return Err(NnError::ShapeMismatch {
                expected: inputs,
                actual: self.inputs(),
                what: "network input width",
            });
        }
        if self.outputs() != outputs {
            return Err(NnError::ShapeMismatch {
                expected: outputs,
                actual: self.outputs(),
                what: "network output width",
            });
        }
        for (index, layer) in self.layers.iter().enumerate() {
            if !layer.weights().is_finite() {
                return Err(NnError::NonFinite {
                    what: format!("layer {index} weights"),
                });
            }
            if !layer.biases().iter().all(|b| b.is_finite()) {
                return Err(NnError::NonFinite {
                    what: format!("layer {index} biases"),
                });
            }
        }
        Ok(())
    }

    /// Applies `update[i]` additively to parameter `i` (gradient-descent
    /// step helper used by the optimizers).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the update length is wrong.
    pub fn apply_update(&mut self, update: &[f64]) -> Result<(), NnError> {
        if update.len() != self.param_count() {
            return Err(NnError::ShapeMismatch {
                expected: self.param_count(),
                actual: update.len(),
                what: "update length",
            });
        }
        let mut off = 0;
        for layer in &mut self.layers {
            let w_len = layer.outputs() * layer.inputs();
            {
                let w = layer.weights_mut().as_mut_slice();
                for (wi, &u) in w.iter_mut().zip(&update[off..off + w_len]) {
                    *wi += u;
                }
            }
            off += w_len;
            let b_len = layer.biases().len();
            for (bi, &u) in layer.biases_mut().iter_mut().zip(&update[off..off + b_len]) {
                *bi += u;
            }
            off += b_len;
        }
        Ok(())
    }
}

/// Builder for [`Mlp`] networks.
///
/// See the paper's §3.2 on choosing the hidden node count; there is "no
/// definite answer", so the builder makes the topology fully explicit.
///
/// # Examples
///
/// ```
/// use wlc_nn::{Activation, Initializer, MlpBuilder};
///
/// let mlp = MlpBuilder::new(2)
///     .hidden(8, Activation::tanh())
///     .output(1, Activation::identity())
///     .initializer(Initializer::XavierNormal)
///     .seed(99)
///     .build()?;
/// assert_eq!(mlp.topology(), vec![2, 8, 1]);
/// # Ok::<(), wlc_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MlpBuilder {
    inputs: usize,
    layers: Vec<(usize, Activation)>,
    has_output: bool,
    initializer: Initializer,
    seed: Seed,
}

impl MlpBuilder {
    /// Starts a builder for a network with `inputs` input features.
    pub fn new(inputs: usize) -> Self {
        MlpBuilder {
            inputs,
            layers: Vec::new(),
            has_output: false,
            initializer: Initializer::default(),
            seed: Seed::new(0),
        }
    }

    /// Appends a hidden layer of `width` perceptrons.
    pub fn hidden(mut self, width: usize, activation: Activation) -> Self {
        self.layers.push((width, activation));
        self
    }

    /// Appends the output layer. Must be called exactly once, last.
    pub fn output(mut self, width: usize, activation: Activation) -> Self {
        self.layers.push((width, activation));
        self.has_output = true;
        self
    }

    /// Sets the weight initializer (default: Xavier uniform).
    pub fn initializer(mut self, initializer: Initializer) -> Self {
        self.initializer = initializer;
        self
    }

    /// Sets the RNG seed used for weight initialization (default: 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Seed::new(seed);
        self
    }

    /// Builds the network.
    ///
    /// # Errors
    ///
    /// - [`NnError::ZeroDimension`] if the input width or any layer width
    ///   is zero.
    /// - [`NnError::EmptyNetwork`] if [`MlpBuilder::output`] was never
    ///   called.
    pub fn build(&self) -> Result<Mlp, NnError> {
        if self.inputs == 0 {
            return Err(NnError::ZeroDimension { which: "inputs" });
        }
        if !self.has_output || self.layers.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        let mut rng = Xoshiro256::from_seed(self.seed);
        let mut built = Vec::with_capacity(self.layers.len());
        let mut fan_in = self.inputs;
        for &(width, activation) in &self.layers {
            built.push(DenseLayer::new(
                fan_in,
                width,
                activation,
                self.initializer,
                &mut rng,
            )?);
            fan_in = width;
        }
        Mlp::from_layers(built)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_mlp() -> Mlp {
        MlpBuilder::new(2)
            .hidden(3, Activation::tanh())
            .output(2, Activation::identity())
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_shapes() {
        let mlp = tiny_mlp();
        assert_eq!(mlp.inputs(), 2);
        assert_eq!(mlp.outputs(), 2);
        assert_eq!(mlp.topology(), vec![2, 3, 2]);
        assert_eq!(mlp.param_count(), (2 * 3 + 3) + (3 * 2 + 2));
    }

    #[test]
    fn builder_requires_output() {
        let err = MlpBuilder::new(2).hidden(3, Activation::tanh()).build();
        assert!(matches!(err, Err(NnError::EmptyNetwork)));
    }

    #[test]
    fn builder_rejects_zero_widths() {
        assert!(MlpBuilder::new(0)
            .output(1, Activation::identity())
            .build()
            .is_err());
        assert!(MlpBuilder::new(2)
            .hidden(0, Activation::tanh())
            .output(1, Activation::identity())
            .build()
            .is_err());
    }

    #[test]
    fn builder_is_seed_deterministic() {
        let a = tiny_mlp();
        let b = tiny_mlp();
        assert_eq!(a, b);
        let c = MlpBuilder::new(2)
            .hidden(3, Activation::tanh())
            .output(2, Activation::identity())
            .seed(12)
            .build()
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn from_layers_validates_chaining() {
        let mut rng = Xoshiro256::seed_from(0);
        let l1 =
            DenseLayer::new(2, 3, Activation::tanh(), Initializer::default(), &mut rng).unwrap();
        let l2 = DenseLayer::new(
            4,
            1,
            Activation::identity(),
            Initializer::default(),
            &mut rng,
        )
        .unwrap();
        assert!(matches!(
            Mlp::from_layers(vec![l1, l2]),
            Err(NnError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            Mlp::from_layers(vec![]),
            Err(NnError::EmptyNetwork)
        ));
    }

    #[test]
    fn forward_width_checked() {
        let mlp = tiny_mlp();
        assert!(mlp.forward(&[1.0]).is_err());
        assert!(mlp.forward(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn forward_batch_matches_forward() {
        let mlp = tiny_mlp();
        let xs = Matrix::from_rows(&[&[0.1, 0.2], &[-0.5, 0.9]]).unwrap();
        let batch = mlp.forward_batch(&xs).unwrap();
        for r in 0..2 {
            let single = mlp.forward(xs.row(r)).unwrap();
            assert_eq!(batch.row(r), single.as_slice());
        }
    }

    #[test]
    fn identity_network_computes_affine() {
        // Single identity layer == plain affine map.
        let w = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        let layer = DenseLayer::from_parts(w, vec![1.0, -1.0], Activation::identity()).unwrap();
        let mlp = Mlp::from_layers(vec![layer]).unwrap();
        assert_eq!(mlp.forward(&[1.0, 1.0]).unwrap(), vec![3.0, 2.0]);
    }

    #[test]
    fn params_flat_roundtrip() {
        let mlp = tiny_mlp();
        let params = mlp.params_flat();
        assert_eq!(params.len(), mlp.param_count());

        let mut other = MlpBuilder::new(2)
            .hidden(3, Activation::tanh())
            .output(2, Activation::identity())
            .seed(999)
            .build()
            .unwrap();
        assert_ne!(other.params_flat(), params);
        other.set_params_flat(&params).unwrap();
        assert_eq!(other.params_flat(), params);
        // Networks with identical params produce identical outputs.
        let x = [0.3, -0.7];
        assert_eq!(other.forward(&x).unwrap(), mlp.forward(&x).unwrap());
    }

    #[test]
    fn set_params_flat_length_checked() {
        let mut mlp = tiny_mlp();
        assert!(mlp.set_params_flat(&[0.0]).is_err());
    }

    #[test]
    fn batch_gradient_validates_shapes() {
        let mlp = tiny_mlp();
        let xs = Matrix::zeros(2, 2);
        let bad_rows = Matrix::zeros(3, 2);
        let bad_cols = Matrix::zeros(2, 5);
        let empty = Matrix::zeros(0, 2);
        assert!(mlp
            .batch_gradient(&xs, &bad_rows, Loss::MeanSquared)
            .is_err());
        assert!(mlp
            .batch_gradient(&xs, &bad_cols, Loss::MeanSquared)
            .is_err());
        assert!(matches!(
            mlp.batch_gradient(&empty, &empty, Loss::MeanSquared),
            Err(NnError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let mut mlp = tiny_mlp();
        let xs = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let ys = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let (initial, _) = mlp.batch_gradient(&xs, &ys, Loss::MeanSquared).unwrap();
        for _ in 0..200 {
            let (_, grad) = mlp.batch_gradient(&xs, &ys, Loss::MeanSquared).unwrap();
            let update: Vec<f64> = grad.iter().map(|g| -0.5 * g).collect();
            mlp.apply_update(&update).unwrap();
        }
        let (after, _) = mlp.batch_gradient(&xs, &ys, Loss::MeanSquared).unwrap();
        assert!(
            after < initial * 0.5,
            "loss did not drop: {initial} -> {after}"
        );
    }

    #[test]
    fn apply_update_shifts_params() {
        let mut mlp = tiny_mlp();
        let before = mlp.params_flat();
        let update = vec![0.1; mlp.param_count()];
        mlp.apply_update(&update).unwrap();
        let after = mlp.params_flat();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((a - b - 0.1).abs() < 1e-12);
        }
        assert!(mlp.apply_update(&[0.0]).is_err());
    }

    #[test]
    fn is_finite_detects_corruption() {
        let mut mlp = tiny_mlp();
        assert!(mlp.is_finite());
        let mut params = mlp.params_flat();
        params[0] = f64::NAN;
        mlp.set_params_flat(&params).unwrap();
        assert!(!mlp.is_finite());
    }

    #[test]
    fn validate_checks_dims_and_finiteness() {
        let mut mlp = tiny_mlp();
        assert!(mlp.validate(2, 2).is_ok());
        assert!(matches!(
            mlp.validate(4, 2),
            Err(NnError::ShapeMismatch { expected: 4, .. })
        ));
        assert!(matches!(
            mlp.validate(2, 5),
            Err(NnError::ShapeMismatch { expected: 5, .. })
        ));
        let mut params = mlp.params_flat();
        params[0] = f64::INFINITY;
        mlp.set_params_flat(&params).unwrap();
        let err = mlp.validate(2, 2).unwrap_err();
        assert!(
            matches!(&err, NnError::NonFinite { what } if what.contains("layer 0")),
            "{err}"
        );
    }

    #[test]
    fn deep_network_forward_works() {
        let mlp = MlpBuilder::new(3)
            .hidden(8, Activation::logistic())
            .hidden(8, Activation::logistic())
            .hidden(8, Activation::logistic())
            .output(2, Activation::identity())
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(mlp.topology(), vec![3, 8, 8, 8, 2]);
        let y = mlp.forward(&[0.1, 0.2, 0.3]).unwrap();
        assert_eq!(y.len(), 2);
        assert!(y.iter().all(|v| v.is_finite()));
    }
}
