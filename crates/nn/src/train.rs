use std::path::PathBuf;

use wlc_fault::FsHandle;
use wlc_math::rng::{Seed, Xoshiro256};
use wlc_math::Matrix;

use crate::{
    Checkpoint, Initializer, LearningRateSchedule, Loss, Mlp, NnError, OptimizerKind, Workspace,
};

/// Why training stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StopReason {
    /// Ran the configured number of epochs.
    MaxEpochs,
    /// Training loss dropped below the termination threshold — the paper's
    /// deliberate loose fit (§3.3) to keep the model flexible.
    ThresholdReached,
    /// Validation loss stopped improving for `patience` epochs; the best
    /// parameters seen were restored.
    EarlyStopped,
    /// Training diverged (non-finite loss, non-finite parameters or an
    /// exploding gradient) and every recovery attempt was exhausted; the
    /// parameters were rolled back to the last finite epoch. Only reported
    /// when [`TrainConfig::halt_on_divergence`] is set — otherwise
    /// divergence is an [`NnError::Diverged`] error.
    Diverged,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::MaxEpochs => write!(f, "max epochs reached"),
            StopReason::ThresholdReached => write!(f, "termination threshold reached"),
            StopReason::EarlyStopped => write!(f, "early stopped on validation loss"),
            StopReason::Diverged => {
                write!(f, "diverged (non-finite loss or exploding gradient)")
            }
        }
    }
}

/// Configuration for [`Trainer`].
///
/// The defaults mirror the paper's method: full-batch gradient descent on
/// mean-squared error. The *termination threshold* implements §3.3's
/// guidance that "it is better to loosely fit the training sample to
/// maintain the flexibility of a model — a threshold value is needed to
/// indicate when to stop training".
///
/// # Robustness
///
/// Divergence (NaN/Inf loss, non-finite parameters, exploding gradients)
/// is always detected. What happens next is configurable:
///
/// - [`TrainConfig::recover`] retries with a freshly re-seeded network and
///   a backed-off learning rate, up to a bounded number of attempts.
/// - [`TrainConfig::halt_on_divergence`] turns an exhausted divergence
///   into an `Ok` report with [`StopReason::Diverged`] and the parameters
///   rolled back to the last finite epoch, instead of an error.
/// - [`TrainConfig::checkpoint_every`] writes periodic [`Checkpoint`]s so
///   a killed run can continue via [`Trainer::resume_from`].
///
/// # Examples
///
/// ```
/// use wlc_nn::{Loss, OptimizerKind, TrainConfig};
///
/// let config = TrainConfig::new()
///     .max_epochs(500)
///     .learning_rate(0.05)
///     .optimizer(OptimizerKind::adam())
///     .termination_threshold(1e-3)
///     .loss(Loss::MeanSquared);
/// assert_eq!(config.max_epochs_value(), 500);
/// ```
#[derive(Debug, Clone)]
pub struct TrainConfig {
    max_epochs: usize,
    batch_size: Option<usize>,
    shuffle: bool,
    loss: Loss,
    optimizer: OptimizerKind,
    schedule: LearningRateSchedule,
    termination_threshold: Option<f64>,
    patience: Option<usize>,
    min_delta: f64,
    weight_decay: f64,
    gradient_clip: Option<f64>,
    seed: u64,
    max_retries: usize,
    retry_lr_backoff: f64,
    retry_initializer: Initializer,
    halt_on_divergence: bool,
    divergence_grad_norm: f64,
    checkpoint_every: Option<usize>,
    checkpoint_path: Option<PathBuf>,
    checkpoint_fs: FsHandle,
}

impl TrainConfig {
    /// Creates a configuration with the paper-like defaults: 1000 epochs of
    /// full-batch SGD at rate 0.01 on mean-squared error, no early stop.
    pub fn new() -> Self {
        TrainConfig {
            max_epochs: 1000,
            batch_size: None,
            shuffle: true,
            loss: Loss::MeanSquared,
            optimizer: OptimizerKind::Sgd,
            schedule: LearningRateSchedule::default(),
            termination_threshold: None,
            patience: None,
            min_delta: 0.0,
            weight_decay: 0.0,
            gradient_clip: None,
            seed: 0,
            max_retries: 0,
            retry_lr_backoff: 0.5,
            retry_initializer: Initializer::default(),
            halt_on_divergence: false,
            divergence_grad_norm: 1e12,
            checkpoint_every: None,
            checkpoint_path: None,
            checkpoint_fs: wlc_fault::real_fs(),
        }
    }

    /// Sets the maximum number of epochs.
    pub fn max_epochs(mut self, epochs: usize) -> Self {
        self.max_epochs = epochs;
        self
    }

    /// Sets a mini-batch size (`None`/unset = full batch).
    pub fn batch_size(mut self, size: usize) -> Self {
        self.batch_size = Some(size);
        self
    }

    /// Enables or disables per-epoch shuffling (default: enabled).
    pub fn shuffle(mut self, shuffle: bool) -> Self {
        self.shuffle = shuffle;
        self
    }

    /// Sets the training loss.
    pub fn loss(mut self, loss: Loss) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the optimizer.
    pub fn optimizer(mut self, optimizer: OptimizerKind) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Sets a constant learning rate (shorthand for a constant schedule).
    pub fn learning_rate(mut self, rate: f64) -> Self {
        self.schedule = LearningRateSchedule::Constant { rate };
        self
    }

    /// Sets a full learning-rate schedule.
    pub fn schedule(mut self, schedule: LearningRateSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Stops training once the epoch's training loss falls below
    /// `threshold` (the paper's loose-fit stop).
    pub fn termination_threshold(mut self, threshold: f64) -> Self {
        self.termination_threshold = Some(threshold);
        self
    }

    /// Enables early stopping: training stops when the validation loss has
    /// not improved by at least `min_delta` for `patience` epochs, and the
    /// best parameters are restored.
    pub fn early_stopping(mut self, patience: usize, min_delta: f64) -> Self {
        self.patience = Some(patience);
        self.min_delta = min_delta;
        self
    }

    /// Adds L2 weight decay: the gradient of `decay/2 · ‖w‖²` is added to
    /// every parameter gradient — an alternative flexibility mechanism to
    /// the paper's loose-fit threshold (exercised by the ablations).
    pub fn weight_decay(mut self, decay: f64) -> Self {
        self.weight_decay = decay;
        self
    }

    /// Clips the gradient's global L2 norm to `max_norm` before each
    /// update — guards against the divergence that §3.1 warns about when
    /// features are poorly scaled.
    pub fn gradient_clip(mut self, max_norm: f64) -> Self {
        self.gradient_clip = Some(max_norm);
        self
    }

    /// Seed for mini-batch shuffling (and for re-deriving recovery seeds).
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Allows up to `retries` recovery attempts after divergence. Each
    /// attempt reinitializes the network from a seed re-derived from
    /// [`TrainConfig::rng_seed`] and multiplies every learning rate by
    /// [`TrainConfig::retry_backoff`] once more (attempt `k` trains at
    /// `backoff^k` times the configured rate).
    pub fn recover(mut self, retries: usize) -> Self {
        self.max_retries = retries;
        self
    }

    /// Learning-rate backoff factor per recovery attempt, in `(0, 1]`
    /// (default 0.5).
    pub fn retry_backoff(mut self, backoff: f64) -> Self {
        self.retry_lr_backoff = backoff;
        self
    }

    /// Weight initializer used for recovery restarts (default: the
    /// builder default, Xavier-uniform).
    pub fn retry_initializer(mut self, init: Initializer) -> Self {
        self.retry_initializer = init;
        self
    }

    /// When every attempt diverges, return an `Ok` report with
    /// [`StopReason::Diverged`] (parameters rolled back to the last finite
    /// epoch) instead of [`NnError::Diverged`]. Lets callers such as
    /// cross-validation quarantine a diverged run rather than abort.
    pub fn halt_on_divergence(mut self, halt: bool) -> Self {
        self.halt_on_divergence = halt;
        self
    }

    /// Gradient L2-norm limit above which training counts as diverged
    /// (default `1e12`). Measured after clipping, so a clipped run never
    /// trips it.
    pub fn divergence_grad_norm(mut self, max_norm: f64) -> Self {
        self.divergence_grad_norm = max_norm;
        self
    }

    /// Writes a [`Checkpoint`] to [`TrainConfig::checkpoint_path`] every
    /// `epochs` completed epochs.
    pub fn checkpoint_every(mut self, epochs: usize) -> Self {
        self.checkpoint_every = Some(epochs);
        self
    }

    /// Destination for periodic checkpoints (required when
    /// [`TrainConfig::checkpoint_every`] is set).
    pub fn checkpoint_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Filesystem checkpoints are written through (defaults to the real
    /// filesystem). Supplying a [`wlc_fault::SimFs`] makes mid-training
    /// checkpoint writes visible to fault injection and crash sweeps.
    pub fn checkpoint_fs(mut self, fs: FsHandle) -> Self {
        self.checkpoint_fs = fs;
        self
    }

    /// The configured epoch budget.
    pub fn max_epochs_value(&self) -> usize {
        self.max_epochs
    }

    /// The configured loss.
    pub fn loss_value(&self) -> Loss {
        self.loss
    }

    fn validate(&self) -> Result<(), NnError> {
        if self.max_epochs == 0 {
            return Err(NnError::InvalidHyperParameter {
                name: "max_epochs",
                reason: "must be at least 1",
            });
        }
        if let Some(b) = self.batch_size {
            if b == 0 {
                return Err(NnError::InvalidHyperParameter {
                    name: "batch_size",
                    reason: "must be at least 1",
                });
            }
        }
        if let Some(t) = self.termination_threshold {
            if !(t.is_finite() && t >= 0.0) {
                return Err(NnError::InvalidHyperParameter {
                    name: "termination_threshold",
                    reason: "must be non-negative and finite",
                });
            }
        }
        if let Some(p) = self.patience {
            if p == 0 {
                return Err(NnError::InvalidHyperParameter {
                    name: "patience",
                    reason: "must be at least 1",
                });
            }
        }
        if !(self.weight_decay.is_finite() && self.weight_decay >= 0.0) {
            return Err(NnError::InvalidHyperParameter {
                name: "weight_decay",
                reason: "must be non-negative and finite",
            });
        }
        if let Some(c) = self.gradient_clip {
            if !(c.is_finite() && c > 0.0) {
                return Err(NnError::InvalidHyperParameter {
                    name: "gradient_clip",
                    reason: "must be positive and finite",
                });
            }
        }
        if !(self.retry_lr_backoff.is_finite()
            && self.retry_lr_backoff > 0.0
            && self.retry_lr_backoff <= 1.0)
        {
            return Err(NnError::InvalidHyperParameter {
                name: "retry_backoff",
                reason: "must be in (0, 1]",
            });
        }
        if !(self.divergence_grad_norm.is_finite() && self.divergence_grad_norm > 0.0) {
            return Err(NnError::InvalidHyperParameter {
                name: "divergence_grad_norm",
                reason: "must be positive and finite",
            });
        }
        if let Some(every) = self.checkpoint_every {
            if every == 0 {
                return Err(NnError::InvalidHyperParameter {
                    name: "checkpoint_every",
                    reason: "must be at least 1",
                });
            }
            if self.checkpoint_path.is_none() {
                return Err(NnError::InvalidHyperParameter {
                    name: "checkpoint_every",
                    reason: "requires a checkpoint path",
                });
            }
        }
        self.optimizer.validate()
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct TrainReport {
    /// Number of epochs actually run.
    pub epochs_run: usize,
    /// Training loss after the final epoch.
    pub final_train_loss: f64,
    /// Validation loss after the final epoch (when a validation set was
    /// supplied).
    pub final_val_loss: Option<f64>,
    /// Why training stopped.
    pub stop_reason: StopReason,
    /// Per-epoch training loss.
    pub loss_history: Vec<f64>,
    /// Per-epoch validation loss (empty without a validation set).
    pub val_history: Vec<f64>,
    /// Failed recovery attempts before this result (0 = first try).
    pub recovery_attempts: usize,
    /// Epoch the run resumed from when started via
    /// [`Trainer::resume_from`].
    pub resumed_from_epoch: Option<usize>,
}

/// Trains an [`Mlp`] by mini-batch gradient descent.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer from a configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Borrow of the configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains on `(xs, ys)` with no validation set.
    ///
    /// # Errors
    ///
    /// - [`NnError::EmptyTrainingSet`] if `xs` has no rows.
    /// - [`NnError::ShapeMismatch`] if widths do not match the network.
    /// - [`NnError::InvalidHyperParameter`] for invalid configuration.
    /// - [`NnError::Diverged`] if training diverges and every recovery
    ///   attempt is exhausted (unless
    ///   [`TrainConfig::halt_on_divergence`] is set).
    /// - [`NnError::Io`] if a configured checkpoint cannot be written.
    pub fn fit(&self, mlp: &mut Mlp, xs: &Matrix, ys: &Matrix) -> Result<TrainReport, NnError> {
        self.fit_impl(mlp, xs, ys, None, None)
    }

    /// Trains on `(xs, ys)` while monitoring `(val_x, val_y)` for early
    /// stopping and validation history.
    ///
    /// # Errors
    ///
    /// As for [`Trainer::fit`].
    pub fn fit_with_validation(
        &self,
        mlp: &mut Mlp,
        xs: &Matrix,
        ys: &Matrix,
        val_x: &Matrix,
        val_y: &Matrix,
    ) -> Result<TrainReport, NnError> {
        self.fit_impl(mlp, xs, ys, Some((val_x, val_y)), None)
    }

    /// Continues an interrupted run from `checkpoint`. With the same
    /// configuration, data and seed, the resumed run finishes
    /// bit-identically to an uninterrupted one: the checkpoint carries the
    /// optimizer state and histories, and the shuffle RNG is fast-forwarded
    /// by replaying the completed epochs' permutations.
    ///
    /// # Errors
    ///
    /// As for [`Trainer::fit`], plus [`NnError::ShapeMismatch`] when the
    /// checkpointed network does not match `mlp`'s topology.
    pub fn resume_from(
        &self,
        mlp: &mut Mlp,
        xs: &Matrix,
        ys: &Matrix,
        checkpoint: &Checkpoint,
    ) -> Result<TrainReport, NnError> {
        self.fit_impl(mlp, xs, ys, None, Some(checkpoint))
    }

    /// [`Trainer::resume_from`] with a validation set (must be the same
    /// one the interrupted run used for the histories to stay coherent).
    ///
    /// # Errors
    ///
    /// As for [`Trainer::resume_from`].
    pub fn resume_from_with_validation(
        &self,
        mlp: &mut Mlp,
        xs: &Matrix,
        ys: &Matrix,
        val_x: &Matrix,
        val_y: &Matrix,
        checkpoint: &Checkpoint,
    ) -> Result<TrainReport, NnError> {
        self.fit_impl(mlp, xs, ys, Some((val_x, val_y)), Some(checkpoint))
    }

    fn fit_impl(
        &self,
        mlp: &mut Mlp,
        xs: &Matrix,
        ys: &Matrix,
        validation: Option<(&Matrix, &Matrix)>,
        resume: Option<&Checkpoint>,
    ) -> Result<TrainReport, NnError> {
        self.config.validate()?;
        if xs.rows() == 0 {
            return Err(NnError::EmptyTrainingSet);
        }
        if ys.rows() != xs.rows() {
            return Err(NnError::ShapeMismatch {
                expected: xs.rows(),
                actual: ys.rows(),
                what: "target row count",
            });
        }
        if let Some(ck) = resume {
            if ck.mlp.param_count() != mlp.param_count() {
                return Err(NnError::ShapeMismatch {
                    expected: mlp.param_count(),
                    actual: ck.mlp.param_count(),
                    what: "checkpoint parameter count",
                });
            }
            *mlp = ck.mlp.clone();
        }

        let start_attempt = resume.map_or(0, |c| c.attempt);
        let final_attempt = self.config.max_retries.max(start_attempt);
        let mut resume_state = resume;
        let mut diverged: Option<TrainReport> = None;
        for attempt in start_attempt..=final_attempt {
            if attempt != start_attempt {
                // Fresh restart: re-derived seed, backed-off learning rate.
                let seed = Seed::new(self.config.seed).derive(attempt as u64).value();
                mlp.reinitialize(self.config.retry_initializer, seed);
                resume_state = None;
            }
            let report = self.run_attempt(mlp, xs, ys, validation, resume_state, attempt)?;
            if report.stop_reason == StopReason::Diverged {
                diverged = Some(report);
            } else {
                return Ok(report);
            }
        }
        // Every attempt diverged; `mlp` holds the last attempt's final
        // finite snapshot.
        let report = match diverged {
            Some(r) => r,
            // Unreachable: the loop above always runs at least once.
            None => return Err(NnError::Diverged { epoch: 0 }),
        };
        if self.config.halt_on_divergence {
            Ok(report)
        } else {
            Err(NnError::Diverged {
                epoch: report.epochs_run.saturating_sub(1),
            })
        }
    }

    /// One training attempt. Divergence is reported as an `Ok` result with
    /// [`StopReason::Diverged`] (parameters rolled back to the last finite
    /// epoch) so the caller can decide between retrying and erroring.
    fn run_attempt(
        &self,
        mlp: &mut Mlp,
        xs: &Matrix,
        ys: &Matrix,
        validation: Option<(&Matrix, &Matrix)>,
        resume: Option<&Checkpoint>,
        attempt: usize,
    ) -> Result<TrainReport, NnError> {
        let n = xs.rows();
        let batch = self.config.batch_size.unwrap_or(n).min(n);
        let mut rng = Xoshiro256::seed_from(self.config.seed);
        let mut optimizer = self.config.optimizer.into_optimizer();
        let schedule = self
            .config
            .schedule
            .scaled(self.config.retry_lr_backoff.powi(attempt as i32));
        let mut params = mlp.params_flat();

        // All per-epoch scratch is allocated up front; the epoch loop then
        // runs allocation-free (asserted by `tests/alloc.rs`).
        let mut ws = Workspace::for_mlp(mlp);
        let mut bx = Matrix::zeros(0, xs.cols());
        let mut by = Matrix::zeros(0, ys.cols());

        let mut loss_history = Vec::with_capacity(self.config.max_epochs);
        let mut val_history = Vec::with_capacity(if validation.is_some() {
            self.config.max_epochs
        } else {
            0
        });
        let mut best_val = f64::INFINITY;
        let mut best_params: Option<Vec<f64>> = None;
        let mut epochs_without_improvement = 0usize;
        let mut start_epoch = 0usize;
        let mut indices: Vec<usize> = (0..n).collect();

        if let Some(ck) = resume {
            start_epoch = ck.epoch;
            optimizer.restore_state(ck.opt_velocity.clone(), ck.opt_second.clone(), ck.opt_step);
            loss_history.clone_from(&ck.loss_history);
            val_history.clone_from(&ck.val_history);
            best_val = ck.best_val.unwrap_or(f64::INFINITY);
            best_params = ck.best_params.clone();
            epochs_without_improvement = ck.stall;
            // Replay the completed epochs' shuffles so the RNG position and
            // the index permutation match the interrupted run exactly.
            if self.config.shuffle && batch < n {
                for _ in 0..start_epoch {
                    rng.shuffle(&mut indices);
                }
            }
        }

        let mut stop_reason = StopReason::MaxEpochs;
        let mut epochs_run = start_epoch;
        let mut last_finite = params.clone();
        let grad_limit = self.config.divergence_grad_norm * self.config.divergence_grad_norm;

        for epoch in start_epoch..self.config.max_epochs {
            epochs_run = epoch + 1;
            if self.config.shuffle && batch < n {
                rng.shuffle(&mut indices);
            }
            let lr = schedule.rate_at(epoch);

            let mut exploded = false;
            for chunk in indices.chunks(batch) {
                mlp.set_params_flat(&params)?;
                gather_into(xs, ys, chunk, &mut bx, &mut by);
                mlp.batch_gradient_with(&bx, &by, self.config.loss, &mut ws)?;
                let grads = ws.grad_mut();
                if self.config.weight_decay > 0.0 {
                    for (g, p) in grads.iter_mut().zip(params.iter()) {
                        *g += self.config.weight_decay * p;
                    }
                }
                if let Some(max_norm) = self.config.gradient_clip {
                    let norm = grads.iter().map(|g| g * g).sum::<f64>().sqrt();
                    if norm > max_norm {
                        let scale = max_norm / norm;
                        for g in grads.iter_mut() {
                            *g *= scale;
                        }
                    }
                }
                // Post-clip explosion guard: a clipped run never trips it.
                let norm_sq = grads.iter().map(|g| g * g).sum::<f64>();
                if !norm_sq.is_finite() || norm_sq > grad_limit {
                    exploded = true;
                    break;
                }
                optimizer.step(&mut params, grads, lr)?;
            }

            let mut train_loss = f64::NAN;
            let mut diverged = exploded || params.iter().any(|p| !p.is_finite());
            if !diverged {
                mlp.set_params_flat(&params)?;
                train_loss = mlp.batch_loss_with(xs, ys, self.config.loss, &mut ws)?;
                diverged = !train_loss.is_finite();
            }
            if diverged {
                // Roll back to the last finite epoch rather than leaving
                // NaNs in the network.
                params = last_finite;
                mlp.set_params_flat(&params)?;
                let final_train_loss = mlp.batch_loss_with(xs, ys, self.config.loss, &mut ws)?;
                let final_val_loss = match validation {
                    Some((vx, vy)) => {
                        Some(mlp.batch_loss_with(vx, vy, self.config.loss, &mut ws)?)
                    }
                    None => None,
                };
                return Ok(TrainReport {
                    epochs_run,
                    final_train_loss,
                    final_val_loss,
                    stop_reason: StopReason::Diverged,
                    loss_history,
                    val_history,
                    recovery_attempts: attempt,
                    resumed_from_epoch: resume.map(|c| c.epoch),
                });
            }
            last_finite.clone_from(&params);
            loss_history.push(train_loss);

            if let Some((vx, vy)) = validation {
                let val_loss = mlp.batch_loss_with(vx, vy, self.config.loss, &mut ws)?;
                val_history.push(val_loss);
                if val_loss + self.config.min_delta < best_val {
                    best_val = val_loss;
                    // clone_from reuses the existing buffer after the
                    // first improvement.
                    match &mut best_params {
                        Some(b) => b.clone_from(&params),
                        None => best_params = Some(params.clone()),
                    }
                    epochs_without_improvement = 0;
                } else {
                    epochs_without_improvement += 1;
                }
                if let Some(patience) = self.config.patience {
                    if epochs_without_improvement >= patience {
                        stop_reason = StopReason::EarlyStopped;
                        break;
                    }
                }
            }

            if let Some(threshold) = self.config.termination_threshold {
                if train_loss <= threshold {
                    stop_reason = StopReason::ThresholdReached;
                    break;
                }
            }

            if let (Some(every), Some(path)) = (
                self.config.checkpoint_every,
                self.config.checkpoint_path.as_deref(),
            ) {
                if (epoch + 1) % every == 0 {
                    let (velocity, second, steps) = optimizer.state();
                    let ck = Checkpoint {
                        epoch: epoch + 1,
                        attempt,
                        recovery_attempts: attempt,
                        opt_step: steps,
                        opt_velocity: velocity.to_vec(),
                        opt_second: second.to_vec(),
                        best_val: best_params.as_ref().map(|_| best_val),
                        stall: epochs_without_improvement,
                        best_params: best_params.clone(),
                        loss_history: loss_history.clone(),
                        val_history: val_history.clone(),
                        mlp: mlp.clone(),
                    };
                    ck.save_with(&*self.config.checkpoint_fs, path)?;
                }
            }
        }

        // On early stop, restore the best validation parameters.
        if stop_reason == StopReason::EarlyStopped {
            if let Some(best) = best_params {
                params = best;
            }
        }
        mlp.set_params_flat(&params)?;

        let final_train_loss = mlp.batch_loss_with(xs, ys, self.config.loss, &mut ws)?;
        let final_val_loss = match validation {
            Some((vx, vy)) => Some(mlp.batch_loss_with(vx, vy, self.config.loss, &mut ws)?),
            None => None,
        };

        Ok(TrainReport {
            epochs_run,
            final_train_loss,
            final_val_loss,
            stop_reason,
            loss_history,
            val_history,
            recovery_attempts: attempt,
            resumed_from_epoch: resume.map(|c| c.epoch),
        })
    }
}

/// Mean loss of `mlp` over a dataset.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] if widths do not match and
/// [`NnError::EmptyTrainingSet`] for an empty dataset.
pub(crate) fn evaluate_loss(
    mlp: &Mlp,
    xs: &Matrix,
    ys: &Matrix,
    loss: Loss,
) -> Result<f64, NnError> {
    if xs.rows() == 0 {
        return Err(NnError::EmptyTrainingSet);
    }
    let mut total = 0.0;
    for r in 0..xs.rows() {
        let pred = mlp.forward(xs.row(r))?;
        total += loss.value(&pred, ys.row(r))?;
    }
    Ok(total / xs.rows() as f64)
}

/// Copies the selected sample rows into reusable minibatch matrices —
/// after the first (largest) chunk this never allocates.
fn gather_into(xs: &Matrix, ys: &Matrix, idx: &[usize], bx: &mut Matrix, by: &mut Matrix) {
    bx.resize_rows(idx.len());
    by.resize_rows(idx.len());
    for (out_r, &r) in idx.iter().enumerate() {
        bx.row_mut(out_r).copy_from_slice(xs.row(r));
        by.row_mut(out_r).copy_from_slice(ys.row(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, MlpBuilder};

    fn xor_data() -> (Matrix, Matrix) {
        let xs = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let ys = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]).unwrap();
        (xs, ys)
    }

    fn xor_mlp(seed: u64) -> Mlp {
        MlpBuilder::new(2)
            .hidden(8, Activation::tanh())
            .output(1, Activation::identity())
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn learns_xor() {
        // XOR is the canonical non-linearly-separable problem — exactly the
        // kind of non-linearity the paper argues linear models cannot fit.
        let (xs, ys) = xor_data();
        let mut mlp = xor_mlp(3);
        let config = TrainConfig::new()
            .max_epochs(3000)
            .learning_rate(0.3)
            .optimizer(OptimizerKind::momentum());
        let report = Trainer::new(config).fit(&mut mlp, &xs, &ys).unwrap();
        assert!(
            report.final_train_loss < 0.02,
            "loss {}",
            report.final_train_loss
        );
        for r in 0..4 {
            let pred = mlp.forward(xs.row(r)).unwrap()[0];
            assert!((pred - ys.get(r, 0)).abs() < 0.35, "row {r}: {pred}");
        }
    }

    #[test]
    fn loss_history_trends_down() {
        let (xs, ys) = xor_data();
        let mut mlp = xor_mlp(4);
        let config = TrainConfig::new().max_epochs(500).learning_rate(0.2);
        let report = Trainer::new(config).fit(&mut mlp, &xs, &ys).unwrap();
        assert_eq!(report.loss_history.len(), 500);
        let first = report.loss_history[0];
        let last = *report.loss_history.last().unwrap();
        assert!(last < first);
        assert_eq!(report.stop_reason, StopReason::MaxEpochs);
        assert_eq!(report.recovery_attempts, 0);
        assert_eq!(report.resumed_from_epoch, None);
    }

    #[test]
    fn termination_threshold_stops_early() {
        let (xs, ys) = xor_data();
        let mut mlp = xor_mlp(5);
        let config = TrainConfig::new()
            .max_epochs(10_000)
            .learning_rate(0.3)
            .optimizer(OptimizerKind::momentum())
            .termination_threshold(0.05);
        let report = Trainer::new(config).fit(&mut mlp, &xs, &ys).unwrap();
        assert_eq!(report.stop_reason, StopReason::ThresholdReached);
        assert!(report.epochs_run < 10_000);
        assert!(report.final_train_loss <= 0.05 + 1e-9);
    }

    #[test]
    fn early_stopping_restores_best_params() {
        // Validation set deliberately contradicts the training set, so
        // validation loss rises as training fits harder — early stopping
        // must kick in and restore the best snapshot.
        let (xs, ys) = xor_data();
        let val_x = xs.clone();
        let val_y = Matrix::from_rows(&[&[1.0], &[0.0], &[0.0], &[1.0]]).unwrap();
        let mut mlp = xor_mlp(6);
        let config = TrainConfig::new()
            .max_epochs(2000)
            .learning_rate(0.3)
            .optimizer(OptimizerKind::momentum())
            .early_stopping(20, 0.0);
        let report = Trainer::new(config)
            .fit_with_validation(&mut mlp, &xs, &ys, &val_x, &val_y)
            .unwrap();
        assert_eq!(report.stop_reason, StopReason::EarlyStopped);
        assert!(report.epochs_run < 2000);
        // The restored parameters give the best validation loss seen.
        let best_seen = report
            .val_history
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let final_val = report.final_val_loss.unwrap();
        assert!(
            (final_val - best_seen).abs() < 1e-9,
            "final {final_val} vs best {best_seen}"
        );
    }

    #[test]
    fn mini_batch_training_works() {
        let (xs, ys) = xor_data();
        let mut mlp = xor_mlp(7);
        let config = TrainConfig::new()
            .max_epochs(2000)
            .learning_rate(0.1)
            .batch_size(2)
            .optimizer(OptimizerKind::momentum())
            .rng_seed(1);
        let report = Trainer::new(config).fit(&mut mlp, &xs, &ys).unwrap();
        assert!(report.final_train_loss < 0.1, "{}", report.final_train_loss);
    }

    #[test]
    fn batched_training_is_bitwise_scalar_training() {
        // The Trainer now runs the GEMM-batched workspace path. Replicate
        // its epoch loop with the legacy per-sample scalar gradient
        // (`Mlp::batch_gradient`) and allocating per-row evaluation
        // (`evaluate_loss`), and require byte-identical parameters and
        // loss history.
        let (xs, ys) = xor_data();
        let n = xs.rows();
        for (opt, batch, seed, lr, epochs) in [
            (OptimizerKind::Sgd, 2usize, 11u64, 0.1, 40usize),
            (OptimizerKind::Sgd, 3, 5, 0.2, 25), // ragged last chunk
            (OptimizerKind::adam(), 2, 23, 0.05, 40),
        ] {
            let mut trained = xor_mlp(9);
            let config = TrainConfig::new()
                .max_epochs(epochs)
                .learning_rate(lr)
                .batch_size(batch)
                .optimizer(opt)
                .rng_seed(seed);
            let report = Trainer::new(config).fit(&mut trained, &xs, &ys).unwrap();

            let mut manual = xor_mlp(9);
            let mut rng = Xoshiro256::seed_from(seed);
            let mut optimizer = opt.into_optimizer();
            let mut params = manual.params_flat();
            let mut indices: Vec<usize> = (0..n).collect();
            let mut losses = Vec::new();
            for _ in 0..epochs {
                rng.shuffle(&mut indices);
                for chunk in indices.chunks(batch) {
                    manual.set_params_flat(&params).unwrap();
                    let mut bx = Matrix::zeros(chunk.len(), xs.cols());
                    let mut by = Matrix::zeros(chunk.len(), ys.cols());
                    for (out_r, &r) in chunk.iter().enumerate() {
                        bx.row_mut(out_r).copy_from_slice(xs.row(r));
                        by.row_mut(out_r).copy_from_slice(ys.row(r));
                    }
                    let (_, grads) = manual.batch_gradient(&bx, &by, Loss::MeanSquared).unwrap();
                    optimizer.step(&mut params, &grads, lr).unwrap();
                }
                manual.set_params_flat(&params).unwrap();
                losses.push(evaluate_loss(&manual, &xs, &ys, Loss::MeanSquared).unwrap());
            }

            let trained_bits: Vec<u64> =
                trained.params_flat().iter().map(|p| p.to_bits()).collect();
            let manual_bits: Vec<u64> = params.iter().map(|p| p.to_bits()).collect();
            assert_eq!(trained_bits, manual_bits, "params differ ({opt:?})");
            let hist_bits: Vec<u64> = report.loss_history.iter().map(|l| l.to_bits()).collect();
            let manual_hist: Vec<u64> = losses.iter().map(|l| l.to_bits()).collect();
            assert_eq!(hist_bits, manual_hist, "loss history differs ({opt:?})");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = xor_data();
        let config = TrainConfig::new()
            .max_epochs(50)
            .learning_rate(0.1)
            .batch_size(2)
            .rng_seed(42);
        let mut a = xor_mlp(8);
        let mut b = xor_mlp(8);
        let ra = Trainer::new(config.clone()).fit(&mut a, &xs, &ys).unwrap();
        let rb = Trainer::new(config).fit(&mut b, &xs, &ys).unwrap();
        assert_eq!(ra.loss_history, rb.loss_history);
        assert_eq!(a.params_flat(), b.params_flat());
    }

    #[test]
    fn divergence_detected() {
        let (xs, ys) = xor_data();
        let mut mlp = xor_mlp(9);
        // Huge learning rate on scaled-up targets blows up quickly.
        let big_y = ys.scale(1e6);
        let config = TrainConfig::new().max_epochs(200).learning_rate(1e6);
        let result = Trainer::new(config).fit(&mut mlp, &xs, &big_y);
        assert!(matches!(result, Err(NnError::Diverged { .. })));
        // The network is rolled back to the last finite snapshot, not left
        // full of NaNs.
        assert!(mlp.is_finite());
    }

    #[test]
    fn recovery_retries_after_divergence() {
        let (xs, ys) = xor_data();
        let big_y = ys.scale(1e6);
        let mut mlp = xor_mlp(9);
        // First attempt diverges at rate 1e6; the backoff drops the retry
        // to a rate that survives.
        let config = TrainConfig::new()
            .max_epochs(50)
            .learning_rate(1e6)
            .recover(2)
            .retry_backoff(1e-8);
        let report = Trainer::new(config).fit(&mut mlp, &xs, &big_y).unwrap();
        assert!(report.recovery_attempts >= 1, "{report:?}");
        assert_ne!(report.stop_reason, StopReason::Diverged);
        assert!(mlp.is_finite());
    }

    #[test]
    fn halt_on_divergence_reports_instead_of_error() {
        let (xs, ys) = xor_data();
        let big_y = ys.scale(1e6);
        let mut mlp = xor_mlp(9);
        let config = TrainConfig::new()
            .max_epochs(200)
            .learning_rate(1e6)
            .halt_on_divergence(true);
        let report = Trainer::new(config).fit(&mut mlp, &xs, &big_y).unwrap();
        assert_eq!(report.stop_reason, StopReason::Diverged);
        assert!(mlp.is_finite(), "diverged params must be rolled back");
        assert!(report.final_train_loss.is_finite());
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let (xs, ys) = xor_data();
        let val_x = xs.clone();
        let val_y = ys.clone();
        let dir = std::env::temp_dir().join("wlc-nn-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.ckpt");

        let base = TrainConfig::new()
            .max_epochs(60)
            .learning_rate(0.1)
            .batch_size(2)
            .optimizer(OptimizerKind::adam())
            .rng_seed(17);

        // Uninterrupted run.
        let mut full = xor_mlp(13);
        let full_report = Trainer::new(base.clone())
            .fit_with_validation(&mut full, &xs, &ys, &val_x, &val_y)
            .unwrap();

        // "Killed" run: stops at epoch 40, leaving a checkpoint behind.
        let mut partial = xor_mlp(13);
        Trainer::new(
            base.clone()
                .max_epochs(40)
                .checkpoint_every(20)
                .checkpoint_path(&path),
        )
        .fit_with_validation(&mut partial, &xs, &ys, &val_x, &val_y)
        .unwrap();

        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.epochs_completed(), 40);
        let mut resumed = xor_mlp(13);
        let resumed_report = Trainer::new(base)
            .resume_from_with_validation(&mut resumed, &xs, &ys, &val_x, &val_y, &ck)
            .unwrap();

        assert_eq!(resumed_report.resumed_from_epoch, Some(40));
        assert_eq!(resumed.params_flat(), full.params_flat());
        assert_eq!(resumed_report.loss_history, full_report.loss_history);
        assert_eq!(resumed_report.val_history, full_report.val_history);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_mismatched_network() {
        let (xs, ys) = xor_data();
        let dir = std::env::temp_dir().join("wlc-nn-resume-mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.ckpt");
        let mut mlp = xor_mlp(13);
        Trainer::new(
            TrainConfig::new()
                .max_epochs(4)
                .learning_rate(0.1)
                .checkpoint_every(2)
                .checkpoint_path(&path),
        )
        .fit(&mut mlp, &xs, &ys)
        .unwrap();
        let ck = Checkpoint::load(&path).unwrap();
        let mut other = MlpBuilder::new(2)
            .hidden(3, Activation::tanh())
            .output(1, Activation::identity())
            .seed(1)
            .build()
            .unwrap();
        assert!(matches!(
            Trainer::new(TrainConfig::new()).resume_from(&mut other, &xs, &ys, &ck),
            Err(NnError::ShapeMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_config() {
        let (xs, ys) = xor_data();
        let mut mlp = xor_mlp(10);
        assert!(Trainer::new(TrainConfig::new().max_epochs(0))
            .fit(&mut mlp, &xs, &ys)
            .is_err());
        assert!(Trainer::new(TrainConfig::new().batch_size(0))
            .fit(&mut mlp, &xs, &ys)
            .is_err());
        assert!(Trainer::new(TrainConfig::new().termination_threshold(-1.0))
            .fit(&mut mlp, &xs, &ys)
            .is_err());
        assert!(Trainer::new(TrainConfig::new().early_stopping(0, 0.0))
            .fit(&mut mlp, &xs, &ys)
            .is_err());
    }

    #[test]
    fn robustness_config_validates() {
        let (xs, ys) = xor_data();
        let mut mlp = xor_mlp(10);
        assert!(Trainer::new(TrainConfig::new().retry_backoff(0.0))
            .fit(&mut mlp, &xs, &ys)
            .is_err());
        assert!(Trainer::new(TrainConfig::new().retry_backoff(1.5))
            .fit(&mut mlp, &xs, &ys)
            .is_err());
        assert!(Trainer::new(TrainConfig::new().divergence_grad_norm(0.0))
            .fit(&mut mlp, &xs, &ys)
            .is_err());
        assert!(Trainer::new(TrainConfig::new().checkpoint_every(0))
            .fit(&mut mlp, &xs, &ys)
            .is_err());
        // checkpoint_every without a destination path is rejected.
        assert!(Trainer::new(TrainConfig::new().checkpoint_every(5))
            .fit(&mut mlp, &xs, &ys)
            .is_err());
    }

    #[test]
    fn rejects_empty_and_mismatched_data() {
        let mut mlp = xor_mlp(11);
        let empty = Matrix::zeros(0, 2);
        let empty_y = Matrix::zeros(0, 1);
        assert!(matches!(
            Trainer::new(TrainConfig::new()).fit(&mut mlp, &empty, &empty_y),
            Err(NnError::EmptyTrainingSet)
        ));
        let xs = Matrix::zeros(4, 2);
        let ys = Matrix::zeros(3, 1);
        assert!(Trainer::new(TrainConfig::new())
            .fit(&mut mlp, &xs, &ys)
            .is_err());
    }

    #[test]
    fn learning_rate_schedule_is_consumed() {
        // A rapidly decaying schedule freezes training: early epochs must
        // move the loss far more than late epochs (the rate halves every
        // epoch, so by epoch 30 it is ~1e-10 of the initial value).
        let (xs, ys) = xor_data();
        let mut mlp = xor_mlp(14);
        let schedule = crate::LearningRateSchedule::step_decay(0.2, 0.5, 1).unwrap();
        let config = TrainConfig::new().max_epochs(40).schedule(schedule);
        let report = Trainer::new(config).fit(&mut mlp, &xs, &ys).unwrap();
        let early_move = (report.loss_history[0] - report.loss_history[5]).abs();
        let late_move = (report.loss_history[34] - report.loss_history[39]).abs();
        assert!(
            late_move < early_move / 100.0,
            "schedule not applied: early {early_move} late {late_move}"
        );
    }

    #[test]
    fn weight_decay_shrinks_parameter_norm() {
        let (xs, ys) = xor_data();
        let norm_after = |decay: f64| {
            let mut mlp = xor_mlp(20);
            let mut config = TrainConfig::new().max_epochs(500).learning_rate(0.1);
            if decay > 0.0 {
                config = config.weight_decay(decay);
            }
            Trainer::new(config).fit(&mut mlp, &xs, &ys).unwrap();
            mlp.params_flat().iter().map(|p| p * p).sum::<f64>().sqrt()
        };
        let plain = norm_after(0.0);
        let decayed = norm_after(0.05);
        assert!(decayed < plain, "plain {plain} decayed {decayed}");
    }

    #[test]
    fn gradient_clipping_prevents_divergence() {
        // The same setup that diverges un-clipped (see divergence_detected)
        // survives with a clipped gradient norm.
        let (xs, ys) = xor_data();
        let big_y = ys.scale(1e6);
        let mut mlp = xor_mlp(9);
        let config = TrainConfig::new()
            .max_epochs(200)
            .learning_rate(1e6)
            .gradient_clip(1e-4);
        let report = Trainer::new(config).fit(&mut mlp, &xs, &big_y);
        assert!(report.is_ok(), "{report:?}");
        assert!(mlp.is_finite());
    }

    #[test]
    fn decay_and_clip_validate() {
        let (xs, ys) = xor_data();
        let mut mlp = xor_mlp(10);
        assert!(Trainer::new(TrainConfig::new().weight_decay(-1.0))
            .fit(&mut mlp, &xs, &ys)
            .is_err());
        assert!(Trainer::new(TrainConfig::new().gradient_clip(0.0))
            .fit(&mut mlp, &xs, &ys)
            .is_err());
    }

    #[test]
    fn evaluate_loss_perfect_model_is_zero() {
        let (xs, _) = xor_data();
        let mlp = xor_mlp(12);
        let preds = mlp.forward_batch(&xs).unwrap();
        let loss = evaluate_loss(&mlp, &xs, &preds, Loss::MeanSquared).unwrap();
        assert!(loss.abs() < 1e-12);
    }

    #[test]
    fn stop_reason_display() {
        assert!(StopReason::MaxEpochs.to_string().contains("epochs"));
        assert!(StopReason::ThresholdReached
            .to_string()
            .contains("threshold"));
        assert!(StopReason::EarlyStopped.to_string().contains("validation"));
        assert!(StopReason::Diverged.to_string().contains("diverged"));
    }
}
